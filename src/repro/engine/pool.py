"""Fault-tolerant job execution: serial, or multiprocessing fan-out.

:func:`execute` takes a list of :class:`JobSpec` (or a
:class:`SweepSpec`) and runs every job to an outcome:

* ``workers <= 1`` runs in-process through *the same* per-job code path
  the workers use, so serial execution is the reference behaviour, not
  a separate implementation.
* ``workers > 1`` fans out over ``multiprocessing`` workers. The
  default (``dispatch="auto"``) is the **batch-lease** executor:
  persistent warm workers each receive leases of consecutive jobs and
  stream one record back per job, amortising process spawn/teardown
  across the lease and shipping large ndarrays through per-worker
  shared-memory rings (:mod:`repro.engine.shm`) instead of the pickle
  pipe. ``dispatch="per-job"`` keeps the one-process-per-job executor.
  Jobs cross the boundary as plain dict payloads (runner *name* +
  kwargs + seed), and each worker resolves the body via
  :mod:`repro.engine.registry`. Both executors are crash-tolerant: a
  worker that dies mid-job (segfault, OOM kill, injected crash)
  settles *that job* as a structured :class:`JobFailure` with
  ``error_type == "WorkerCrashError"`` and the pool keeps draining the
  queue instead of deadlocking on the lost result — under batch
  dispatch the lease's unstarted remainder is re-leased to a
  replacement worker.
* Per-job wall-clock timeouts use ``SIGALRM`` (each worker runs jobs
  on its main thread). Off the main thread — serial ``execute()``
  inside a ``repro.serve`` worker thread — a fallback timer raises the
  same :class:`JobTimeoutError` asynchronously in the job's thread; a
  platform with neither mechanism warns and emits a
  ``job_timeout_unenforced`` ledger event instead of silently
  no-opping. The parent-side watchdog still reclaims workers whose
  timeout was defeated (e.g. a hang inside C code) by killing them
  after the job's whole attempt budget plus a grace period.
* Transient failures (:data:`TRANSIENT_ERRORS`) are retried with
  exponential backoff up to ``retries`` extra attempts; permanent
  errors fail fast. Either way a failed job yields a structured
  :class:`JobFailure` record and the rest of the sweep keeps running.
  ``max_failures`` bounds that tolerance: once more than that many
  jobs have failed, remaining jobs settle as ``"skipped"`` and the
  result is marked partial.
* With a :class:`~repro.engine.cache.ResultCache` attached, results are
  normalised via ``to_jsonable`` and persisted, and matching jobs are
  served from disk on later sweeps (``status == "cached"``). A failed
  put (disk full, permissions) is recorded and warned about, never
  fatal — the in-memory result still settles normally.
* A :class:`~repro.faults.FaultPlan` (``faults=``) injects
  deterministic failures at every layer above; see
  ``docs/robustness.md``. With no plan attached the injection sites
  cost one ``is None`` check each.

Determinism: per-job seeds are fixed at spec time and outcomes are
re-ordered by job index, so ``workers=N`` is bit-identical to
``workers=1`` for the same spec.

``KeyboardInterrupt`` (and other ``BaseException``) is *not* recorded
as a job failure: it aborts the sweep, terminating any live workers on
the way out, so Ctrl-C during a chaos run behaves like Ctrl-C.
"""

from __future__ import annotations

import math
import multiprocessing
import signal
import threading
import time
import traceback
import warnings
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.engine import registry
from repro.engine import shm as shm_mod
from repro.engine.cache import ResultCache, default_code_version
from repro.engine.errors import TRANSIENT_ERRORS, JobTimeoutError
from repro.engine.progress import ProgressTracker
from repro.engine.spec import JobSpec, SweepSpec, fuse_jobs
from repro.experiments.export import from_jsonable, to_jsonable
from repro.kernels.backend import use_backend, validate_backend
from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, activate as trace_activate, span as trace_span

#: Extra wall-clock granted on top of a job's whole attempt budget
#: before the parent watchdog declares the worker hung and kills it.
_WATCHDOG_GRACE_S = 5.0

#: Recognised ``execute(dispatch=...)`` modes.
DISPATCH_MODES = ("auto", "batch", "per-job")


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one job that exhausted its attempts."""

    runner: str
    label: str
    error: str
    error_type: str
    attempts: int
    transient: bool
    traceback: str = ""


@dataclass
class JobOutcome:
    """Terminal state of one job: ``ok``, ``cached``, ``failed``, or
    ``skipped`` (never started because the sweep hit ``max_failures``)."""

    spec: JobSpec
    status: str
    value: Any = None
    failure: Optional[JobFailure] = None
    attempts: int = 0
    duration_s: float = 0.0


@dataclass
class SweepResult:
    """All outcomes of one :func:`execute` call, in job-index order.

    ``stats`` is the metrics registry's aggregated block (per-runner
    job timers plus retry/timeout/cache counters); ``code_version`` is
    the tag the cache keyed on, recorded so a run manifest can pin it.
    ``partial`` is True when any job failed or was skipped — the
    surviving values are valid, but ``values()`` has holes.
    """

    outcomes: List[JobOutcome]
    elapsed_s: float = 0.0
    workers: int = 1
    stats: Dict[str, Any] = field(default_factory=dict)
    code_version: Optional[str] = None

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def values(self) -> List[Any]:
        """Per-job result values (``None`` where the job failed/skipped)."""
        return [o.value for o in self.outcomes]

    def failures(self) -> List[JobFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def ok_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def failed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def skipped_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "skipped")

    @property
    def partial(self) -> bool:
        """True when the sweep completed with holes (failed/skipped)."""
        return any(o.status in ("failed", "skipped") for o in self.outcomes)

    @property
    def cache_hit_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.cached_count / len(self.outcomes)

    @property
    def jobs_per_sec(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return len(self.outcomes) / self.elapsed_s

    def raise_if_failed(self) -> None:
        failures = self.failures()
        if failures:
            lines = [f"{f.label}: {f.error_type}: {f.error}" for f in failures]
            raise RuntimeError(
                f"{len(failures)} job(s) failed:\n  " + "\n  ".join(lines)
            )

    def summary(self) -> str:
        n = len(self.outcomes)
        skipped = self.skipped_count
        tail = f", {skipped} skipped" if skipped else ""
        return (
            f"{n} jobs: {self.ok_count} ok, {self.cached_count} cached, "
            f"{self.failed_count} failed{tail} in {self.elapsed_s:.2f}s "
            f"({self.jobs_per_sec:.2f} jobs/s)"
        )


# ---------------------------------------------------------------------------
# Worker-side execution (also the serial code path).
# ---------------------------------------------------------------------------

class _ThreadTimeoutTimer:
    """Best-effort timeout for jobs running off the main thread.

    ``SIGALRM`` cannot be armed outside the main thread, which is
    exactly where the serve thread-pool runs serial ``execute()``
    calls. This fallback arms a daemon :class:`threading.Timer` that,
    on expiry, raises :class:`JobTimeoutError` *asynchronously* in the
    job's thread via ``PyThreadState_SetAsyncExc``. Like SIGALRM it is
    delivered at a Python bytecode boundary, so a hang inside C code
    still needs the parent watchdog — the documented contract doesn't
    change, the budget just stops being silently unenforced in
    threads. ``cancel()`` and the firing callback share a lock, so
    once cancel returns no exception can be injected; a fire that wins
    the race only happens when the budget genuinely elapsed, and the
    attempt loop treats the late raise as the timeout it is.
    """

    def __init__(self, seconds: float, thread_ident: int) -> None:
        self._seconds = float(seconds)
        self._ident = int(thread_ident)
        self._lock = threading.Lock()
        self._cancelled = False
        self._timer: Optional[threading.Timer] = None
        self.fired = False

    def start(self) -> bool:
        """Arm the timer; False when async-raise is unavailable."""
        try:
            import ctypes

            self._set_async_exc = ctypes.pythonapi.PyThreadState_SetAsyncExc
            self._c_ulong = ctypes.c_ulong
            self._py_object = ctypes.py_object
        except (ImportError, AttributeError):
            return False
        self._timer = threading.Timer(self._seconds, self._fire)
        self._timer.daemon = True
        self._timer.start()
        return True

    def _fire(self) -> None:
        with self._lock:
            if self._cancelled:
                return
            self.fired = True
            self._set_async_exc(
                self._c_ulong(self._ident), self._py_object(JobTimeoutError)
            )

    def cancel(self) -> None:
        with self._lock:
            self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()


@contextmanager
def _job_timeout(
    seconds: Optional[float],
    label: str,
    notes: Optional[List[Dict[str, Any]]] = None,
):
    """Raise :class:`JobTimeoutError` after ``seconds`` of wall-clock.

    On Unix main threads the budget is enforced with ``SIGALRM``; off
    the main thread (the serve thread-pool case) a
    :class:`_ThreadTimeoutTimer` raises the same error asynchronously.
    Only when neither mechanism is available does the budget go
    unenforced — loudly: a ``RuntimeWarning`` plus a
    ``job_timeout_unenforced`` note appended to ``notes`` (replayed
    into the run ledger), never a silent no-op.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):

        def _on_alarm(signum, frame):
            raise JobTimeoutError(f"{label} exceeded {seconds:.3g}s timeout")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(seconds))
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return
    timer = _ThreadTimeoutTimer(seconds, threading.get_ident())
    if not timer.start():
        if notes is not None:
            notes.append(
                {
                    "event": "job_timeout_unenforced",
                    "timeout_s": seconds,
                    "reason": "no SIGALRM off the main thread and no "
                    "ctypes async-raise support",
                }
            )
        warnings.warn(
            f"timeout_s={seconds:.3g} for {label} cannot be enforced here "
            "(off the main thread, no async-raise support); relying on "
            "the parent watchdog if any",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return
    try:
        yield
    finally:
        timer.cancel()


def _payload_from(
    spec: JobSpec,
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    faults_payload: Optional[Dict[str, Any]] = None,
    trace_ctx: Optional[Dict[str, Any]] = None,
    profile_dir: Optional[str] = None,
) -> Dict[str, Any]:
    payload = {
        "index": spec.index,
        "runner": spec.runner,
        "kwargs": dict(spec.kwargs),
        "seed": spec.seed,
        "scale": spec.scale,
        "label": spec.display,
        "timeout_s": timeout_s,
        "retries": int(retries),
        "backoff_s": float(backoff_s),
    }
    if spec.backend is not None:
        payload["backend"] = spec.backend
    if faults_payload is not None:
        payload["faults"] = faults_payload
    if trace_ctx is not None:
        payload["trace"] = dict(trace_ctx, **spec.span_attrs())
    if profile_dir is not None:
        payload["profile_dir"] = str(profile_dir)
    return payload


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job to completion inside the current process.

    Module-level so worker processes can resolve a reference to it;
    importing this module in the worker also (re)loads the registry,
    which is how job names resolve across processes.

    Tracing: when the payload carries span context (``"trace"``), the
    job runs under a fresh collecting :class:`Tracer` — a ``job`` span
    wraps the attempts, runner/kernel spans nest inside it, and the
    finished spans ride home on the record for the parent to replay.
    The tracer is (re)activated here *unconditionally*, replacing
    whatever this thread had before: a parent tracer inherited across
    ``fork`` holds the parent's sink and must never be written from a
    worker.

    ``BaseException`` (KeyboardInterrupt, SystemExit) deliberately
    propagates: in serial mode it aborts the sweep; in a worker it
    kills the process, which the parent settles as a worker crash.

    A ``"backend"`` entry activates that compute backend (see
    :mod:`repro.kernels.backend`) for the job's full attempt loop —
    here, not at dispatch, so serial, per-job, and batch-lease
    execution all resolve the backend through the identical code path.
    """
    backend_name = payload.get("backend")
    if backend_name is not None:
        with use_backend(backend_name):
            return _execute_payload_traced(payload)
    return _execute_payload_traced(payload)


def _execute_payload_traced(payload: Dict[str, Any]) -> Dict[str, Any]:
    trace_ctx = payload.get("trace")
    if trace_ctx is None:
        with trace_activate(None):
            return _run_attempts(payload)
    tracer = Tracer.for_payload(trace_ctx, index=payload["index"])
    attrs = {
        k: v for k, v in trace_ctx.items() if k not in ("trace_id", "parent_id")
    }
    with trace_activate(tracer):
        with tracer.span("job", **attrs):
            record = _run_attempts(payload)
    record["spans"] = tracer.export()
    if tracer.dropped:
        record["spans_dropped"] = tracer.dropped
    return record


def _profile_path(profile_dir: str, index: int, runner: str) -> str:
    import os

    os.makedirs(profile_dir, exist_ok=True)
    safe = runner.replace("/", "_")
    return os.path.join(profile_dir, f"job-{index:04d}-{safe}.pstats")


def _run_attempts(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The retry/timeout attempt loop for one job (tracer already set)."""
    label = payload["label"]
    retries = max(0, payload["retries"])
    started = time.monotonic()
    attempts = 0
    last_error: Optional[BaseException] = None
    last_traceback = ""
    fault_plan = None
    if payload.get("faults"):
        # Lazy import: fault-free sweeps never load the injector, and
        # the laziness breaks the faults -> engine -> pool import cycle.
        from repro.faults.plan import FaultPlan

        fault_plan = FaultPlan.from_payload(payload["faults"])
    # Attempt-level telemetry recorded worker-side and replayed into
    # the parent's event sink when the record settles: sinks (open file
    # handles) never cross the process boundary.
    sub_events: List[Dict[str, Any]] = []
    profile_dir = payload.get("profile_dir")
    profiler = None
    while attempts <= retries:
        attempts += 1
        try:
            with _job_timeout(
                payload["timeout_s"], label, notes=sub_events
            ), trace_span("attempt", n=attempts):
                if fault_plan is not None:
                    from repro.faults.inject import apply_worker_faults

                    apply_worker_faults(
                        fault_plan,
                        index=payload["index"],
                        runner=payload["runner"],
                        attempt=attempts,
                        in_worker=bool(payload.get("in_worker")),
                    )
                if profile_dir:
                    # Profile the runner call only, never the backoff
                    # sleeps — the pstats should answer "where does the
                    # job's compute go", not "how long did we wait".
                    import cProfile

                    profiler = cProfile.Profile()
                    profiler.enable()
                try:
                    value = registry.call(
                        payload["runner"],
                        payload["kwargs"],
                        seed=payload["seed"],
                        scale=payload["scale"],
                    )
                finally:
                    if profiler is not None:
                        profiler.disable()
            record = {
                "index": payload["index"],
                "status": "ok",
                "value": value,
                "attempts": attempts,
                "duration_s": time.monotonic() - started,
                "events": sub_events,
            }
            if profiler is not None:
                path = _profile_path(
                    profile_dir, payload["index"], payload["runner"]
                )
                profiler.dump_stats(path)
                record["profile_path"] = path
            return record
        except TRANSIENT_ERRORS as exc:
            last_error = exc
            last_traceback = traceback.format_exc()
            if isinstance(exc, JobTimeoutError):
                # An async-raised timeout (thread fallback) carries no
                # message; normalise so ledgers always say what tripped.
                message = str(exc) or (
                    f"{label} exceeded {payload['timeout_s']:.3g}s timeout "
                    "(thread fallback timer)"
                )
                # The failure record stringifies last_error, so the
                # normalised message has to live on the exception too.
                last_error = JobTimeoutError(message)
                sub_events.append(
                    {
                        "event": "job_timeout",
                        "attempt": attempts,
                        "timeout_s": payload["timeout_s"],
                        "error": message,
                    }
                )
            if attempts <= retries:
                backoff = payload["backoff_s"] * (2 ** (attempts - 1))
                sub_events.append(
                    {
                        "event": "job_retry",
                        "attempt": attempts,
                        "error_type": exc.__class__.__name__,
                        "error": str(exc) or exc.__class__.__name__,
                        "backoff_s": backoff,
                    }
                )
                time.sleep(backoff)
                continue
            break
        except Exception as exc:
            # Exception, *not* BaseException: KeyboardInterrupt during
            # a sweep must propagate (and abort), not be recorded as a
            # job failure. The original traceback string is preserved
            # on the failure record for post-mortems.
            last_error = exc
            last_traceback = traceback.format_exc()
            break
    assert last_error is not None
    return {
        "index": payload["index"],
        "status": "failed",
        "attempts": attempts,
        "duration_s": time.monotonic() - started,
        "error": str(last_error) or last_error.__class__.__name__,
        "error_type": last_error.__class__.__name__,
        "transient": isinstance(last_error, TRANSIENT_ERRORS),
        "traceback": last_traceback,
        "events": sub_events,
    }


def _outcome_from_record(spec: JobSpec, record: Dict[str, Any]) -> JobOutcome:
    if record["status"] == "ok":
        return JobOutcome(
            spec=spec,
            status="ok",
            value=record["value"],
            attempts=record["attempts"],
            duration_s=record["duration_s"],
        )
    failure = JobFailure(
        runner=spec.runner,
        label=spec.display,
        error=record["error"],
        error_type=record["error_type"],
        attempts=record["attempts"],
        transient=record["transient"],
        traceback=record.get("traceback", ""),
    )
    return JobOutcome(
        spec=spec,
        status="failed",
        failure=failure,
        attempts=record["attempts"],
        duration_s=record["duration_s"],
    )


def _effective_workers(workers: int, n_jobs: int) -> int:
    workers = min(int(workers), n_jobs)
    if workers <= 1:
        return 1
    # A daemonic worker (we are already inside a pool) cannot fork
    # children; degrade to the serial executor instead of crashing.
    if multiprocessing.current_process().daemon:
        return 1
    return workers


# ---------------------------------------------------------------------------
# Parent-side orchestration.
# ---------------------------------------------------------------------------

def _child_main(payload: Dict[str, Any], conn) -> None:
    """Worker entry point: run the job, ship the record, exit.

    A crash anywhere in here (or an injected ``os._exit``) closes the
    pipe without a record — the parent's signal that the worker died.
    """
    try:
        conn.send(_execute_payload(payload))
    finally:
        conn.close()


def _crash_detail(exitcode: Optional[int]) -> str:
    if exitcode is None:
        return "worker vanished without an exit code"
    if exitcode < 0:
        return f"worker killed by signal {-exitcode}"
    return f"worker died with exit code {exitcode}"


def _crash_record(
    payload: Dict[str, Any],
    exitcode: Optional[int],
    elapsed_s: float,
    reason: Optional[str] = None,
) -> Dict[str, Any]:
    """A failure record for a worker that died without reporting."""
    return {
        "index": payload["index"],
        "status": "failed",
        "attempts": 1,
        "duration_s": elapsed_s,
        "error": reason or _crash_detail(exitcode),
        "error_type": "WorkerCrashError",
        "transient": False,
        "traceback": "",
        "events": [],
    }


def _run_crash_tolerant(
    pending: Sequence[JobSpec],
    payloads: Sequence[Dict[str, Any]],
    n_workers: int,
    *,
    watchdog_s: Optional[float],
    launch: Callable[[JobSpec], None],
    settle: Callable[[JobSpec, Dict[str, Any]], None],
    should_stop: Callable[[], bool],
) -> List[JobSpec]:
    """Fan ``payloads`` out over per-job worker processes.

    One process per job (respawning is just launching the next job's
    process) with the parent multiplexing result pipes through
    ``multiprocessing.connection.wait``. A worker that exits without
    sending its record — crash, kill, injected ``os._exit`` — settles
    as a ``WorkerCrashError`` failure instead of deadlocking the sweep,
    which is what ``Pool.imap_unordered`` did on a lost result. With
    ``watchdog_s`` set, workers alive past their whole attempt budget
    are killed and settled the same way.

    Returns the specs never launched because ``should_stop`` tripped.
    """
    from multiprocessing import connection as mp_connection

    ctx = multiprocessing.get_context()
    queue = deque(zip(pending, payloads))
    live: Dict[Any, Any] = {}  # conn -> (spec, payload, proc, started)
    skipped: List[JobSpec] = []
    try:
        while queue or live:
            if queue and should_stop():
                skipped.extend(spec for spec, _ in queue)
                queue.clear()
            while queue and len(live) < n_workers:
                spec, payload = queue.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main, args=(payload, child_conn), daemon=True
                )
                launch(spec)
                proc.start()
                child_conn.close()
                live[parent_conn] = (spec, payload, proc, time.monotonic())
            if not live:
                break
            wait_timeout = None
            if watchdog_s is not None:
                now = time.monotonic()
                wait_timeout = max(
                    0.0,
                    min(
                        started + watchdog_s - now
                        for (_, _, _, started) in live.values()
                    ),
                )
            for conn in mp_connection.wait(list(live), timeout=wait_timeout):
                spec, payload, proc, started = live.pop(conn)
                elapsed = time.monotonic() - started
                try:
                    record = conn.recv()
                except (EOFError, OSError):
                    record = None
                conn.close()
                proc.join()
                if record is None:
                    record = _crash_record(payload, proc.exitcode, elapsed)
                settle(spec, record)
            if watchdog_s is not None:
                now = time.monotonic()
                for conn in [
                    c
                    for c, (_, _, _, started) in live.items()
                    if now - started >= watchdog_s
                ]:
                    spec, payload, proc, started = live.pop(conn)
                    proc.terminate()
                    proc.join()
                    conn.close()
                    settle(
                        spec,
                        _crash_record(
                            payload,
                            proc.exitcode,
                            time.monotonic() - started,
                            reason=(
                                f"worker unresponsive after {watchdog_s:.3g}s "
                                "(timeout budget + grace); killed by watchdog"
                            ),
                        ),
                    )
    except BaseException:
        # Abort (KeyboardInterrupt, sink write error, ...): reap every
        # live worker so the sweep never leaves orphans behind.
        for _, _, proc, _ in live.values():
            if proc.is_alive():
                proc.terminate()
        for _, _, proc, _ in live.values():
            proc.join()
        raise
    return skipped


# ---------------------------------------------------------------------------
# Batch-lease execution: persistent warm workers, streamed records.
# ---------------------------------------------------------------------------

def _lease_worker_main(
    conn, out_ring_name: Optional[str], in_ring_name: Optional[str]
) -> None:
    """Persistent worker loop: recv a lease, stream one record per job.

    Each iteration receives a list of job payloads (one lease), runs
    them in order through the *same* :func:`_execute_payload` the
    per-job executor uses, and sends each record back as it completes
    — so the parent can settle job ``i`` while job ``i+1`` computes.
    ``None`` is the shutdown sentinel; a closed pipe means the parent
    is gone and the worker just exits.

    Large ndarrays ride shared-memory rings instead of the pipe:
    result arrays are encoded into ``out_ring_name``'s ring, and
    kwargs arriving with shm descriptors are rebuilt from
    ``in_ring_name``'s. A crash anywhere in here closes the pipe
    without a record for the in-flight job — the parent's crash
    signal, exactly as in per-job mode.
    """
    out_ring = (
        shm_mod.ShmRing.attach(out_ring_name) if out_ring_name else None
    )
    in_ring = shm_mod.ShmRing.attach(in_ring_name) if in_ring_name else None
    try:
        while True:
            try:
                lease = conn.recv()
            except (EOFError, OSError):
                return
            if lease is None:
                return
            for payload in lease:
                if in_ring is not None:
                    payload["kwargs"] = shm_mod.decode_arrays(
                        payload["kwargs"], in_ring
                    )
                record = _execute_payload(payload)
                if out_ring is not None and record.get("status") == "ok":
                    encoded, shipped = shm_mod.encode_arrays(
                        record["value"], out_ring
                    )
                    if shipped:
                        record["value"] = encoded
                        record["shm_arrays"] = shipped
                try:
                    conn.send(record)
                except (EOFError, OSError):
                    return
    finally:
        if out_ring is not None:
            out_ring.close()
        if in_ring is not None:
            in_ring.close()
        try:
            conn.close()
        except OSError:
            pass


class _LeaseWorker:
    """Parent-side handle on one persistent lease worker.

    Owns the worker process, its duplex pipe, and its shared-memory
    rings (parent-owned: created here, unlinked in :meth:`destroy`,
    never by the child). ``lease`` holds the *original* (spec,
    payload) pairs — shm-encoded copies exist only on the wire, so a
    requeued remainder after a crash re-encodes against the
    replacement worker's ring instead of dangling into a dead one.
    """

    def __init__(self, ctx, shm_bytes: int, ship_inputs: bool) -> None:
        self.out_ring = (
            shm_mod.ShmRing.create(shm_bytes) if shm_bytes > 0 else None
        )
        self.in_ring = (
            shm_mod.ShmRing.create(shm_bytes)
            if shm_bytes > 0 and ship_inputs
            else None
        )
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_lease_worker_main,
            args=(
                child_conn,
                self.out_ring.name if self.out_ring else None,
                self.in_ring.name if self.in_ring else None,
            ),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.lease: Optional[List[Tuple[JobSpec, Dict[str, Any]]]] = None
        self.next_i = 0
        self.started = 0.0

    @property
    def busy(self) -> bool:
        return self.lease is not None

    def current(self) -> Tuple[JobSpec, Dict[str, Any]]:
        assert self.lease is not None
        return self.lease[self.next_i]

    def remainder(self) -> List[Tuple[JobSpec, Dict[str, Any]]]:
        """Jobs after the in-flight one (never started; re-leasable)."""
        assert self.lease is not None
        return list(self.lease[self.next_i + 1 :])

    def dispatch(self, lease: List[Tuple[JobSpec, Dict[str, Any]]]) -> None:
        """Ship one lease; raises ``OSError`` if the worker is gone."""
        wire = []
        for _, payload in lease:
            if self.in_ring is not None and shm_mod.contains_large_array(
                payload["kwargs"]
            ):
                # Non-blocking: a full ring leaves arrays inline (the
                # pipe still works), it never stalls the dispatcher.
                encoded, shipped = shm_mod.encode_arrays(
                    payload["kwargs"], self.in_ring, timeout_s=0.0
                )
                if shipped:
                    payload = dict(payload, kwargs=encoded)
            wire.append(payload)
        self.conn.send(wire)
        self.lease = list(lease)
        self.next_i = 0
        self.started = time.monotonic()

    def advance(self) -> Optional[JobSpec]:
        """One record settled; returns the next job's spec (or None)."""
        assert self.lease is not None
        self.next_i += 1
        self.started = time.monotonic()
        if self.next_i >= len(self.lease):
            self.lease = None
            self.next_i = 0
            return None
        return self.lease[self.next_i][0]

    def shutdown(self) -> None:
        """Best-effort graceful stop: send the sentinel."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass

    def destroy(self) -> None:
        """Reap the process and free every owned resource; idempotent."""
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join()
        try:
            self.conn.close()
        except OSError:
            pass
        if self.out_ring is not None:
            self.out_ring.unlink()
        if self.in_ring is not None:
            self.in_ring.unlink()


def _auto_lease_size(n_jobs: int, n_workers: int) -> int:
    """Default lease size: ~4 leases per worker.

    Large enough to amortise dispatch over many jobs, small enough
    that a straggling lease can't idle the other workers for long —
    the classic chunking trade-off, same shape as
    ``multiprocessing.Pool``'s default chunksize.
    """
    return max(1, math.ceil(n_jobs / (max(1, n_workers) * 4)))


def _run_batch_leases(
    pending: Sequence[JobSpec],
    payloads: Sequence[Dict[str, Any]],
    n_workers: int,
    *,
    lease_size: int,
    watchdog_s: Optional[float],
    launch: Callable[[JobSpec], None],
    settle: Callable[[JobSpec, Dict[str, Any]], None],
    should_stop: Callable[[], bool],
    shm_bytes: int,
) -> List[JobSpec]:
    """Fan ``payloads`` out as leases over persistent warm workers.

    The 10x-jobs/s path: instead of one process per job, each worker
    is spawned once and fed leases of ``lease_size`` consecutive jobs,
    streaming one record back per job. Every per-job guarantee is
    preserved:

    * a worker that dies mid-lease fails *only* its in-flight job
      (``WorkerCrashError``); records already in the pipe settle
      normally and the unstarted remainder is re-leased — at the front
      of the queue, so job order stays near-index — to a replacement
      worker;
    * the watchdog budget applies per *job*, not per lease (the clock
      re-arms as each record settles);
    * ``job_start`` is emitted when a job actually reaches a worker
      (lease dispatch for the first member, previous settle for the
      rest), keeping the ledger's start/end pairing exact;
    * ``should_stop`` drains undispached leases to "skipped";
      already-dispatched leases run to completion (same as in-flight
      jobs in per-job mode).

    Returns the specs never dispatched because ``should_stop`` tripped.
    """
    from multiprocessing import connection as mp_connection

    ctx = multiprocessing.get_context()
    pairs = list(zip(pending, payloads))
    leases: deque = deque(
        pairs[start : start + lease_size]
        for start in range(0, len(pairs), lease_size)
    )
    ship_inputs = shm_bytes > 0 and any(
        shm_mod.contains_large_array(payload["kwargs"]) for _, payload in pairs
    )
    workers: List[_LeaseWorker] = []
    skipped: List[JobSpec] = []

    def _spawn() -> None:
        workers.append(_LeaseWorker(ctx, shm_bytes, ship_inputs))

    def _fail_worker(worker: _LeaseWorker, reason: Optional[str]) -> None:
        """Settle the in-flight job as a crash, re-lease the rest."""
        spec, payload = worker.current()
        remainder = worker.remainder()
        workers.remove(worker)
        elapsed = time.monotonic() - worker.started
        worker.destroy()  # joins first, so exitcode is final
        settle(
            spec,
            _crash_record(payload, worker.proc.exitcode, elapsed, reason=reason),
        )
        if remainder:
            leases.appendleft(remainder)
        if leases and not should_stop():
            _spawn()

    try:
        for _ in range(max(1, min(n_workers, len(leases)))):
            _spawn()
        while leases or any(w.busy for w in workers):
            if leases and should_stop():
                for lease in leases:
                    skipped.extend(spec for spec, _ in lease)
                leases.clear()
            for worker in list(workers):
                if worker.busy or not leases:
                    continue
                lease = leases.popleft()
                try:
                    worker.dispatch(lease)
                except OSError:
                    # Worker died while idle: nothing was running, so
                    # nothing fails — re-lease and replace.
                    leases.appendleft(lease)
                    workers.remove(worker)
                    worker.destroy()
                    _spawn()
                    continue
                launch(lease[0][0])
            busy = [w for w in workers if w.busy]
            if not busy:
                if leases:
                    continue
                break
            wait_timeout = None
            if watchdog_s is not None:
                now = time.monotonic()
                wait_timeout = max(
                    0.0,
                    min(w.started + watchdog_s - now for w in busy),
                )
            conn_map = {w.conn: w for w in busy}
            for conn in mp_connection.wait(list(conn_map), timeout=wait_timeout):
                worker = conn_map[conn]
                try:
                    record = conn.recv()
                except (EOFError, OSError):
                    record = None
                if record is None:
                    _fail_worker(worker, reason=None)
                    continue
                spec, _ = worker.current()
                if worker.out_ring is not None and record.get("shm_arrays"):
                    record["value"] = shm_mod.decode_arrays(
                        record["value"], worker.out_ring
                    )
                settle(spec, record)
                next_spec = worker.advance()
                if next_spec is not None:
                    launch(next_spec)
            if watchdog_s is not None:
                now = time.monotonic()
                for worker in [
                    w
                    for w in workers
                    if w.busy and now - w.started >= watchdog_s
                ]:
                    worker.proc.terminate()
                    _fail_worker(
                        worker,
                        reason=(
                            f"worker unresponsive after {watchdog_s:.3g}s "
                            "(timeout budget + grace); killed by watchdog"
                        ),
                    )
    finally:
        # Clean end: every worker is idle, the sentinel lets it exit
        # on its own. Abort: busy workers are terminated. Either way
        # destroy() joins and unlinks the rings — no process and no
        # shm segment survives this function.
        for worker in workers:
            if worker.busy:
                if worker.proc.is_alive():
                    worker.proc.terminate()
            else:
                worker.shutdown()
        for worker in workers:
            worker.proc.join(timeout=5.0)
            worker.destroy()
    return skipped


def _run_summary_fields(
    outcomes: Sequence[JobOutcome],
    registry_: MetricsRegistry,
    elapsed_s: float,
    n_workers: int,
    dispatch: str,
    backend: Optional[str],
    code_version: Optional[str],
) -> Dict[str, Any]:
    """The ``run_summary`` event payload for one finished sweep."""
    counts = {"ok": 0, "cached": 0, "failed": 0, "skipped": 0}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    stats = registry_.as_dict()
    counters = stats.get("counters", {})
    runners = {
        name[len("job."):]: {
            key: timer[key]
            for key in ("count", "p50_s", "p95_s", "max_s")
            if key in timer
        }
        for name, timer in stats.get("timers", {}).items()
        if name.startswith("job.")
    }
    total = len(outcomes)
    return {
        "jobs": total,
        "ok": counts["ok"],
        "cached": counts["cached"],
        "failed": counts["failed"],
        "skipped": counts["skipped"],
        "retries": int(counters.get("retries", 0)),
        "timeouts": int(counters.get("timeouts", 0)),
        "cache_hit_rate": (counts["cached"] / total) if total else 0.0,
        "elapsed_s": round(elapsed_s, 6),
        "workers": int(n_workers),
        "dispatch": dispatch,
        "backend": backend,
        "code_version": code_version,
        "runners": runners,
    }


def _watchdog_budget_s(
    timeout_s: Optional[float], retries: int, backoff_s: float
) -> Optional[float]:
    """Worst-case honest runtime of one job, plus grace — or None.

    Only armed when a per-job timeout is configured: without one there
    is no budget to enforce and slow jobs are presumed legitimate.
    """
    if timeout_s is None or timeout_s <= 0:
        return None
    retries = max(0, int(retries))
    backoff_total = backoff_s * (2 ** retries - 1)
    return timeout_s * (retries + 1) + backoff_total + _WATCHDOG_GRACE_S


def execute(
    jobs: Union[SweepSpec, Sequence[JobSpec]],
    *,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    backoff_s: float = 0.1,
    cache: Optional[ResultCache] = None,
    code_version: Optional[str] = None,
    progress: Optional[ProgressTracker] = None,
    events: Optional[EventSink] = None,
    metrics: Optional[MetricsRegistry] = None,
    faults: Optional[Any] = None,
    max_failures: Optional[int] = None,
    trace: Optional[bool] = None,
    profile_dir: Optional[Any] = None,
    dispatch: str = "auto",
    lease_size: Optional[int] = None,
    shm_bytes: Optional[int] = None,
    backend: Optional[str] = None,
) -> SweepResult:
    """Run every job to an outcome; never raises for job failures.

    With ``cache`` attached, values (fresh and cached alike) are
    normalised through ``to_jsonable`` and decoded back through
    ``from_jsonable``, so both paths return identical data *and types*
    (non-finite floats stay floats); without it, runners' raw
    in-memory results pass through. Corrupt cache entries are
    quarantined and recomputed; failed puts are warned about and
    recorded (``cache_put_error``), never fatal.

    With an ``events`` sink attached, the sweep appends its run ledger
    there: ``sweep_start``/``sweep_end`` (via the progress tracker),
    ``job_start``/``job_retry``/``job_timeout``/``job_end``/
    ``job_skipped`` (from this module), and ``cache_hit``/``cache_put``
    /``cache_quarantine``/``cache_put_error`` (from the cache). In
    parallel mode ``job_start`` marks worker launch, and worker-side
    attempt telemetry is replayed when each record settles. ``metrics``
    (created per call when not supplied) aggregates per-runner job
    timers and retry/timeout/cache counters into ``result.stats``.

    ``faults`` takes a :class:`repro.faults.FaultPlan`; its
    worker-side faults ride along in the job payloads and its
    parent-side faults are attached to the cache and event sink for
    the duration of the call (restored after). ``max_failures`` stops
    launching new jobs once more than that many have failed; the
    leftovers settle as ``"skipped"`` and ``result.partial`` is True.
    A ``SweepSpec``'s own ``max_failures`` applies when the argument
    is not given.

    ``trace`` turns hierarchical span tracing on/off; the default
    (``None``) enables it exactly when an event sink is attached. A
    ``sweep`` root span brackets the run, each job carries span
    context into its (possibly remote) execution, and worker-side
    spans are replayed into the ledger at settle time with their
    worker-local offsets preserved (``t_rel`` relative to job start).
    Per-span timers aggregate into ``result.stats`` as
    ``span.<name>``. ``profile_dir`` additionally dumps one cProfile
    ``.pstats`` file per successful job into that directory (profiling
    wraps only the runner call) and records ``profile_path`` on the
    ``job_end`` event.

    ``dispatch`` selects the parallel executor: ``"batch"`` leases
    runs of ``lease_size`` consecutive jobs to persistent warm workers
    (:func:`_run_batch_leases`, the fast path — process spawn cost is
    amortised over the lease); ``"per-job"`` keeps one process per job
    (:func:`_run_crash_tolerant`); ``"auto"`` (default) uses batch
    whenever ``workers > 1``. ``lease_size=None`` picks ~4 leases per
    worker. ``shm_bytes`` sizes the per-worker shared-memory rings
    that carry large ndarrays zero-copy (``0`` disables, ``None`` =
    8 MiB default). All three are pure transport knobs: outcomes are
    bit-identical across every combination.

    ``backend`` stamps a compute backend (see
    :mod:`repro.kernels.backend`) on every job that doesn't already
    carry one; unknown or unavailable backends fail fast here, before
    any work is dispatched. Non-default backends participate in cache
    keys.
    """
    if dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"unknown dispatch mode {dispatch!r}; expected one of "
            f"{', '.join(DISPATCH_MODES)}"
        )
    if lease_size is not None and int(lease_size) < 1:
        raise ValueError("lease_size must be >= 1")
    if isinstance(jobs, SweepSpec):
        specs = jobs.expand()
        if max_failures is None:
            max_failures = jobs.max_failures
    else:
        specs = [
            spec if spec.index == i else spec.replace(index=i)
            for i, spec in enumerate(jobs)
        ]
    if backend is not None:
        specs = [
            spec if spec.backend is not None else spec.replace(backend=backend)
            for spec in specs
        ]
    # Fail fast on unknown/unavailable backends — before cache lookups
    # and worker spawns, so a typo'd --backend dies in milliseconds.
    for name in sorted({s.backend for s in specs if s.backend is not None}):
        validate_backend(name)
    started = time.monotonic()
    registry_ = metrics if metrics is not None else MetricsRegistry()
    trace_on = (events is not None) if trace is None else bool(trace)
    tracer = Tracer(sink=events) if trace_on else None
    if progress is None and events is not None:
        progress = ProgressTracker()
    if progress is not None and events is not None and progress.events is None:
        progress.events = events
    if progress is not None:
        progress.start(len(specs), workers=int(workers))

    restore_cache_events = False
    if cache is not None and events is not None and cache.events is None:
        cache.events = events
        restore_cache_events = True
    # Parent-side fault sites live on the cache (corrupt/failed-put)
    # and the event sink (torn ledger lines); attach the plan for the
    # duration of this call, duck-typed so plain sinks stay plain.
    restore_cache_faults = restore_events_faults = False
    if faults is not None:
        if cache is not None and getattr(cache, "faults", False) is None:
            cache.faults = faults
            restore_cache_faults = True
        if events is not None and getattr(events, "faults", False) is None:
            events.faults = faults
            restore_events_faults = True
    root_span = (
        tracer.start("sweep", {"jobs": len(specs), "workers": int(workers)})
        if tracer is not None
        else None
    )
    try:
        version = code_version or (default_code_version() if cache else None)
        outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
        keys: Dict[int, str] = {}
        pending: List[JobSpec] = []
        for spec in specs:
            if cache is not None:
                key = cache.key_for(spec, version)
                keys[spec.index] = key
                hit, value = cache.get(spec, key)
                if hit:
                    outcome = JobOutcome(
                        spec=spec, status="cached", value=from_jsonable(value)
                    )
                    outcomes[spec.index] = outcome
                    registry_.counter("jobs_cached").inc()
                    if progress is not None:
                        progress.update(outcome)
                    continue
            pending.append(spec)

        def _emit_job_start(spec: JobSpec) -> None:
            if events is not None:
                events.emit(
                    "job_start",
                    index=spec.index,
                    runner=spec.runner,
                    label=spec.display,
                    seed=spec.seed,
                )

        def _settle(spec: JobSpec, record: Dict[str, Any]) -> None:
            outcome = _outcome_from_record(spec, record)
            if cache is not None and outcome.status == "ok":
                # encode_value is to_jsonable plus sidecar diversion:
                # large arrays land as content-addressed .npy files and
                # the record stores a descriptor. The arrays memo keeps
                # the decode below off the disk it just wrote.
                normalised, arrays = cache.encode_value(outcome.value)
                try:
                    cache.put(spec, keys[spec.index], normalised)
                except OSError as exc:
                    # Disk full / permissions / injected put failure:
                    # losing the cache entry must not lose the result.
                    registry_.counter("cache_put_errors").inc()
                    warnings.warn(
                        f"cache put failed for {spec.display}: {exc}; "
                        "result kept in memory only",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    if events is not None:
                        events.emit(
                            "cache_put_error",
                            index=spec.index,
                            runner=spec.runner,
                            label=spec.display,
                            error=str(exc),
                        )
                else:
                    registry_.counter("cache_puts").inc()
                outcome.value = cache.decode_value(normalised, arrays)
            for sub in record.get("events", ()):
                kind = sub["event"]
                counter_name = {
                    "job_retry": "retries",
                    "job_timeout": "timeouts",
                    "job_timeout_unenforced": "timeouts_unenforced",
                }.get(kind, kind)
                registry_.counter(counter_name).inc()
                if events is not None:
                    fields = {k: v for k, v in sub.items() if k != "event"}
                    events.emit(
                        kind,
                        index=spec.index,
                        runner=spec.runner,
                        label=spec.display,
                        **fields,
                    )
            # Replay the job's worker-side spans into the ledger. They
            # arrive sorted by worker-local start offset (t_rel, seconds
            # since the job began on the worker's monotonic clock) and
            # are emitted as adjacent start/end pairs — a reader anchors
            # them at the job's parent-side job_start timestamp, so the
            # flame timeline reflects real in-job timing, not when the
            # record happened to cross the pipe.
            job_spans = record.get("spans", ())
            if job_spans:
                registry_.counter("spans").inc(len(job_spans))
            for span_rec in job_spans:
                registry_.timer(f"span.{span_rec['name']}").observe(
                    span_rec["duration_s"]
                )
                if events is not None:
                    base = {
                        "index": spec.index,
                        "runner": spec.runner,
                        "label": spec.display,
                    }
                    start_fields = dict(span_rec)
                    start_fields.pop("duration_s", None)
                    events.emit("span_start", **base, **start_fields)
                    events.emit("span_end", **base, **span_rec)
            if record.get("spans_dropped"):
                registry_.counter("spans_dropped").inc(
                    record["spans_dropped"]
                )
            registry_.counter(f"jobs_{outcome.status}").inc()
            if outcome.failure is not None and (
                outcome.failure.error_type == "WorkerCrashError"
            ):
                registry_.counter("worker_crashes").inc()
            registry_.timer(f"job.{spec.runner}").observe(outcome.duration_s)
            if events is not None:
                end_fields: Dict[str, Any] = {
                    "index": spec.index,
                    "runner": spec.runner,
                    "label": spec.display,
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "duration_s": round(outcome.duration_s, 6),
                }
                if outcome.failure is not None:
                    end_fields["error_type"] = outcome.failure.error_type
                    end_fields["error"] = outcome.failure.error
                if record.get("profile_path"):
                    end_fields["profile_path"] = record["profile_path"]
                events.emit("job_end", **end_fields)
            outcomes[spec.index] = outcome
            if progress is not None:
                progress.update(outcome)

        def _should_stop() -> bool:
            return (
                max_failures is not None
                and registry_.counter("jobs_failed").value > max_failures
            )

        faults_payload = faults.worker_payload() if faults is not None else None
        trace_ctx = (
            tracer.context(parent_id=root_span.span_id)
            if tracer is not None and root_span is not None
            else None
        )
        profile_dir_s = str(profile_dir) if profile_dir is not None else None
        payloads = [
            _payload_from(
                spec,
                timeout_s,
                retries,
                backoff_s,
                faults_payload,
                trace_ctx=trace_ctx,
                profile_dir=profile_dir_s,
            )
            for spec in pending
        ]
        n_workers = _effective_workers(workers, len(pending))
        skipped: List[JobSpec] = []
        if n_workers <= 1:
            for spec, payload in zip(pending, payloads):
                if _should_stop():
                    skipped.append(spec)
                    continue
                _emit_job_start(spec)
                _settle(spec, _execute_payload(payload))
        else:
            for payload in payloads:
                payload["in_worker"] = True
            watchdog_s = _watchdog_budget_s(timeout_s, retries, backoff_s)
            if dispatch == "per-job":
                skipped = _run_crash_tolerant(
                    pending,
                    payloads,
                    n_workers,
                    watchdog_s=watchdog_s,
                    launch=_emit_job_start,
                    settle=_settle,
                    should_stop=_should_stop,
                )
            else:
                effective_lease = (
                    int(lease_size)
                    if lease_size is not None
                    else _auto_lease_size(len(pending), n_workers)
                )
                skipped = _run_batch_leases(
                    pending,
                    payloads,
                    n_workers,
                    lease_size=effective_lease,
                    watchdog_s=watchdog_s,
                    launch=_emit_job_start,
                    settle=_settle,
                    should_stop=_should_stop,
                    shm_bytes=(
                        shm_mod.DEFAULT_RING_BYTES
                        if shm_bytes is None
                        else max(0, int(shm_bytes))
                    ),
                )

        for spec in skipped:
            outcome = JobOutcome(spec=spec, status="skipped")
            registry_.counter("jobs_skipped").inc()
            if events is not None:
                events.emit(
                    "job_skipped",
                    index=spec.index,
                    runner=spec.runner,
                    label=spec.display,
                    reason=f"sweep exceeded max_failures={max_failures}",
                )
            outcomes[spec.index] = outcome
            if progress is not None:
                progress.update(outcome)

        elapsed = time.monotonic() - started
        registry_.timer("sweep").observe(elapsed)
        if tracer is not None and root_span is not None:
            tracer.finish(root_span)
        final = [outcome for outcome in outcomes if outcome is not None]
        assert len(final) == len(specs)
        if events is not None:
            # The cross-run telemetry hook: one self-contained summary
            # event per execute() call, so an archive record (or a live
            # `repro watch`) can be built from the ledger alone without
            # re-deriving engine configuration. Emitted before
            # sweep_end so that event stays the ledger's terminal
            # progress marker.
            events.emit(
                "run_summary", **_run_summary_fields(
                    final, registry_, elapsed, n_workers, dispatch,
                    backend, version,
                )
            )
        if progress is not None:
            progress.finish()
        return SweepResult(
            outcomes=final,
            elapsed_s=elapsed,
            workers=n_workers,
            stats=registry_.as_dict(),
            code_version=version,
        )
    finally:
        if restore_cache_events:
            cache.events = None
        if restore_cache_faults:
            cache.faults = None
        if restore_events_faults:
            events.faults = None


def execute_one(
    spec: JobSpec,
    *,
    cache: Optional[ResultCache] = None,
    **kwargs: Any,
) -> JobOutcome:
    """Convenience wrapper: run a single job and return its outcome."""
    result = execute([spec], cache=cache, **kwargs)
    return result.outcomes[0]


def iter_values(result: SweepResult) -> Iterable[Any]:
    """Successful values in job order (failures/skips excluded)."""
    for outcome in result.outcomes:
        if outcome.status in ("ok", "cached"):
            yield outcome.value
