"""Fault-tolerant job execution: serial, or multiprocessing fan-out.

:func:`execute` takes a list of :class:`JobSpec` (or a
:class:`SweepSpec`) and runs every job to an outcome:

* ``workers <= 1`` runs in-process through *the same* per-job code path
  the workers use, so serial execution is the reference behaviour, not
  a separate implementation.
* ``workers > 1`` fans out over a ``multiprocessing`` pool. Jobs cross
  the boundary as plain dict payloads (runner *name* + kwargs + seed),
  and each worker resolves the body via :mod:`repro.engine.registry`.
* Per-job wall-clock timeouts use ``SIGALRM`` (each pool worker runs
  jobs on its main thread); on platforms without it the timeout is a
  no-op rather than an error.
* Transient failures (:data:`TRANSIENT_ERRORS`) are retried with
  exponential backoff up to ``retries`` extra attempts; permanent
  errors fail fast. Either way a failed job yields a structured
  :class:`JobFailure` record and the rest of the sweep keeps running.
* With a :class:`~repro.engine.cache.ResultCache` attached, results are
  normalised via ``to_jsonable`` and persisted, and matching jobs are
  served from disk on later sweeps (``status == "cached"``).

Determinism: per-job seeds are fixed at spec time and outcomes are
re-ordered by job index, so ``workers=N`` is bit-identical to
``workers=1`` for the same spec.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.engine import registry
from repro.engine.cache import ResultCache, default_code_version
from repro.engine.errors import TRANSIENT_ERRORS, JobTimeoutError
from repro.engine.progress import ProgressTracker
from repro.engine.spec import JobSpec, SweepSpec
from repro.experiments.export import from_jsonable, to_jsonable
from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one job that exhausted its attempts."""

    runner: str
    label: str
    error: str
    error_type: str
    attempts: int
    transient: bool
    traceback: str = ""


@dataclass
class JobOutcome:
    """Terminal state of one job: ``ok``, ``cached``, or ``failed``."""

    spec: JobSpec
    status: str
    value: Any = None
    failure: Optional[JobFailure] = None
    attempts: int = 0
    duration_s: float = 0.0


@dataclass
class SweepResult:
    """All outcomes of one :func:`execute` call, in job-index order.

    ``stats`` is the metrics registry's aggregated block (per-runner
    job timers plus retry/timeout/cache counters); ``code_version`` is
    the tag the cache keyed on, recorded so a run manifest can pin it.
    """

    outcomes: List[JobOutcome]
    elapsed_s: float = 0.0
    workers: int = 1
    stats: Dict[str, Any] = field(default_factory=dict)
    code_version: Optional[str] = None

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def values(self) -> List[Any]:
        """Per-job result values (``None`` where the job failed)."""
        return [o.value for o in self.outcomes]

    def failures(self) -> List[JobFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def ok_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def failed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def cache_hit_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.cached_count / len(self.outcomes)

    @property
    def jobs_per_sec(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return len(self.outcomes) / self.elapsed_s

    def raise_if_failed(self) -> None:
        failures = self.failures()
        if failures:
            lines = [f"{f.label}: {f.error_type}: {f.error}" for f in failures]
            raise RuntimeError(
                f"{len(failures)} job(s) failed:\n  " + "\n  ".join(lines)
            )

    def summary(self) -> str:
        n = len(self.outcomes)
        return (
            f"{n} jobs: {self.ok_count} ok, {self.cached_count} cached, "
            f"{self.failed_count} failed in {self.elapsed_s:.2f}s "
            f"({self.jobs_per_sec:.2f} jobs/s)"
        )


# ---------------------------------------------------------------------------
# Worker-side execution (also the serial code path).
# ---------------------------------------------------------------------------

@contextmanager
def _job_timeout(seconds: Optional[float], label: str):
    """Raise :class:`JobTimeoutError` after ``seconds`` of wall-clock.

    Only armable on Unix main threads; elsewhere it degrades to no
    timeout (documented in docs/engine.md).
    """
    can_arm = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_arm:
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeoutError(f"{label} exceeded {seconds:.3g}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _payload_from(
    spec: JobSpec,
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
) -> Dict[str, Any]:
    return {
        "index": spec.index,
        "runner": spec.runner,
        "kwargs": dict(spec.kwargs),
        "seed": spec.seed,
        "scale": spec.scale,
        "label": spec.display,
        "timeout_s": timeout_s,
        "retries": int(retries),
        "backoff_s": float(backoff_s),
    }


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job to completion inside the current process.

    Module-level so the multiprocessing pool can pickle a reference to
    it; importing this module in the worker also (re)loads the
    registry, which is how job names resolve across processes.
    """
    label = payload["label"]
    retries = max(0, payload["retries"])
    started = time.monotonic()
    attempts = 0
    last_error: Optional[BaseException] = None
    last_traceback = ""
    # Attempt-level telemetry recorded worker-side and replayed into
    # the parent's event sink when the record settles: sinks (open file
    # handles) never cross the process boundary.
    sub_events: List[Dict[str, Any]] = []
    while attempts <= retries:
        attempts += 1
        try:
            with _job_timeout(payload["timeout_s"], label):
                value = registry.call(
                    payload["runner"],
                    payload["kwargs"],
                    seed=payload["seed"],
                    scale=payload["scale"],
                )
            return {
                "index": payload["index"],
                "status": "ok",
                "value": value,
                "attempts": attempts,
                "duration_s": time.monotonic() - started,
                "events": sub_events,
            }
        except TRANSIENT_ERRORS as exc:
            last_error = exc
            last_traceback = traceback.format_exc()
            if isinstance(exc, JobTimeoutError):
                sub_events.append(
                    {
                        "event": "job_timeout",
                        "attempt": attempts,
                        "timeout_s": payload["timeout_s"],
                        "error": str(exc),
                    }
                )
            if attempts <= retries:
                backoff = payload["backoff_s"] * (2 ** (attempts - 1))
                sub_events.append(
                    {
                        "event": "job_retry",
                        "attempt": attempts,
                        "error_type": exc.__class__.__name__,
                        "error": str(exc) or exc.__class__.__name__,
                        "backoff_s": backoff,
                    }
                )
                time.sleep(backoff)
                continue
            break
        except Exception as exc:
            last_error = exc
            last_traceback = traceback.format_exc()
            break
    assert last_error is not None
    return {
        "index": payload["index"],
        "status": "failed",
        "attempts": attempts,
        "duration_s": time.monotonic() - started,
        "error": str(last_error) or last_error.__class__.__name__,
        "error_type": last_error.__class__.__name__,
        "transient": isinstance(last_error, TRANSIENT_ERRORS),
        "traceback": last_traceback,
        "events": sub_events,
    }


def _outcome_from_record(spec: JobSpec, record: Dict[str, Any]) -> JobOutcome:
    if record["status"] == "ok":
        return JobOutcome(
            spec=spec,
            status="ok",
            value=record["value"],
            attempts=record["attempts"],
            duration_s=record["duration_s"],
        )
    failure = JobFailure(
        runner=spec.runner,
        label=spec.display,
        error=record["error"],
        error_type=record["error_type"],
        attempts=record["attempts"],
        transient=record["transient"],
        traceback=record.get("traceback", ""),
    )
    return JobOutcome(
        spec=spec,
        status="failed",
        failure=failure,
        attempts=record["attempts"],
        duration_s=record["duration_s"],
    )


def _effective_workers(workers: int, n_jobs: int) -> int:
    workers = min(int(workers), n_jobs)
    if workers <= 1:
        return 1
    # A daemonic worker (we are already inside a pool) cannot fork
    # children; degrade to the serial executor instead of crashing.
    if multiprocessing.current_process().daemon:
        return 1
    return workers


# ---------------------------------------------------------------------------
# Parent-side orchestration.
# ---------------------------------------------------------------------------

def execute(
    jobs: Union[SweepSpec, Sequence[JobSpec]],
    *,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    backoff_s: float = 0.1,
    cache: Optional[ResultCache] = None,
    code_version: Optional[str] = None,
    progress: Optional[ProgressTracker] = None,
    events: Optional[EventSink] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SweepResult:
    """Run every job to an outcome; never raises for job failures.

    With ``cache`` attached, values (fresh and cached alike) are
    normalised through ``to_jsonable`` and decoded back through
    ``from_jsonable``, so both paths return identical data *and types*
    (non-finite floats stay floats); without it, runners' raw
    in-memory results pass through.

    With an ``events`` sink attached, the sweep appends its run ledger
    there: ``sweep_start``/``sweep_end`` (via the progress tracker),
    ``job_start``/``job_retry``/``job_timeout``/``job_end`` (from this
    module), and ``cache_hit``/``cache_put`` (from the cache). In
    parallel mode ``job_start`` marks pool submission, and worker-side
    attempt telemetry is replayed when each record settles. ``metrics``
    (created per call when not supplied) aggregates per-runner job
    timers and retry/timeout/cache counters into ``result.stats``.
    """
    if isinstance(jobs, SweepSpec):
        specs = jobs.expand()
    else:
        specs = [
            spec if spec.index == i else spec.replace(index=i)
            for i, spec in enumerate(jobs)
        ]
    started = time.monotonic()
    registry_ = metrics if metrics is not None else MetricsRegistry()
    if progress is None and events is not None:
        progress = ProgressTracker()
    if progress is not None and events is not None and progress.events is None:
        progress.events = events
    if progress is not None:
        progress.start(len(specs), workers=int(workers))

    restore_cache_events = False
    if cache is not None and events is not None and cache.events is None:
        cache.events = events
        restore_cache_events = True
    try:
        version = code_version or (default_code_version() if cache else None)
        outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
        keys: Dict[int, str] = {}
        pending: List[JobSpec] = []
        for spec in specs:
            if cache is not None:
                key = cache.key_for(spec, version)
                keys[spec.index] = key
                hit, value = cache.get(spec, key)
                if hit:
                    outcome = JobOutcome(
                        spec=spec, status="cached", value=from_jsonable(value)
                    )
                    outcomes[spec.index] = outcome
                    registry_.counter("jobs_cached").inc()
                    if progress is not None:
                        progress.update(outcome)
                    continue
            pending.append(spec)

        def _emit_job_start(spec: JobSpec) -> None:
            if events is not None:
                events.emit(
                    "job_start",
                    index=spec.index,
                    runner=spec.runner,
                    label=spec.display,
                    seed=spec.seed,
                )

        def _settle(spec: JobSpec, record: Dict[str, Any]) -> None:
            outcome = _outcome_from_record(spec, record)
            if cache is not None and outcome.status == "ok":
                normalised = to_jsonable(outcome.value)
                cache.put(spec, keys[spec.index], normalised)
                registry_.counter("cache_puts").inc()
                outcome.value = from_jsonable(normalised)
            for sub in record.get("events", ()):
                kind = sub["event"]
                registry_.counter(
                    "retries" if kind == "job_retry" else "timeouts"
                ).inc()
                if events is not None:
                    fields = {k: v for k, v in sub.items() if k != "event"}
                    events.emit(
                        kind,
                        index=spec.index,
                        runner=spec.runner,
                        label=spec.display,
                        **fields,
                    )
            registry_.counter(f"jobs_{outcome.status}").inc()
            registry_.timer(f"job.{spec.runner}").observe(outcome.duration_s)
            if events is not None:
                end_fields: Dict[str, Any] = {
                    "index": spec.index,
                    "runner": spec.runner,
                    "label": spec.display,
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "duration_s": round(outcome.duration_s, 6),
                }
                if outcome.failure is not None:
                    end_fields["error_type"] = outcome.failure.error_type
                    end_fields["error"] = outcome.failure.error
                events.emit("job_end", **end_fields)
            outcomes[spec.index] = outcome
            if progress is not None:
                progress.update(outcome)

        by_index = {spec.index: spec for spec in pending}
        payloads = [
            _payload_from(spec, timeout_s, retries, backoff_s)
            for spec in pending
        ]
        n_workers = _effective_workers(workers, len(pending))
        if n_workers <= 1:
            for spec, payload in zip(pending, payloads):
                _emit_job_start(spec)
                _settle(spec, _execute_payload(payload))
        else:
            with multiprocessing.Pool(processes=n_workers) as pool:
                for spec in pending:
                    _emit_job_start(spec)
                for record in pool.imap_unordered(
                    _execute_payload, payloads, chunksize=1
                ):
                    _settle(by_index[record["index"]], record)

        elapsed = time.monotonic() - started
        registry_.timer("sweep").observe(elapsed)
        if progress is not None:
            progress.finish()
        final = [outcome for outcome in outcomes if outcome is not None]
        assert len(final) == len(specs)
        return SweepResult(
            outcomes=final,
            elapsed_s=elapsed,
            workers=n_workers,
            stats=registry_.as_dict(),
            code_version=version,
        )
    finally:
        if restore_cache_events:
            cache.events = None


def execute_one(
    spec: JobSpec,
    *,
    cache: Optional[ResultCache] = None,
    **kwargs: Any,
) -> JobOutcome:
    """Convenience wrapper: run a single job and return its outcome."""
    result = execute([spec], cache=cache, **kwargs)
    return result.outcomes[0]


def iter_values(result: SweepResult) -> Iterable[Any]:
    """Successful values in job order (failures skipped)."""
    for outcome in result.outcomes:
        if outcome.status in ("ok", "cached"):
            yield outcome.value
