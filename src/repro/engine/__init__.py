"""repro.engine — parallel, cached, fault-tolerant scenario execution.

The paper's campaign is embarrassingly parallel (thousands of
Speedtest sessions, walking traces per setting, ABR trace replays);
this subsystem runs any registered experiment runner as a seeded job
sweep: serial or across a process pool, with per-job timeouts, bounded
retry of transient failures, structured failure records, an on-disk
result cache, and progress hooks. See ``docs/engine.md``.

Typical use::

    from repro import engine

    jobs = engine.SweepSpec(
        runners=["fig2", "fig9"], base_seed=7, scale=0.5
    ).expand()
    result = engine.execute(jobs, workers=4,
                            cache=engine.ResultCache(".repro-cache"))
    result.raise_if_failed()
"""

from repro.engine.errors import (
    EngineError,
    JobTimeoutError,
    TransientJobError,
    UnknownRunnerError,
    WorkerCrashError,
)
from repro.engine.spec import (
    BatchSpec,
    JobSpec,
    SweepSpec,
    artifact_jobs,
    fuse_jobs,
    spawn_seeds,
)
from repro.engine.cache import (
    ResultCache,
    clear_code_version_memo,
    default_code_version,
)
from repro.engine.progress import ProgressSnapshot, ProgressTracker
from repro.engine.pool import (
    JobFailure,
    JobOutcome,
    SweepResult,
    execute,
    execute_one,
    iter_values,
)
from repro.engine import registry

__all__ = [
    "BatchSpec",
    "EngineError",
    "JobFailure",
    "JobOutcome",
    "JobSpec",
    "JobTimeoutError",
    "ProgressSnapshot",
    "ProgressTracker",
    "ResultCache",
    "SweepResult",
    "SweepSpec",
    "TransientJobError",
    "UnknownRunnerError",
    "WorkerCrashError",
    "artifact_jobs",
    "clear_code_version_memo",
    "default_code_version",
    "execute",
    "execute_one",
    "fuse_jobs",
    "iter_values",
    "registry",
    "spawn_seeds",
]
