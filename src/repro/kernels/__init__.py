"""Vectorized simulation kernels shared across the library.

Every figure/table runner funnels through the same three hot loops —
RSRP series generation, RSRP->capacity mapping, and transport fluid
stepping. This package holds the array-at-a-time primitives those
kernels are built from, plus the pre-PR scalar implementations
(:mod:`repro.kernels.reference`) kept as the equivalence/benchmark
baseline. The determinism contract for every kernel is documented in
``docs/performance.md``.
"""

from repro.kernels.backend import (
    DEFAULT_BACKEND,
    Backend,
    BackendUnavailableError,
    UnknownBackendError,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    use_backend,
    validate_backend,
)
from repro.kernels.scan import ar1_scan, leaky_ramp_scan, markov_binary_scan
from repro.kernels.sampling import sample_series

__all__ = [
    "DEFAULT_BACKEND",
    "Backend",
    "BackendUnavailableError",
    "UnknownBackendError",
    "active_backend",
    "ar1_scan",
    "available_backends",
    "get_backend",
    "leaky_ramp_scan",
    "markov_binary_scan",
    "register_backend",
    "sample_series",
    "use_backend",
    "validate_backend",
]
