"""Pluggable compute backends for the simulation kernels.

A *backend* fixes the numeric substrate the kernels run on: the dtype
every array-at-a-time kernel allocates and accumulates in, and (for
compiled backends) the implementation dispatched to. Three ship here:

* ``numpy64`` — float64 NumPy, the default. This is the reference
  backend: it is what every golden pin, cache entry, and bit-identical
  contract in the repository was produced with, so it is *exact* by
  definition.
* ``numpy32`` — float32 NumPy. Halves memory traffic for the big
  series kernels; results are tolerance-matched (~1e-4 relative)
  against ``numpy64``, never bit-identical, so cache keys incorporate
  the backend id (see :meth:`repro.engine.cache.ResultCache.key_for`).
* ``numba`` — an optional JIT-compiled sequential scan. Registered
  unconditionally but *gated*: selecting it where numba is not
  importable raises :class:`BackendUnavailableError` with the reason
  (this repository's environments do not bundle numba — the backend
  exists so deployments that have it can opt in without code changes).
  Its sequential recurrence associates floating-point differently from
  the blocked closed form, so like ``numpy32`` it is
  tolerance-matched, not exact.

Selection is scoped, not global mutable state: the engine activates a
backend around each job via :func:`use_backend` (thread-local, so the
serve pool's worker threads can run different backends concurrently),
and ``REPRO_BACKEND`` sets the process-wide default for everything
that does not choose explicitly. The serial==parallel==batched
bit-identical contract holds *within* any one backend: the backend
rides on the :class:`~repro.engine.spec.JobSpec` and is re-activated
identically wherever the job lands.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

#: The reference backend — what every existing cache entry and golden
#: pin was produced with. Cache keys omit it for back-compatibility.
DEFAULT_BACKEND = "numpy64"

#: Environment variable naming the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class UnknownBackendError(ValueError):
    """A backend name nothing registered under."""


class BackendUnavailableError(RuntimeError):
    """A registered backend whose runtime requirements are missing."""


@dataclass(frozen=True)
class Backend:
    """One registered compute backend.

    ``probe`` (when given) returns a human-readable reason the backend
    cannot run here, or ``None`` when it can — evaluated at selection
    time, never at registration, so merely listing backends stays
    dependency-free. ``exact`` records the contract the equivalence
    tests enforce: exact backends are bit-identical to ``numpy64``,
    the rest are tolerance-matched.
    """

    name: str
    dtype: Any
    exact: bool
    description: str = ""
    impl: str = "numpy"
    probe: Optional[Callable[[], Optional[str]]] = None

    def unavailable_reason(self) -> Optional[str]:
        return self.probe() if self.probe is not None else None

    @property
    def available(self) -> bool:
        return self.unavailable_reason() is None


_REGISTRY: Dict[str, Backend] = {}
_local = threading.local()


def register_backend(backend: Backend, overwrite: bool = False) -> None:
    if not overwrite and backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend


def available_backends() -> List[str]:
    """Every registered backend name, sorted (gated ones included)."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; choose from "
            f"{', '.join(available_backends())}"
        ) from None


def validate_backend(name: str) -> Backend:
    """Name → :class:`Backend`, raising if unknown or gated off."""
    backend = get_backend(name)
    reason = backend.unavailable_reason()
    if reason is not None:
        raise BackendUnavailableError(
            f"backend {name!r} is not available here: {reason}"
        )
    return backend


def default_backend_name() -> str:
    """The process default: ``REPRO_BACKEND`` or ``numpy64``."""
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def active_backend() -> Backend:
    """The backend in effect on *this thread* right now.

    An unknown/unavailable name in ``REPRO_BACKEND`` raises on first
    kernel use — loudly, rather than silently computing on the wrong
    substrate.
    """
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return validate_backend(default_backend_name())


def active_dtype() -> Any:
    """The active backend's dtype (what kernels allocate in)."""
    return active_backend().dtype


@contextmanager
def use_backend(name: str) -> Iterator[Backend]:
    """Activate a backend for the current thread's dynamic extent."""
    backend = validate_backend(name)
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()


# ---------------------------------------------------------------------------
# Built-in backends.
# ---------------------------------------------------------------------------

def _numba_probe() -> Optional[str]:
    try:
        import numba  # noqa: F401
    except ImportError as exc:
        return f"numba is not importable ({exc})"
    return None


_NUMBA_AR1: Optional[Callable] = None


def numba_ar1_scan(coeff: float, x: np.ndarray, init: float) -> np.ndarray:
    """The numba backend's AR(1) body: a JIT-compiled sequential loop.

    Compiled once per process on first use; :func:`validate_backend`
    has already guaranteed numba imports before this can run.
    """
    global _NUMBA_AR1
    if _NUMBA_AR1 is None:
        from numba import njit

        @njit(cache=False)
        def _scan(coeff: float, x: np.ndarray, init: float) -> np.ndarray:
            out = np.empty(x.shape[0])
            carry = init
            for i in range(x.shape[0]):
                carry = coeff * carry + x[i]
                out[i] = carry
            return out

        _NUMBA_AR1 = _scan
    return _NUMBA_AR1(float(coeff), x, float(init))


register_backend(
    Backend(
        name="numpy64",
        dtype=np.float64,
        exact=True,
        description="float64 NumPy (reference; bit-identical contract)",
    )
)
register_backend(
    Backend(
        name="numpy32",
        dtype=np.float32,
        exact=False,
        description="float32 NumPy (half the memory traffic; ~1e-4 rel "
        "tolerance vs numpy64)",
    )
)
register_backend(
    Backend(
        name="numba",
        dtype=np.float64,
        exact=False,
        description="JIT-compiled sequential scans (optional; gated on "
        "numba being installed)",
        impl="numba",
        probe=_numba_probe,
    )
)
