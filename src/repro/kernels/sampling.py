"""Vectorized evaluation of scalar-or-callable time series inputs.

Several kernels accept a ``Union[float, Callable[[float], float]]``
("capacity-like") argument. :func:`sample_series` evaluates it over a
whole time grid at once: array-aware callables are invoked once,
scalar-only callables fall back to a per-element loop, and plain
numbers broadcast. The returned values are identical to calling the
scalar path at each grid point — ufunc arithmetic on float64 arrays
matches Python-float arithmetic bit-for-bit for ``+ - * / min max``.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro.kernels import backend as _backend

SeriesLike = Union[float, Callable[[float], float]]


def sample_series(fn: SeriesLike, times_s: np.ndarray) -> np.ndarray:
    """Evaluate ``fn`` over ``times_s``, vectorized when possible.

    Arrays are allocated in the active compute backend's dtype
    (:mod:`repro.kernels.backend`); ``numpy64`` reproduces the
    historical float64 behaviour bit-for-bit.
    """
    dtype = _backend.active_dtype()
    times_s = np.asarray(times_s, dtype=dtype)
    if not callable(fn):
        return np.full(times_s.shape, float(fn), dtype=dtype)
    try:
        values = fn(times_s)
    except (TypeError, ValueError):
        # Only the signatures of "scalar-only callable handed an
        # array": TypeError from operations undefined on ndarrays,
        # ValueError from ambiguous array truthiness (`if t > 5`).
        # Anything else — a KeyError in a trace lookup, a ZeroDivision
        # in the model — is a real bug in `fn` and must surface, not
        # get silently retried element-wise (where it would either
        # fail confusingly or, worse, succeed with different data).
        values = None
    if values is not None:
        values = np.asarray(values, dtype=dtype)
        if values.shape == times_s.shape:
            return values
        if values.ndim == 0:  # constant-valued callable
            return np.full(times_s.shape, float(values), dtype=dtype)
    return np.array([float(fn(float(t))) for t in times_s], dtype=dtype)
