"""Vectorized first-order recurrences (linear and boolean scans).

The simulation's sequential state updates are all first-order:

* AR(1) fading / leaky integrators: ``y[i] = c*y[i-1] + x[i]``
* two-state Markov chains (mmWave blockage): ``s[i] = f(s[i-1], u[i])``

Both admit an O(n) array formulation with only O(n / block) Python
iterations, which is what makes ``RsrpProcess.simulate`` and
``BlockageModel.simulate`` array-at-a-time. Implemented in pure NumPy
(no scipy) so results are identical in every environment the test
matrix runs in.

Determinism: for fixed inputs the outputs are bit-for-bit reproducible
across runs and platforms. ``ar1_scan`` evaluates the recurrence in a
blocked closed form whose floating-point association differs from the
naive sequential loop, so it matches a scalar reference to ~1e-12
relative rather than bit-for-bit; ``markov_binary_scan`` is pure
boolean algebra and matches the sequential chain exactly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kernels import backend as _backend

# Blocks keep |coeff|**-i within float64 range; 4096 steps of the
# fastest-decaying constants used anywhere in the library stay well
# clear of overflow (|c| >= 0.85 => |c|**-4096 < 1e290).
_BLOCK = 4096


def _block_size(coeff: float, dtype: Any = np.float64) -> int:
    """Largest block for which ``coeff**-i`` stays finite in ``dtype``."""
    mag = abs(coeff)
    if mag >= 1.0 or mag == 0.0:
        return _BLOCK
    # |c|**-B < 10**limit  =>  B < limit*ln(10)/(-ln|c|), with the
    # exponent headroom of the accumulation dtype (float32 overflows
    # at ~3.4e38, so its blocks are shorter).
    limit = 280.0 if np.dtype(dtype).itemsize >= 8 else 30.0
    safe = int(limit * np.log(10.0) / -np.log(mag))
    return max(1, min(_BLOCK, safe))


def _init_rows(init: Any, shape: tuple, dtype: Any) -> np.ndarray:
    """Broadcast a scalar-or-per-row ``init`` to the batch shape."""
    arr = np.asarray(init, dtype=dtype)
    if arr.ndim == 0:
        return np.full(shape, arr, dtype=dtype)
    return np.ascontiguousarray(np.broadcast_to(arr, shape), dtype=dtype)


def ar1_scan(coeff: float, x: np.ndarray, init: Any = 0.0) -> np.ndarray:
    """Evaluate ``y[i] = coeff * y[i-1] + x[i]`` with ``y[-1] = init``.

    Uses the closed form ``y[i] = c**(i+1)*init + sum_j c**(i-j)*x[j]``
    evaluated blockwise as ``c**i * cumsum(x / c**i)`` so only
    ``n / block`` Python iterations remain. Absolute error versus the
    sequential loop is bounded by ``~n * eps * max|x|`` (observed
    <1e-12 at every size the library uses).

    ``x`` may have leading batch axes (e.g. a UE axis): the scan runs
    along the last axis, each row bit-identical to the 1-D call on
    that row. ``init`` may be a scalar or any shape broadcastable to
    ``x.shape[:-1]``.

    The allocation/accumulation dtype follows the active compute
    backend (:mod:`repro.kernels.backend`); under ``numpy64`` (the
    default) this is bit-identical to the historical float64 path,
    while ``numpy32`` trades precision for memory traffic and the
    optional ``numba`` backend dispatches to the JIT-compiled
    sequential loop instead of the blocked closed form (per row for
    batched inputs).
    """
    backend = _backend.active_backend()
    if backend.impl == "numba":
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim == 0:
            raise ValueError("x must have at least one dimension")
        if abs(coeff) > 1.0:
            raise ValueError("|coeff| must be <= 1 for a stable scan")
        if x.ndim == 1:
            return _backend.numba_ar1_scan(float(coeff), x, float(init))
        inits = _init_rows(init, x.shape[:-1], np.float64).reshape(-1)
        flat = x.reshape(-1, x.shape[-1])
        out = np.empty_like(flat)
        for row in range(flat.shape[0]):
            out[row] = _backend.numba_ar1_scan(
                float(coeff), flat[row], float(inits[row])
            )
        return out.reshape(x.shape)
    dtype = backend.dtype
    x = np.asarray(x, dtype=dtype)
    if x.ndim == 0:
        raise ValueError("x must have at least one dimension")
    if abs(coeff) > 1.0:
        raise ValueError("|coeff| must be <= 1 for a stable scan")
    n = x.shape[-1]
    out = np.empty(x.shape, dtype=dtype)
    if n == 0:
        return out
    if coeff == 0.0:
        np.copyto(out, x)
        return out
    carry = _init_rows(init, x.shape[:-1], dtype)
    block = _block_size(coeff, dtype)
    for start in range(0, n, block):
        chunk = x[..., start : start + block]
        m = chunk.shape[-1]
        powers = coeff ** np.arange(m, dtype=dtype)
        # y_local[i] = sum_{j<=i} c**(i-j) * chunk[j]
        local = powers * np.cumsum(chunk / powers, axis=-1)
        out[..., start : start + m] = (
            local + (coeff * powers) * carry[..., None]
        )
        carry = out[..., start + m - 1].copy()
    return out


def leaky_ramp_scan(alpha: float, target: np.ndarray, init: Any = 0.0) -> np.ndarray:
    """Evaluate ``y[i] = y[i-1] + (target[i] - y[i-1]) * alpha``.

    The exponential ramp used for blockage depth: rewritten as the AR(1)
    recurrence ``y[i] = (1 - alpha) * y[i-1] + alpha * target[i]`` and
    dispatched to :func:`ar1_scan` (same tolerance contract, same
    leading-batch-axis support).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    target = np.asarray(target, dtype=float)
    return ar1_scan(1.0 - alpha, alpha * target, init=init)


def markov_binary_scan(
    next_if_true: np.ndarray,
    next_if_false: np.ndarray,
    init: Any = False,
) -> np.ndarray:
    """Vectorized two-state Markov chain scan.

    Given per-step candidate next states — ``next_if_true[i]`` is the
    state after step ``i`` when the current state is True,
    ``next_if_false[i]`` when it is False — returns the boolean state
    series ``s`` with ``s[i] = next_if_true[i] if s[i-1] else
    next_if_false[i]`` and ``s[-1] = init``.

    Each step falls into one of four classes: *determined* (both
    candidates agree, the chain forgets its past), *copy* (state
    persists), or *flip* (state inverts). The state at ``i`` is then
    the most recent determined value XOR the parity of flips since it,
    all computable with ``maximum.accumulate``/``cumsum`` — no Python
    loop, and bit-exact versus the sequential chain.

    Leading batch axes (e.g. a UE axis) are supported: chains run
    independently along the last axis, each row identical to the 1-D
    call. ``init`` may be a scalar or broadcastable to the batch
    shape.
    """
    a = np.asarray(next_if_true, dtype=bool)
    b = np.asarray(next_if_false, dtype=bool)
    if a.shape != b.shape or a.ndim == 0:
        raise ValueError(
            "candidate arrays must be equal-shape with a scan axis"
        )
    n = a.shape[-1]
    if n == 0:
        return np.empty(a.shape, dtype=bool)
    init_arr = np.asarray(init, dtype=bool)
    if init_arr.ndim:
        init_arr = np.broadcast_to(init_arr, a.shape[:-1])[..., None]
    determined = a == b
    flips = ~a & b  # True state -> False, False state -> True: inversion

    # Index of the latest determined step at or before i (-1 if none).
    idx = np.arange(n)
    last_det = np.maximum.accumulate(np.where(determined, idx, -1), axis=-1)
    anchor = np.maximum(last_det, 0)

    # Base value at the anchor: the determined value there, or `init`
    # carried in from before the window.
    base = np.where(
        last_det >= 0, np.take_along_axis(a, anchor, axis=-1), init_arr
    )

    # Parity of flip steps after the anchor, up to and including i.
    flip_count = np.cumsum(flips, axis=-1)
    anchored = np.where(
        last_det >= 0, np.take_along_axis(flip_count, anchor, axis=-1), 0
    )
    parity = (flip_count - anchored) % 2 == 1
    return base ^ parity
