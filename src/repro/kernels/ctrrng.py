"""Counter-based (stateless) random numbers for fleet-scale batching.

``numpy.random.Generator`` is *stateful*: the value a UE sees depends
on how many draws happened before it, i.e. on shard boundaries and
worker count. Fleet sweeps need the opposite contract — every random
quantity a UE consumes must be a pure function of

    (key, stream, row, col)

where ``key`` is the fleet seed, ``stream`` names the quantity (fading
innovations, blockage uniforms, ...), ``row`` is the UE's *absolute*
index in the population, and ``col`` is the tick/draw index. Then any
contiguous shard ``[start, stop)`` regenerates exactly the numbers it
needs, and serial vs sharded-parallel sweeps are bit-identical by
construction (docs/fleet.md).

The generator is a SplitMix64-style finalizer over the mixed counter:
each 64-bit output passes the avalanche mixer three times with the
coordinates folded in one at a time. It is not cryptographic; it is
statistically solid for simulation use (equidistributed uniforms,
no visible lattice structure across rows/cols) and — unlike spawning
one ``SeedSequence`` per UE — costs a handful of vectorized uint64
ops per sample.
"""

from __future__ import annotations

from typing import Union

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: 2**-53; top 53 bits of the mixed counter become a [0, 1) double.
_INV_2_53 = float(np.ldexp(1.0, -53))

ArrayLike = Union[int, np.ndarray]


def _mix(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer (uint64 in, uint64 out, elementwise)."""
    z = (z + _GOLDEN).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def hash_u64(key: int, stream: int, row: ArrayLike, col: ArrayLike) -> np.ndarray:
    """The raw 64-bit word at coordinates ``(key, stream, row, col)``.

    ``row`` and ``col`` broadcast against each other, so
    ``hash_u64(k, s, rows[:, None], cols[None, :])`` yields a full
    (UE x tick) matrix in one pass. Each coordinate is folded through
    its own mixer round, so adjacent rows/cols decorrelate fully.
    """
    row = np.asarray(row, dtype=np.uint64)
    col = np.asarray(col, dtype=np.uint64)
    # uint64 arithmetic wraps by design; silence numpy's scalar
    # overflow warnings so callers can run under -W error.
    with np.errstate(over="ignore"):
        h = _mix(np.uint64(key) + _GOLDEN * np.uint64(stream))
        h = _mix(h ^ _mix(row))
        return _mix(h ^ _mix(col) ^ (col * _GOLDEN))


def uniforms(key: int, stream: int, row: ArrayLike, col: ArrayLike) -> np.ndarray:
    """float64 uniforms in ``[0, 1)``, pure in ``(key, stream, row, col)``."""
    bits = hash_u64(key, stream, row, col)
    return (bits >> np.uint64(11)).astype(np.float64) * _INV_2_53


#: Normal draws consume the uniform sub-streams ``_NORMAL_BASE +
#: 2*stream`` and ``_NORMAL_BASE + 2*stream + 1``. Callers that keep
#: their own uniform stream ids below 2**32 can therefore never
#: collide with any normal stream.
_NORMAL_BASE = 1 << 32


def normals(key: int, stream: int, row: ArrayLike, col: ArrayLike) -> np.ndarray:
    """Standard normals via Box-Muller over two decorrelated uniforms.

    The pair comes from dedicated sub-streams offset by
    ``_NORMAL_BASE``, so logical uniform ids (< 2**32) and normal ids
    live in disjoint spaces and cannot alias.
    """
    u1 = uniforms(key, _NORMAL_BASE + 2 * stream, row, col)
    u2 = uniforms(key, _NORMAL_BASE + 2 * stream + 1, row, col)
    # 1 - u1 lies in (0, 1]: log never sees 0, and log(1) = 0 maps the
    # u1 = 0 corner to a legitimate z = 0 sample.
    radius = np.sqrt(-2.0 * np.log1p(-u1))
    return radius * np.cos(2.0 * np.pi * u2)
