"""Pre-PR scalar kernel implementations, kept as the ground truth.

These are verbatim copies of the per-sample Python loops the vectorized
kernels replaced. They serve two purposes:

* **Equivalence**: ``tests/property/test_kernel_equivalence.py`` checks
  every vectorized kernel against its scalar reference on seeded
  inputs — bit-identical where the RNG draw order is preserved,
  within a documented tolerance where a scan reformulation changes
  floating-point association (see ``docs/performance.md``).
* **Benchmarks**: ``benchmarks/test_bench_kernels.py`` times scalar
  versus vectorized at realistic sizes and emits ``BENCH_kernels.json``.

Nothing in the library proper may import this module.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.power.software import (
    SoftwareMonitor,
    SoftwareReading,
    underestimate_ratio,
)
from repro.radio.link import (
    _MAX_SPECTRAL_EFFICIENCY,
    _MIN_SINR_DB,
    _SHANNON_ATTENUATION,
    LinkBudget,
)
from repro.radio.propagation import BlockageModel
from repro.radio.signal import (
    _BLOCKAGE_FADE_DB,
    _FADING_SIGMA,
    _TX_EIRP_DBM,
    RSRP_MAX_DBM,
    RSRP_MIN_DBM,
    RsrpProcess,
)
from repro.transport.cubic import CubicState, MSS_BYTES
from repro.transport.flow import (
    FlowResult,
    TcpFlow,
    UdpFlow,
    bandwidth_delay_product_bytes,
)


def rsrp_series_step_loop(
    process: RsrpProcess, distances_m, speed_mps=0.0
) -> np.ndarray:
    """Pre-PR ``RsrpProcess.simulate``: one :meth:`step` per tick.

    Interleaves the blockage, severity, and fading draws per tick
    (the *legacy* draw order the vectorized kernel departs from).
    """
    distances_m = np.asarray(distances_m, dtype=float)
    speeds = np.broadcast_to(np.asarray(speed_mps, dtype=float), distances_m.shape)
    return np.array(
        [process.step(d, s) for d, s in zip(distances_m, speeds)]
    )


def rsrp_series_scalar(
    process: RsrpProcess, distances_m, speed_mps=0.0
) -> np.ndarray:
    """Scalar loop with the vectorized kernel's *batched* draw order.

    Mirrors ``RsrpProcess.simulate`` draw-for-draw — all blockage
    uniforms, then per-onset severities, then fading normals — but
    applies every recurrence with the sequential per-tick updates of
    the legacy :meth:`RsrpProcess.step` math. The vectorized kernel
    must match this to ~1e-9 (scan association tolerance).
    """
    distances_m = np.asarray(distances_m, dtype=float)
    n = distances_m.shape[0]
    speeds = np.broadcast_to(
        np.asarray(speed_mps, dtype=float), distances_m.shape
    )
    rng = np.random.default_rng(process.seed)
    band = process.band
    sigma = _FADING_SIGMA[band.band_class]
    rho = float(np.exp(-process.dt_s / process.correlation_s))
    alpha = 1.0 - float(np.exp(-process.dt_s / process.blockage_ramp_s))
    blockage = process.blockage or BlockageModel()

    blocked = np.zeros(n, dtype=bool)
    severity = np.empty(n)
    if band.is_mmwave:
        u_block = rng.random(n)
        state = False
        for i in range(n):
            if state:
                p_recover = 1.0 - np.exp(-process.dt_s / blockage.recovery_s)
                state = not (u_block[i] < p_recover)
            else:
                rate = blockage.block_rate_per_m * speeds[i]
                p_block = 1.0 - np.exp(-rate * process.dt_s)
                state = bool(u_block[i] < p_block)
            blocked[i] = state
        onsets = blocked & ~np.concatenate([[False], blocked[:-1]])
        drawn = rng.uniform(0.5, 1.0, size=int(onsets.sum()))
        current = 1.0
        event = 0
        for i in range(n):
            if onsets[i]:
                current = float(drawn[event])
                event += 1
            severity[i] = current
    else:
        severity.fill(1.0)

    innovations = rng.normal(0.0, sigma * np.sqrt(1.0 - rho**2), size=n)
    out = np.empty(n)
    fading = 0.0
    depth = 0.0
    full_fade = _BLOCKAGE_FADE_DB + 18.0
    pathloss = process._pathloss
    for i in range(n):
        if band.is_mmwave:
            target = 1.0 if blocked[i] else 0.0
            depth += (target - depth) * alpha
        fading = rho * fading + innovations[i]
        loss = pathloss.path_loss_db(float(distances_m[i]), los=True)
        rsrp = _TX_EIRP_DBM[band.band_class] - loss + fading
        rsrp -= full_fade * depth * severity[i]
        out[i] = float(np.clip(rsrp, RSRP_MIN_DBM, RSRP_MAX_DBM))
    return out


def spectral_efficiency_scalar(sinr_db: float) -> float:
    """Pre-PR scalar truncated-Shannon spectral efficiency."""
    if sinr_db < _MIN_SINR_DB:
        return 0.0
    sinr = 10.0 ** (sinr_db / 10.0)
    eff = _SHANNON_ATTENUATION * np.log2(1.0 + sinr)
    return float(min(eff, _MAX_SPECTRAL_EFFICIENCY))


def capacity_series_scalar(
    link: LinkBudget, rsrp_series_dbm, downlink: bool = True
) -> np.ndarray:
    """Pre-PR ``capacity_series_mbps``: scalar math per sample.

    Re-derives the noise floor, CC count, and envelope for every
    sample, with Python-float ``**`` — the vectorized ufunc pipeline
    matches this to <=1 ulp (SIMD pow rounding).
    """
    rsrp_series_dbm = np.asarray(rsrp_series_dbm, dtype=float)
    out = np.empty(rsrp_series_dbm.shape)
    for i, rsrp_dbm in enumerate(rsrp_series_dbm):
        eff = spectral_efficiency_scalar(link.sinr_db(float(rsrp_dbm)))
        cc = link._cc(downlink)
        per_cc_mbps = eff * link.network.band.bandwidth_mhz
        raw = per_cc_mbps * cc
        if not downlink:
            raw *= 0.25
        modem_cap = link.modem.max_dl_mbps if downlink else link.modem.max_ul_mbps
        network_peak = (
            link.network.peak_dl_mbps if downlink else link.network.peak_ul_mbps
        )
        best_cc = 8 if downlink else 2
        if (
            link.network.band.is_mmwave
            and link.network.supports_ca
            and cc < best_cc
        ):
            envelope = network_peak * (0.5 + 0.5 * cc / best_cc)
        else:
            envelope = network_peak
        out[i] = float(max(0.0, min(raw, modem_cap, envelope)))
    return out


def udp_run_scalar(
    flow: UdpFlow, capacity, duration_s: float = 10.0, dt_s: float = 0.1
) -> FlowResult:
    """Pre-PR ``UdpFlow.run``: one capacity evaluation per step.

    (Including the pre-PR bug: ``steps`` may round to 0 and produce a
    NaN mean — kept verbatim so the regression test documents the fix.)
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    steps = int(round(duration_s / dt_s))
    rates = np.empty(steps)
    for i in range(steps):
        cap = capacity(i * dt_s) if callable(capacity) else capacity
        offered = flow.target_mbps if flow.target_mbps is not None else cap
        rates[i] = max(0.0, min(offered, cap)) * (1.0 - flow.header_overhead)
    with np.errstate(invalid="ignore"):
        mean = float(np.mean(rates)) if steps else float("nan")
    return FlowResult(
        throughput_mbps=mean,
        rate_series_mbps=rates,
        loss_events=0,
        duration_s=duration_s,
    )


def tcp_run_scalar(
    flow: TcpFlow, capacity, duration_s: float = 15.0
) -> FlowResult:
    """Pre-PR ``TcpFlow.run``: per-RTT scalar stepping with on-demand
    loss draws (the short-circuit skips the draw on overflow steps —
    the vectorized path replicates this by consuming a pre-drawn
    uniform stream at the same positions)."""
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = np.random.default_rng(flow.seed)
    cubic = CubicState()
    rtt_s = flow.rtt_ms / 1000.0
    steps = max(1, int(round(duration_s / rtt_s)))
    buffer_bytes = flow.kernel.effective_window_bytes
    rates = np.empty(steps)
    losses = 0
    for i in range(steps):
        t = i * rtt_s
        cap_mbps = capacity(t) if callable(capacity) else capacity
        cap_mbps = max(cap_mbps, 1e-3)
        bdp = bandwidth_delay_product_bytes(cap_mbps, flow.rtt_ms)
        window = min(cubic.cwnd_bytes(), buffer_bytes)
        rate_mbps = min(window * 8.0 / rtt_s / 1e6, cap_mbps)
        rates[i] = rate_mbps

        packets = rate_mbps * 1e6 / 8.0 * rtt_s / MSS_BYTES
        p_random = 1.0 - (1.0 - flow.loss_rate) ** max(packets, 0.0)
        overflow = cubic.cwnd_bytes() > (1.0 + flow.queue_bdp_factor) * bdp
        if overflow or rng.random() < p_random:
            cubic.on_loss()
            losses += 1
        else:
            cubic.on_ack_interval(rtt_s)
    return FlowResult(
        throughput_mbps=float(np.mean(rates)),
        rate_series_mbps=rates,
        loss_events=losses,
        duration_s=duration_s,
    )


def blockage_series_step_loop(
    model: BlockageModel,
    duration_s: float,
    speed_mps: float,
    dt_s: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    start_blocked: bool = False,
) -> np.ndarray:
    """Pre-PR ``BlockageModel.simulate``: one :meth:`step` per tick.

    Draws exactly one uniform per tick, so the vectorized Markov scan
    is bit-identical to this loop.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    steps = int(np.ceil(duration_s / dt_s))
    out = np.zeros(steps, dtype=bool)
    state = start_blocked
    for i in range(steps):
        state = model.step(state, speed_mps, dt_s, rng)
        out[i] = state
    return out


def walking_generate_scalar(generator, name: str):
    """Pre-PR ``WalkingTraceGenerator.generate``: per-tick serving-tower
    search, ``RsrpProcess.step``, scalar capacity and power curve.

    The benchmark's end-to-end "before" measurement. RSRP values differ
    from the vectorized generator (step vs simulate draw order); the
    compute cost is the pre-PR cost, which is what is being measured.
    """
    from repro.mobility.trajectory import Trajectory
    from repro.radio.link import LinkBudget
    from repro.radio.towers import TowerGrid
    from repro.traces.schema import WalkingTrace
    from repro.traces.walking import LOG_RATE_HZ

    self = generator
    trajectory = Trajectory.from_route(self.route, dt_s=1.0 / LOG_RATE_HZ)
    grid = TowerGrid.along_route(
        self.network.band,
        self.route.waypoints,
        count=self.n_towers,
        jitter_m=40.0,
        seed=int(self._rng.integers(0, 2**31)),
    )
    signal = RsrpProcess(
        self.network.band,
        dt_s=1.0 / LOG_RATE_HZ,
        seed=int(self._rng.integers(0, 2**31)),
    )
    link = LinkBudget(self.network, self.device.modem)
    curve = self.device.curve(self.network.key)

    n = len(trajectory)
    rsrps = np.empty(n)
    dls = np.empty(n)
    uls = np.empty(n)
    powers = np.empty(n)
    max_coverage = self.network.band.coverage_km * 1000.0
    transfer_active = True
    uplink_burst = False
    target_mbps = float("inf")
    for i in range(n):
        x, y = float(trajectory.x_m[i]), float(trajectory.y_m[i])
        serving = grid.serving_tower(x, y, self.network.band)
        distance = serving[1] if serving is not None else max_coverage
        rsrp = signal.step(distance, float(trajectory.speed_mps[i]))
        dl = ul = 0.0
        if transfer_active:
            if self._rng.random() < 1.0 / 300.0:
                transfer_active = False
            capacity = link.capacity_mbps(rsrp, downlink=not uplink_burst)
            share = float(np.clip(self._rng.normal(0.8, 0.08), 0.3, 1.0))
            rate = min(capacity * share, target_mbps)
            if uplink_burst:
                ul = rate
            else:
                dl = rate
        else:
            if self._rng.random() < 1.0 / 50.0:
                transfer_active = True
                uplink_burst = self._rng.random() < self.uplink_fraction
                if self._rng.random() < 0.5:
                    target_mbps = float("inf")
                else:
                    peak = (
                        self.network.peak_ul_mbps
                        if uplink_burst
                        else self.network.peak_dl_mbps
                    )
                    target_mbps = float(self._rng.uniform(5.0, peak))
        power = curve.power_mw(dl_mbps=dl, ul_mbps=ul, rsrp_dbm=rsrp)
        power *= float(self._rng.normal(1.0, 0.03))
        rsrps[i], dls[i], uls[i] = rsrp, dl, ul
        powers[i] = max(power, 0.0)
    return WalkingTrace(
        name=name,
        network_key=self.network.key,
        device_name=self.device.name,
        city=self.city,
        times_s=trajectory.times_s.copy(),
        dl_mbps=dls,
        ul_mbps=uls,
        rsrp_dbm=rsrps,
        power_mw=powers,
        band_class=self.network.band.band_class.value,
    )


def software_measure_scalar(
    monitor: SoftwareMonitor,
    power_fn,
    duration_s: float,
    start_s: float = 0.0,
) -> List[SoftwareReading]:
    """Pre-PR ``SoftwareMonitor.measure``: one draw + call per sample.

    One normal draw per sample in sample order, so the vectorized
    batched draw is bit-identical to this loop.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    n = int(round(duration_s * monitor.rate_hz))
    ratio = underestimate_ratio(monitor.rate_hz)
    rng = np.random.default_rng(monitor.seed)
    readings: List[SoftwareReading] = []
    for i in range(n):
        t = start_s + i / monitor.rate_hz
        truth = power_fn(float(t)) + monitor.overhead_mw
        noise = rng.normal(1.0, monitor.noise_ratio)
        reported = max(0.0, truth * ratio * noise)
        current_ma = reported / monitor.voltage_mv * 1000.0
        readings.append(
            SoftwareReading(
                t_s=t,
                power_mw=reported,
                current_ma=current_ma,
                voltage_mv=monitor.voltage_mv,
            )
        )
    return readings
