"""Dependency-free SVG rendering of the paper's figures.

The environment ships no plotting library, so :mod:`repro.viz.svg`
implements a compact chart toolkit (line/scatter/bar charts, log axes,
legends) that emits standalone SVG, and :mod:`repro.viz.figures` maps
experiment-runner outputs onto those charts — ``python -m repro render
fig11 out/`` regenerates the paper's figures as image files.
"""

from repro.viz.svg import BarChart, Chart, Series, render_svg
from repro.viz.figures import FIGURES, render_figure

__all__ = [
    "BarChart",
    "Chart",
    "FIGURES",
    "Series",
    "render_figure",
    "render_svg",
]
