"""Per-figure SVG renderers over the experiment runners.

Each ``render_*`` function runs the corresponding experiment (at a
configurable scale) and writes one or more SVG files shaped like the
paper's figures. ``python -m repro render <figure> <outdir>`` is the
CLI entry point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List

from repro import experiments as ex
from repro.viz.svg import BarChart, Chart, Series, render_svg


def render_fig1(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 1: per-city RTT on a (schematic) US map.

    Carrier-hosted Speedtest servers at real metro coordinates, colored
    and labeled by the measured RTT from the Minneapolis UE — the
    paper's map figure, minus the basemap.
    """
    from repro.net.latency import LatencyModel
    from repro.net.servers import carrier_server_pool
    from repro.radio.carriers import get_network

    model = LatencyModel(get_network("verizon-nsa-mmwave"), seed=0)
    ue_lat, ue_lon = 44.9778, -93.2650
    servers = carrier_server_pool("Verizon")
    points = []
    for server in servers:
        rtt = model.min_rtt_ms(server.distance_km_from(ue_lat, ue_lon))
        points.append((server.city, server.lat, server.lon, rtt))

    width, height = 760, 480
    lat_lo, lat_hi = 24.0, 50.0
    lon_lo, lon_hi = -126.0, -66.0

    def px(lon: float) -> float:
        return 30 + (lon - lon_lo) / (lon_hi - lon_lo) * (width - 60)

    def py(lat: float) -> float:
        return height - 40 - (lat - lat_lo) / (lat_hi - lat_lo) * (height - 90)

    max_rtt = max(p[3] for p in points)

    def color(rtt: float) -> str:
        frac = min(rtt / max_rtt, 1.0)
        red = int(40 + 215 * frac)
        green = int(160 * (1 - frac) + 40)
        return f"rgb({red},{green},60)"

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="Helvetica,Arial,sans-serif">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="22" text-anchor="middle" font-size="14" '
        f'font-weight="bold">Fig. 1: RTT (ms) from Minneapolis to carrier-hosted servers</text>',
        f'<rect x="30" y="40" width="{width - 60}" height="{height - 90}" '
        f'fill="#f4f7fa" stroke="#bbb"/>',
    ]
    for city, lat, lon, rtt in points:
        x, y = px(lon), py(lat)
        radius = 6 if city == "Minneapolis" else 5
        parts.append(
            f'<circle cx="{x:.0f}" cy="{y:.0f}" r="{radius}" fill="{color(rtt)}" '
            f'stroke="#333" stroke-width="0.6"/>'
        )
        parts.append(
            f'<text x="{x:.0f}" y="{y - 8:.0f}" text-anchor="middle" '
            f'font-size="10">{rtt:.0f}</text>'
        )
        parts.append(
            f'<text x="{x:.0f}" y="{y + 16:.0f}" text-anchor="middle" '
            f'font-size="8" fill="#555">{city}</text>'
        )
    parts.append(
        f'<text x="{width / 2}" y="{height - 12}" text-anchor="middle" '
        f'font-size="11">green = low RTT, red = high; UE in Minneapolis</text>'
    )
    parts.append("</svg>")
    path = Path(outdir) / "fig1_rtt_map.svg"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(parts))
    return [path]


def render_fig2(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 2: RTT vs UE-server distance per radio technology."""
    result = ex.run_latency_vs_distance(n_servers=max(6, int(20 * scale)))
    chart = Chart(
        title="Fig. 2: [Verizon] latency vs UE-server distance",
        x_label="UE-Server distance (km)",
        y_label="RTT (ms)",
    )
    labels = {
        "verizon-nsa-mmwave": "mmWave",
        "verizon-nsa-lowband": "Low-Band",
        "verizon-lte": "LTE/4G",
    }
    for key, label in labels.items():
        points = result["series"][key]
        chart.add(Series(label, [p[0] for p in points], [p[1] for p in points]))
    path = outdir / "fig2_latency.svg"
    render_svg(chart, path)
    return [path]


def render_fig3(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 3/4: Verizon mmWave throughput vs distance."""
    result = ex.run_throughput_vs_distance(
        n_servers=max(4, int(10 * scale)), repetitions=max(3, int(8 * scale))
    )
    rows = result["rows"]
    xs = [r["distance_km"] for r in rows]
    downlink = Chart(
        title="Fig. 3: [Verizon mmWave] downlink vs distance",
        x_label="UE-Server distance (km)",
        y_label="Downlink throughput (Mbps)",
    )
    downlink.add(Series("multiple conn.", xs, [r["dl_multi_mbps"] for r in rows]))
    downlink.add(Series("single conn.", xs, [r["dl_single_mbps"] for r in rows]))
    uplink = Chart(
        title="Fig. 4: [Verizon mmWave] uplink vs distance",
        x_label="UE-Server distance (km)",
        y_label="Uplink throughput (Mbps)",
    )
    uplink.add(Series("multiple conn.", xs, [r["ul_multi_mbps"] for r in rows]))
    uplink.add(Series("single conn.", xs, [r["ul_single_mbps"] for r in rows]))
    paths = [outdir / "fig3_downlink.svg", outdir / "fig4_uplink.svg"]
    render_svg(downlink, paths[0])
    render_svg(uplink, paths[1])
    return paths


def render_fig8(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 8: transport settings across Azure regions."""
    result = ex.run_azure_transport()
    rows = result["rows"]
    chart = BarChart(
        title="Fig. 8: single-conn throughput across Azure regions",
        x_label="Azure region (by UE distance)",
        y_label="Throughput (Mbps)",
        categories=[f"{r['region']} {r['distance_km']:.0f}km" for r in rows],
    )
    chart.add_group("UDP", [r["udp_mbps"] for r in rows])
    chart.add_group("TCP-8", [r["tcp8_mbps"] for r in rows])
    chart.add_group("TCP-1 tuned", [r["tcp1_tuned_mbps"] for r in rows])
    chart.add_group("TCP-1 default", [r["tcp1_default_mbps"] for r in rows])
    path = outdir / "fig8_transport.svg"
    render_svg(chart, path)
    return [path]


def render_fig9(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 9: handoff counts per band configuration."""
    result = ex.run_handoff_drive()
    rows = result["rows"]
    chart = BarChart(
        title="Fig. 9: handoffs while driving (10 km)",
        x_label="Band configuration",
        y_label="Handoff count",
        categories=[r["configuration"] for r in rows],
    )
    chart.add_group("horizontal", [r["horizontal"] for r in rows])
    chart.add_group("vertical", [r["vertical"] for r in rows])
    path = outdir / "fig9_handoffs.svg"
    render_svg(chart, path)
    return [path]


def render_fig10(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 10: RRC-Probe RTT vs idle interval, four panels."""
    result = ex.run_rrc_inference(
        network_keys=[
            "tmobile-sa-lowband",
            "tmobile-nsa-lowband",
            "verizon-nsa-mmwave",
            "tmobile-lte",
        ]
    )
    paths = []
    for key, sweep in result["sweeps"].items():
        chart = Chart(
            title=f"Fig. 10: RRC-Probe — {key}",
            x_label="Idle time between packets (s)",
            y_label="RTT (ms)",
        )
        xs, ys = [], []
        for sample in sweep.samples:
            xs.append(sample.interval_s)
            ys.append(sample.rtt_ms)
        chart.add(Series("probe RTT", xs, ys, kind="scatter"))
        path = outdir / f"fig10_{key}.svg"
        render_svg(chart, path)
        paths.append(path)
    return paths


def render_fig11(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 11: throughput vs power, downlink and uplink panels."""
    result = ex.run_throughput_power(n_points=max(5, int(10 * scale)))
    labels = {
        "verizon-nsa-mmwave": "5G NSA mmWave",
        "verizon-nsa-lowband": "5G NSA Low-Band",
        "verizon-lte": "4G/LTE",
    }
    paths = []
    for direction, xlabel in (("dl", "Downlink"), ("ul", "Uplink")):
        chart = Chart(
            title=f"Fig. 11: throughput vs power ({xlabel.lower()}, S20U)",
            x_label=f"{xlabel} throughput (Mbps)",
            y_label="Power (W)",
        )
        for key, label in labels.items():
            sweep = result["sweeps"][key][direction]
            chart.add(
                Series(
                    label,
                    list(sweep["throughput"]),
                    [p / 1000.0 for p in sweep["power_mw"]],
                )
            )
        path = outdir / f"fig11_{direction}.svg"
        render_svg(chart, path)
        paths.append(path)
    return paths


def render_fig12(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 12: energy efficiency, log-log."""
    sweep = ex.run_throughput_power(n_points=max(5, int(10 * scale)))
    result = ex.run_energy_efficiency(throughput_power=sweep)
    labels = {
        "verizon-nsa-mmwave": "5G NSA mmWave",
        "verizon-nsa-lowband": "5G NSA Low-Band",
        "verizon-lte": "4G/LTE",
    }
    chart = Chart(
        title="Fig. 12: downlink energy efficiency (log-log)",
        x_label="Downlink throughput (Mbps)",
        y_label="Energy efficiency (mW/Mbps)",
        x_log=True,
        y_log=True,
        y_min=1.0,
    )
    for key, label in labels.items():
        curve = result["curves"][(key, "dl")]
        chart.add(Series(label, list(curve["throughput"]), list(curve["efficiency"])))
    path = outdir / "fig12_efficiency.svg"
    render_svg(chart, path)
    return [path]


def render_fig17(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 17: two-dimensional ABR QoE scatter, 5G and 4G panels."""
    result = ex.run_abr_comparison(n_traces=max(6, int(20 * scale)))
    paths = []
    for tech in ("5G", "4G"):
        chart = Chart(
            title=f"Fig. 17: ABR QoE on {tech}",
            x_label="Playback time spent on stall (%)",
            y_label="Normalized bitrate",
            y_min=0.0,
            y_max=1.0,
        )
        for row in result["rows"]:
            chart.add(
                Series(
                    row["abr"],
                    [row[f"stall_{tech}"]],
                    [row[f"bitrate_{tech}"]],
                    kind="scatter",
                )
            )
        path = outdir / f"fig17_{tech.lower()}.svg"
        render_svg(chart, path)
        paths.append(path)
    return paths


def render_fig20(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 20: PLT and energy CDFs."""
    result = ex.run_web_factors(n_sites=max(100, int(600 * scale)))
    paths = []
    for metric, xlabel in (("plt", "PLT (s)"), ("energy", "Energy (J)")):
        chart = Chart(
            title=f"Fig. 20: CDF of {xlabel}",
            x_label=xlabel,
            y_label="CDF",
            y_min=0.0,
            y_max=1.0,
        )
        for radio in ("5g", "4g"):
            xs, ys = result["cdfs"][f"{metric}_{radio}"]
            chart.add(
                Series(radio.upper(), list(xs), list(ys), kind="line-only")
            )
        path = outdir / f"fig20_{metric}.svg"
        render_svg(chart, path)
        paths.append(path)
    return paths


def render_fig21(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 21: energy saving vs PLT penalty."""
    result = ex.run_web_factors(n_sites=max(100, int(600 * scale)))
    rows = [r for r in result["fig21"] if r["n"] > 0]
    chart = BarChart(
        title="Fig. 21: 4G's PLT penalty vs energy saving over 5G",
        x_label="Penalty of additional PLT (%)",
        y_label="Energy saving (%)",
        categories=[r["penalty_bucket"] for r in rows],
    )
    chart.add_group("energy saving", [r["energy_saving_percent"] for r in rows])
    path = outdir / "fig21_penalty.svg"
    render_svg(chart, path)
    return [path]




def render_fig13(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 13: power vs RSRP, colored by throughput band."""
    result = ex.run_walking_power(n_traces=max(2, int(4 * scale)), seed=5)
    scatter = result["scatter"]
    rsrp = scatter["rsrp_dbm"]
    tput = scatter["throughput_mbps"]
    power = scatter["power_mw"]
    chart = Chart(
        title=f"Fig. 13: power-RSRP-throughput ({result['city']}, {result['device']})",
        x_label="Power (W)",
        y_label="NR-SS-RSRP (dBm)",
        y_min=-125.0,
        y_max=-55.0,
    )
    buckets = (
        ("<100 Mbps", tput < 100.0),
        ("100-800 Mbps", (tput >= 100.0) & (tput < 800.0)),
        (">800 Mbps", tput >= 800.0),
    )
    stride = max(1, int(rsrp.shape[0] / 400))
    for label, mask in buckets:
        xs = (power[mask] / 1000.0)[::stride]
        ys = rsrp[mask][::stride]
        if xs.shape[0]:
            chart.add(Series(label, list(xs), list(ys), kind="scatter"))
    path = outdir / "fig13_power_rsrp.svg"
    render_svg(chart, path)
    return [path]


def render_fig14(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 14: energy efficiency by RSRP bin."""
    result = ex.run_walking_power(n_traces=max(2, int(6 * scale)), seed=9)
    bins = [b for b in result["bins"] if b["n"] > 10]
    chart = BarChart(
        title="Fig. 14: energy efficiency vs RSRP (mmWave)",
        x_label="NR-SS-RSRP bin (dBm)",
        y_label="Energy efficiency (mW/Mbps)",
        categories=[f"[{int(b['bin'][0])},{int(b['bin'][1])})" for b in bins],
    )
    chart.add_group("median efficiency", [b["efficiency"] for b in bins])
    path = outdir / "fig14_efficiency_bins.svg"
    render_svg(chart, path)
    return [path]


def render_fig15(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 15: power-model MAPE by feature set and setting."""
    result = ex.run_power_models(
        n_train=max(3, int(6 * scale)), n_test=max(1, int(2 * scale)), seed=5
    )
    rows = result["rows"]
    chart = BarChart(
        title="Fig. 15: power-model MAPE by setting",
        x_label="Device/Carrier/Network",
        y_label="MAPE (%)",
        categories=[r["setting"] for r in rows],
    )
    for key in ("TH+SS", "TH", "SS"):
        chart.add_group(key, [r[key] for r in rows])
    path = outdir / "fig15_mape.svg"
    render_svg(chart, path)
    return [path]


def render_fig18(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 18: predictors, chunk lengths, and interface selection."""
    paths = []
    predictors = ex.run_video_predictors(n_traces=max(6, int(14 * scale)))
    chart = BarChart(
        title="Fig. 18a: fastMPC QoE by throughput predictor",
        x_label="Predictor",
        y_label="Normalized QoE",
        categories=list(predictors["normalized_qoe"]),
    )
    chart.add_group("QoE", list(predictors["normalized_qoe"].values()))
    path = outdir / "fig18a_predictors.svg"
    render_svg(chart, path)
    paths.append(path)

    chunks = ex.run_chunk_lengths(n_traces=max(6, int(14 * scale)))
    chart = BarChart(
        title="Fig. 18b: QoE by chunk length",
        x_label="Chunk length (s)",
        y_label="value",
        categories=[f"{r['chunk_s']:g}s" for r in chunks["rows"]],
    )
    chart.add_group("normalized bitrate", [r["normalized_bitrate"] for r in chunks["rows"]])
    chart.add_group("stall fraction", [r["stall_percent"] / 100.0 for r in chunks["rows"]])
    path = outdir / "fig18b_chunks.svg"
    render_svg(chart, path)
    paths.append(path)

    selection = ex.run_video_interface_selection(n_pairs=max(4, int(16 * scale)))
    chart = BarChart(
        title="Fig. 18c: interface selection schemes",
        x_label="Scheme",
        y_label="value",
        categories=list(selection["summary"]),
    )
    chart.add_group(
        "normalized bitrate",
        [s["normalized_bitrate"] for s in selection["summary"].values()],
    )
    chart.add_group(
        "stall fraction",
        [s["stall_percent"] / 100.0 for s in selection["summary"].values()],
    )
    path = outdir / "fig18c_selection.svg"
    render_svg(chart, path)
    paths.append(path)
    return paths


def render_fig19(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 19: PLT and energy by page factors."""
    result = ex.run_web_factors(n_sites=max(100, int(600 * scale)))
    paths = []
    for key, xlabel, stem in (
        ("fig19_objects", "Number of objects", "fig19a_objects"),
        ("fig19_size", "Total page size", "fig19b_size"),
    ):
        rows = [r for r in result[key] if r["n"] > 0]
        chart = BarChart(
            title=f"Fig. 19: impact of {xlabel.lower()}",
            x_label=xlabel,
            y_label="PLT (s) / Energy (J)",
            categories=[r["bucket"] for r in rows],
        )
        chart.add_group("4G PLT", [r["plt_4g"] for r in rows])
        chart.add_group("5G PLT", [r["plt_5g"] for r in rows])
        chart.add_group("4G Energy", [r["energy_4g"] for r in rows])
        chart.add_group("5G Energy", [r["energy_5g"] for r in rows])
        path = outdir / f"{stem}.svg"
        render_svg(chart, path)
        paths.append(path)
    return paths


def render_fig23(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 23: carrier-aggregation throughput by device."""
    result = ex.run_carrier_aggregation(repetitions=max(3, int(5 * scale)))
    rows = result["rows"]
    chart = BarChart(
        title="Fig. 23: 4CC (PX5) vs 8CC (S20U)",
        x_label="Device",
        y_label="Downlink throughput (Mbps)",
        categories=[f"{r['device']} ({r['dl_cc']}CC)" for r in rows],
    )
    chart.add_group("single conn.", [r["dl_single_mbps"] for r in rows])
    chart.add_group("multiple conn.", [r["dl_multi_mbps"] for r in rows])
    path = outdir / "fig23_carrier_agg.svg"
    render_svg(chart, path)
    return [path]


def render_fig24(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 24: Minnesota Speedtest-server survey."""
    result = ex.run_server_survey(repetitions=max(3, int(6 * scale)))
    rows = result["rows"]
    chart = BarChart(
        title="Fig. 24: downlink across Minnesota servers",
        x_label="Speedtest server",
        y_label="Downlink throughput (Gbps)",
        categories=[f"{i + 1}" for i in range(len(rows))],
        width=900,
    )
    chart.add_group("DL", [r["dl_mbps"] / 1000.0 for r in rows])
    path = outdir / "fig24_servers.svg"
    render_svg(chart, path)
    return [path]




def render_fig6(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 5/6/7: T-Mobile SA vs NSA latency and throughput."""
    n_servers = max(4, int(8 * scale))
    reps = max(3, int(6 * scale))
    sa = ex.run_throughput_vs_distance(
        network_key="tmobile-sa-lowband", n_servers=n_servers, repetitions=reps, seed=1
    )["rows"]
    nsa = ex.run_throughput_vs_distance(
        network_key="tmobile-nsa-lowband", n_servers=n_servers, repetitions=reps, seed=1
    )["rows"]
    xs = [r["distance_km"] for r in sa]
    paths = []

    latency = Chart(
        title="Fig. 5: [T-Mobile] SA vs NSA latency",
        x_label="UE-Server distance (km)",
        y_label="RTT (ms)",
    )
    latency.add(Series("SA Low-Band", xs, [r["rtt_ms"] for r in sa]))
    latency.add(Series("NSA Low-Band", xs, [r["rtt_ms"] for r in nsa]))
    path = outdir / "fig5_tmobile_latency.svg"
    render_svg(latency, path)
    paths.append(path)

    downlink = Chart(
        title="Fig. 6: [T-Mobile] SA vs NSA downlink",
        x_label="UE-Server distance (km)",
        y_label="Downlink throughput (Mbps)",
    )
    downlink.add(Series("SA multi", xs, [r["dl_multi_mbps"] for r in sa]))
    downlink.add(Series("NSA multi", xs, [r["dl_multi_mbps"] for r in nsa]))
    downlink.add(Series("SA single", xs, [r["dl_single_mbps"] for r in sa]))
    downlink.add(Series("NSA single", xs, [r["dl_single_mbps"] for r in nsa]))
    path = outdir / "fig6_tmobile_downlink.svg"
    render_svg(downlink, path)
    paths.append(path)

    uplink = Chart(
        title="Fig. 7: [T-Mobile] SA vs NSA uplink",
        x_label="UE-Server distance (km)",
        y_label="Uplink throughput (Mbps)",
    )
    uplink.add(Series("SA multi", xs, [r["ul_multi_mbps"] for r in sa]))
    uplink.add(Series("NSA multi", xs, [r["ul_multi_mbps"] for r in nsa]))
    path = outdir / "fig7_tmobile_uplink.svg"
    render_svg(uplink, path)
    paths.append(path)
    return paths




def _tree_svg(tree, title: str, max_depth: int = 2) -> str:
    """Draw the top of a fitted decision tree as boxes and edges."""
    width, height = 720, 360
    levels: List[List] = [[] for _ in range(max_depth + 1)]

    def place(node, depth, lo, hi):
        if node is None or depth > max_depth:
            return
        x = (lo + hi) / 2.0
        levels[depth].append((node, x))
        if not node.is_leaf and depth < max_depth:
            mid = (lo + hi) / 2.0
            place(node.left, depth + 1, lo, mid)
            place(node.right, depth + 1, mid, hi)

    place(tree._root, 0, 0.06, 0.94)
    names = tree.feature_names_ or []

    def label(node, depth):
        if node.is_leaf or depth == max_depth:
            try:
                cls = tree.classes_[int(node.value)]
            except AttributeError:
                cls = f"{node.value:.3g}"
            verdict = "Use 5G" if str(cls) == "1" else "Use 4G" if str(cls) == "0" else str(cls)
            return f"{verdict} (n={node.n_samples})"
        feature = names[node.feature] if node.feature < len(names) else f"x[{node.feature}]"
        return f"{feature} &lt;= {node.threshold:.3g}"

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="Helvetica,Arial,sans-serif">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="24" text-anchor="middle" font-size="14" '
        f'font-weight="bold">{title}</text>',
    ]
    y_for = lambda depth: 70 + depth * 100
    positions = {}
    for depth, row in enumerate(levels):
        for node, fx in row:
            positions[id(node)] = (fx * width, y_for(depth))
    for depth, row in enumerate(levels[:-1]):
        for node, _fx in row:
            if node.is_leaf or depth >= max_depth:
                continue
            x0, y0 = positions[id(node)]
            for child, tag in ((node.left, "True"), (node.right, "False")):
                if id(child) not in positions:
                    continue
                x1, y1 = positions[id(child)]
                parts.append(
                    f'<line x1="{x0:.0f}" y1="{y0 + 18:.0f}" x2="{x1:.0f}" '
                    f'y2="{y1 - 18:.0f}" stroke="#888"/>'
                )
                parts.append(
                    f'<text x="{(x0 + x1) / 2:.0f}" y="{(y0 + y1) / 2:.0f}" '
                    f'text-anchor="middle" font-size="10" fill="#555">{tag}</text>'
                )
    for depth, row in enumerate(levels):
        for node, _fx in row:
            x, y = positions[id(node)]
            text = label(node, depth)
            box_w = max(120, 7 * len(text))
            fill = "#eef4ff" if not (node.is_leaf or depth == max_depth) else "#eaffea"
            parts.append(
                f'<rect x="{x - box_w / 2:.0f}" y="{y - 18:.0f}" width="{box_w}" '
                f'height="36" rx="6" fill="{fill}" stroke="#666"/>'
            )
            parts.append(
                f'<text x="{x:.0f}" y="{y + 4:.0f}" text-anchor="middle" '
                f'font-size="11">{text}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def render_fig22(outdir: Path, scale: float = 1.0) -> List[Path]:
    """Fig. 22: the M1 and M4 radio-selection decision trees."""
    factors = ex.run_web_factors(n_sites=max(150, int(600 * scale)))
    selection = ex.run_web_selection(dataset=factors["dataset"], seed=1)
    paths = []
    for model_id, subtitle in (("M1", "High Performance"), ("M4", "Better Energy Saving")):
        tree = selection["reports"][model_id].tree
        svg = _tree_svg(tree, f"Fig. 22: {model_id} ({subtitle})")
        path = Path(outdir) / f"fig22_{model_id.lower()}.svg"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(svg)
        paths.append(path)
    return paths


FIGURES: Dict[str, Callable] = {
    "fig1": render_fig1,
    "fig2": render_fig2,
    "fig3": render_fig3,
    "fig6": render_fig6,
    "fig8": render_fig8,
    "fig9": render_fig9,
    "fig10": render_fig10,
    "fig11": render_fig11,
    "fig12": render_fig12,
    "fig13": render_fig13,
    "fig14": render_fig14,
    "fig15": render_fig15,
    "fig17": render_fig17,
    "fig18": render_fig18,
    "fig19": render_fig19,
    "fig20": render_fig20,
    "fig21": render_fig21,
    "fig22": render_fig22,
    "fig23": render_fig23,
    "fig24": render_fig24,
}


def render_figure(name: str, outdir, scale: float = 1.0) -> List[Path]:
    """Render one figure (or ``"all"``) into ``outdir``."""
    outdir = Path(outdir)
    if name == "all":
        paths: List[Path] = []
        for renderer in FIGURES.values():
            paths.extend(renderer(outdir, scale))
        return paths
    try:
        renderer = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; known: {sorted(FIGURES)} or 'all'"
        ) from None
    return renderer(outdir, scale)
