"""A compact, dependency-free SVG chart toolkit.

Supports the chart forms the paper's figures need: line charts with
markers, scatter plots, grouped bar charts, linear and log axes, and a
simple legend. The output is a standalone ``<svg>`` document.

This is intentionally a *small* toolkit: fixed margins, automatic
"nice" tick selection, one plot area per chart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

# A color cycle with decent print/screen contrast.
PALETTE = (
    "#1f77b4",  # blue
    "#ff7f0e",  # orange
    "#2ca02c",  # green
    "#d62728",  # red
    "#9467bd",  # purple
    "#8c564b",  # brown
    "#e377c2",  # pink
    "#7f7f7f",  # gray
)

_MARKERS = ("circle", "square", "triangle", "diamond")


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Pick ~target round tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(target, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiple * magnitude
        if span / step <= target + 1:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9 * span:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Decade ticks for a log axis."""
    lo = max(lo, 1e-12)
    start = math.floor(math.log10(lo))
    end = math.ceil(math.log10(max(hi, lo * 10)))
    return [10.0**e for e in range(start, end + 1)]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


@dataclass
class Series:
    """One plotted series.

    Attributes:
        label: legend label.
        x, y: data points (equal length).
        kind: ``"line"`` (polyline + markers), ``"scatter"`` (markers
            only), or ``"line-only"``.
        color: CSS color; defaults to the palette slot.
    """

    label: str
    x: Sequence[float]
    y: Sequence[float]
    kind: str = "line"
    color: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x and y lengths differ")
        if self.kind not in ("line", "scatter", "line-only"):
            raise ValueError(f"unknown series kind {self.kind!r}")


@dataclass
class Chart:
    """A single-axes chart (line and/or scatter series)."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    width: int = 640
    height: int = 420
    x_log: bool = False
    y_log: bool = False
    y_min: Optional[float] = None
    y_max: Optional[float] = None

    _MARGIN = (60, 20, 46, 44)  # left, right, bottom, top

    def add(self, series: Series) -> "Chart":
        self.series.append(series)
        return self

    # -- scaling -----------------------------------------------------------
    def _data_bounds(self) -> Tuple[float, float, float, float]:
        xs = [v for s in self.series for v in s.x]
        ys = [v for s in self.series for v in s.y]
        if not xs:
            raise ValueError("chart has no data")
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if self.y_min is not None:
            y_lo = self.y_min
        if self.y_max is not None:
            y_hi = self.y_max
        if not self.y_log and self.y_min is None:
            y_lo = min(y_lo, 0.0)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def _scale(self):
        left, right, bottom, top = self._MARGIN
        x_lo, x_hi, y_lo, y_hi = self._data_bounds()
        plot_w = self.width - left - right
        plot_h = self.height - top - bottom

        def tx(v: float) -> float:
            if self.x_log:
                v, lo, hi = (
                    math.log10(max(v, 1e-12)),
                    math.log10(max(x_lo, 1e-12)),
                    math.log10(max(x_hi, 1e-12)),
                )
            else:
                lo, hi = x_lo, x_hi
            return left + (v - lo) / (hi - lo) * plot_w

        def ty(v: float) -> float:
            if self.y_log:
                v, lo, hi = (
                    math.log10(max(v, 1e-12)),
                    math.log10(max(y_lo, 1e-12)),
                    math.log10(max(y_hi, 1e-12)),
                )
            else:
                lo, hi = y_lo, y_hi
            return top + plot_h - (v - lo) / (hi - lo) * plot_h

        return tx, ty, (x_lo, x_hi, y_lo, y_hi)

    # -- rendering -----------------------------------------------------------
    def _marker_svg(self, shape: str, x: float, y: float, color: str) -> str:
        r = 3.4
        if shape == "circle":
            return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{color}"/>'
        if shape == "square":
            return (
                f'<rect x="{x - r:.1f}" y="{y - r:.1f}" width="{2 * r:.1f}" '
                f'height="{2 * r:.1f}" fill="{color}"/>'
            )
        if shape == "triangle":
            points = f"{x:.1f},{y - r:.1f} {x - r:.1f},{y + r:.1f} {x + r:.1f},{y + r:.1f}"
            return f'<polygon points="{points}" fill="{color}"/>'
        points = f"{x:.1f},{y - r:.1f} {x + r:.1f},{y:.1f} {x:.1f},{y + r:.1f} {x - r:.1f},{y:.1f}"
        return f'<polygon points="{points}" fill="{color}"/>'

    def to_svg(self) -> str:
        if not self.series:
            raise ValueError("chart has no series")
        tx, ty, (x_lo, x_hi, y_lo, y_hi) = self._scale()
        left, right, bottom, top = self._MARGIN
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="Helvetica,Arial,sans-serif">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2:.0f}" y="{top - 18}" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(self.title)}</text>',
        ]
        # Axes frame.
        plot_right = self.width - right
        plot_bottom = self.height - bottom
        parts.append(
            f'<rect x="{left}" y="{top}" width="{plot_right - left}" '
            f'height="{plot_bottom - top}" fill="none" stroke="#333"/>'
        )
        # Ticks + grid.
        x_ticks = _log_ticks(x_lo, x_hi) if self.x_log else _nice_ticks(x_lo, x_hi)
        y_ticks = _log_ticks(y_lo, y_hi) if self.y_log else _nice_ticks(y_lo, y_hi)
        for tick in x_ticks:
            if not x_lo <= tick <= x_hi * (1 + 1e-9):
                continue
            px = tx(tick)
            parts.append(
                f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" y2="{plot_bottom}" '
                f'stroke="#ddd" stroke-width="0.6"/>'
            )
            label = f"{tick:g}"
            parts.append(
                f'<text x="{px:.1f}" y="{plot_bottom + 16}" text-anchor="middle" '
                f'font-size="11">{label}</text>'
            )
        for tick in y_ticks:
            if not y_lo <= tick <= y_hi * (1 + 1e-9):
                continue
            py = ty(tick)
            parts.append(
                f'<line x1="{left}" y1="{py:.1f}" x2="{plot_right}" y2="{py:.1f}" '
                f'stroke="#ddd" stroke-width="0.6"/>'
            )
            parts.append(
                f'<text x="{left - 6}" y="{py + 4:.1f}" text-anchor="end" '
                f'font-size="11">{tick:g}</text>'
            )
        # Axis labels.
        parts.append(
            f'<text x="{(left + plot_right) / 2:.0f}" y="{self.height - 10}" '
            f'text-anchor="middle" font-size="12">{_escape(self.x_label)}</text>'
        )
        parts.append(
            f'<text x="16" y="{(top + plot_bottom) / 2:.0f}" text-anchor="middle" '
            f'font-size="12" transform="rotate(-90 16 {(top + plot_bottom) / 2:.0f})">'
            f"{_escape(self.y_label)}</text>"
        )
        # Series.
        for index, series in enumerate(self.series):
            color = series.color or PALETTE[index % len(PALETTE)]
            marker = _MARKERS[index % len(_MARKERS)]
            points = [(tx(x), ty(y)) for x, y in zip(series.x, series.y)]
            if series.kind in ("line", "line-only") and len(points) > 1:
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
                parts.append(
                    f'<polyline points="{path}" fill="none" stroke="{color}" '
                    f'stroke-width="1.8"/>'
                )
            if series.kind in ("line", "scatter"):
                for x, y in points:
                    parts.append(self._marker_svg(marker, x, y, color))
        # Legend.
        legend_y = top + 8
        for index, series in enumerate(self.series):
            color = series.color or PALETTE[index % len(PALETTE)]
            y = legend_y + index * 16
            parts.append(
                f'<rect x="{plot_right - 150}" y="{y - 8}" width="10" height="10" '
                f'fill="{color}"/>'
            )
            parts.append(
                f'<text x="{plot_right - 136}" y="{y + 1}" font-size="11">'
                f"{_escape(series.label)}</text>"
            )
        parts.append("</svg>")
        return "\n".join(parts)


@dataclass
class BarChart:
    """Grouped vertical bar chart."""

    title: str
    x_label: str
    y_label: str
    categories: List[str]
    groups: List[Tuple[str, Sequence[float]]] = field(default_factory=list)
    width: int = 640
    height: int = 420

    _MARGIN = (60, 20, 70, 44)

    def add_group(self, label: str, values: Sequence[float]) -> "BarChart":
        if len(values) != len(self.categories):
            raise ValueError(
                f"group {label!r} has {len(values)} values for "
                f"{len(self.categories)} categories"
            )
        self.groups.append((label, list(values)))
        return self

    def to_svg(self) -> str:
        if not self.groups:
            raise ValueError("bar chart has no groups")
        left, right, bottom, top = self._MARGIN
        plot_right = self.width - right
        plot_bottom = self.height - bottom
        plot_w = plot_right - left
        plot_h = plot_bottom - top
        y_hi = max(max(values) for _l, values in self.groups)
        y_hi = y_hi if y_hi > 0 else 1.0
        ticks = _nice_ticks(0.0, y_hi)
        y_hi = max(y_hi, ticks[-1])

        n_cat = len(self.categories)
        n_grp = len(self.groups)
        slot_w = plot_w / n_cat
        bar_w = slot_w * 0.7 / n_grp

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="Helvetica,Arial,sans-serif">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2:.0f}" y="{top - 18}" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(self.title)}</text>',
            f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
            f'fill="none" stroke="#333"/>',
        ]
        for tick in ticks:
            py = plot_bottom - tick / y_hi * plot_h
            parts.append(
                f'<line x1="{left}" y1="{py:.1f}" x2="{plot_right}" y2="{py:.1f}" '
                f'stroke="#ddd" stroke-width="0.6"/>'
            )
            parts.append(
                f'<text x="{left - 6}" y="{py + 4:.1f}" text-anchor="end" '
                f'font-size="11">{tick:g}</text>'
            )
        for c_index, category in enumerate(self.categories):
            cx = left + (c_index + 0.5) * slot_w
            parts.append(
                f'<text x="{cx:.1f}" y="{plot_bottom + 16}" text-anchor="middle" '
                f'font-size="10" transform="rotate(20 {cx:.1f} {plot_bottom + 16})">'
                f"{_escape(str(category))}</text>"
            )
            for g_index, (_label, values) in enumerate(self.groups):
                value = values[c_index]
                height = max(value, 0.0) / y_hi * plot_h
                x = cx - (n_grp * bar_w) / 2 + g_index * bar_w
                color = PALETTE[g_index % len(PALETTE)]
                parts.append(
                    f'<rect x="{x:.1f}" y="{plot_bottom - height:.1f}" '
                    f'width="{bar_w:.1f}" height="{height:.1f}" fill="{color}"/>'
                )
        for g_index, (label, _values) in enumerate(self.groups):
            color = PALETTE[g_index % len(PALETTE)]
            y = top + 8 + g_index * 16
            parts.append(
                f'<rect x="{plot_right - 150}" y="{y - 8}" width="10" height="10" '
                f'fill="{color}"/>'
            )
            parts.append(
                f'<text x="{plot_right - 136}" y="{y + 1}" font-size="11">'
                f"{_escape(label)}</text>"
            )
        parts.append(
            f'<text x="{(left + plot_right) / 2:.0f}" y="{self.height - 8}" '
            f'text-anchor="middle" font-size="12">{_escape(self.x_label)}</text>'
        )
        parts.append(
            f'<text x="16" y="{(top + plot_bottom) / 2:.0f}" text-anchor="middle" '
            f'font-size="12" transform="rotate(-90 16 {(top + plot_bottom) / 2:.0f})">'
            f"{_escape(self.y_label)}</text>"
        )
        parts.append("</svg>")
        return "\n".join(parts)


@dataclass
class TimelineSpan:
    """One horizontal bar on a :class:`TimelineChart` row.

    ``depth`` indents nested spans within the row (a poor-man's flame
    graph: the job bar at depth 0, its kernels at depth 1+).
    """

    row: str
    start_s: float
    duration_s: float
    color: Optional[str] = None
    depth: int = 0
    detail: str = ""


@dataclass
class TimelineChart:
    """Gantt-style timeline: labeled rows of [start, start+duration) bars.

    Rows appear in first-seen order (or ``rows`` when given); the x
    axis is seconds. Used by ``repro report`` for the sweep's job
    timeline and per-job span flames.
    """

    title: str
    x_label: str = "seconds"
    spans: List[TimelineSpan] = field(default_factory=list)
    rows: Optional[List[str]] = None
    width: int = 760
    row_height: int = 22

    _MARGIN = (150, 20, 40, 44)  # left, right, bottom, top

    def add(self, span: TimelineSpan) -> "TimelineChart":
        self.spans.append(span)
        return self

    def _row_order(self) -> List[str]:
        if self.rows is not None:
            return list(self.rows)
        order: List[str] = []
        for span in self.spans:
            if span.row not in order:
                order.append(span.row)
        return order

    def to_svg(self) -> str:
        if not self.spans:
            raise ValueError("timeline has no spans")
        rows = self._row_order()
        left, right, bottom, top = self._MARGIN
        height = top + len(rows) * self.row_height + bottom
        plot_right = self.width - right
        plot_bottom = top + len(rows) * self.row_height
        plot_w = plot_right - left
        x_lo = min(s.start_s for s in self.spans)
        x_hi = max(s.start_s + s.duration_s for s in self.spans)
        if x_hi <= x_lo:
            x_hi = x_lo + 1e-6

        def tx(v: float) -> float:
            return left + (v - x_lo) / (x_hi - x_lo) * plot_w

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{height}" font-family="Helvetica,Arial,sans-serif">',
            f'<rect width="{self.width}" height="{height}" fill="white"/>',
            f'<text x="{self.width / 2:.0f}" y="{top - 18}" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(self.title)}</text>',
            f'<rect x="{left}" y="{top}" width="{plot_w}" '
            f'height="{plot_bottom - top}" fill="none" stroke="#333"/>',
        ]
        for tick in _nice_ticks(0.0, x_hi - x_lo):
            px = tx(x_lo + tick)
            if px > plot_right + 0.5:
                continue
            parts.append(
                f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" '
                f'y2="{plot_bottom}" stroke="#ddd" stroke-width="0.6"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{plot_bottom + 14}" '
                f'text-anchor="middle" font-size="11">{tick:g}</text>'
            )
        row_index = {row: i for i, row in enumerate(rows)}
        for row, i in row_index.items():
            cy = top + (i + 0.5) * self.row_height
            parts.append(
                f'<text x="{left - 6}" y="{cy + 4:.1f}" text-anchor="end" '
                f'font-size="11">{_escape(row)}</text>'
            )
            if i:
                parts.append(
                    f'<line x1="{left}" y1="{top + i * self.row_height}" '
                    f'x2="{plot_right}" y2="{top + i * self.row_height}" '
                    f'stroke="#eee" stroke-width="0.6"/>'
                )
        for span in self.spans:
            if span.row not in row_index:
                continue
            i = row_index[span.row]
            inset = 3 + min(span.depth, 3) * 4
            bar_h = max(self.row_height - 2 * inset, 3)
            x = tx(span.start_s)
            w = max(tx(span.start_s + span.duration_s) - x, 1.0)
            y = top + i * self.row_height + inset
            color = span.color or PALETTE[min(span.depth, len(PALETTE) - 1)]
            title = _escape(
                span.detail or f"{span.duration_s * 1000:.2f} ms"
            )
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
                f'height="{bar_h:.1f}" fill="{color}" fill-opacity="0.85">'
                f"<title>{title}</title></rect>"
            )
        parts.append(
            f'<text x="{(left + plot_right) / 2:.0f}" y="{height - 10}" '
            f'text-anchor="middle" font-size="12">{_escape(self.x_label)}</text>'
        )
        parts.append("</svg>")
        return "\n".join(parts)


def render_svg(chart, path) -> str:
    """Write a chart to ``path`` and return the SVG text."""
    from pathlib import Path

    svg = chart.to_svg()
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(svg)
    return svg
