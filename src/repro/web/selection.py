"""Decision-tree radio-interface selection for web browsing (§6.2).

Per page the utility is ``QoE = alpha * EC + beta * PLT`` over
dataset-normalised energy consumption and page load time; the radio
minimising the utility is the label. A Gini decision tree trained on
the Table 5 page factors then predicts the label for unseen pages —
interpretable via its split dump (Fig. 22) and Gini importances.

Five (alpha, beta) operating points form models M1-M5 (Table 6), from
High Performance (0.2/0.8, almost everything on 5G) to High Energy
Saving (0.8/0.2, everything on 4G).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ml.model_selection import train_test_split
from repro.ml.tree import DecisionTreeClassifier
from repro.web.browser import Browser
from repro.web.catalog import FEATURE_NAMES, WebsiteCatalog


@dataclass(frozen=True)
class QoEModelSpec:
    """One Table 6 row: a named (alpha, beta) trade-off."""

    model_id: str
    description: str
    alpha: float  # energy weight
    beta: float  # PLT weight

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0 or not 0.0 <= self.beta <= 1.0:
            raise ValueError("weights must be in [0, 1]")
        if abs(self.alpha + self.beta - 1.0) > 1e-9:
            raise ValueError("alpha + beta must equal 1")


QOE_MODELS: Tuple[QoEModelSpec, ...] = (
    QoEModelSpec("M1", "High Performance", alpha=0.2, beta=0.8),
    QoEModelSpec("M2", "Performance Oriented", alpha=0.4, beta=0.6),
    QoEModelSpec("M3", "Balanced", alpha=0.5, beta=0.5),
    QoEModelSpec("M4", "Better Energy Saving", alpha=0.6, beta=0.4),
    QoEModelSpec("M5", "High Energy Saving", alpha=0.8, beta=0.2),
)


@dataclass
class InterfaceDataset:
    """Per-site loads over both radios, plus the Table 5 features."""

    features: np.ndarray  # (n_sites, n_features)
    plt_4g: np.ndarray
    plt_5g: np.ndarray
    energy_4g: np.ndarray
    energy_5g: np.ndarray

    def __post_init__(self) -> None:
        n = self.features.shape[0]
        for name in ("plt_4g", "plt_5g", "energy_4g", "energy_5g"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} does not align with features")

    def __len__(self) -> int:
        return self.features.shape[0]

    def labels_for(self, spec: QoEModelSpec) -> np.ndarray:
        """0 = use 4G, 1 = use 5G, minimising the weighted utility."""
        plt_scale = max(self.plt_4g.max(), self.plt_5g.max())
        energy_scale = max(self.energy_4g.max(), self.energy_5g.max())
        qoe_4g = (
            spec.alpha * self.energy_4g / energy_scale
            + spec.beta * self.plt_4g / plt_scale
        )
        qoe_5g = (
            spec.alpha * self.energy_5g / energy_scale
            + spec.beta * self.plt_5g / plt_scale
        )
        return (qoe_5g < qoe_4g).astype(int)


def build_dataset(
    catalog: WebsiteCatalog,
    browser: Optional[Browser] = None,
) -> InterfaceDataset:
    """Load every catalog page over both radios."""
    browser = browser or Browser(seed=0)
    features = catalog.feature_matrix()
    plt_4g = np.empty(len(catalog))
    plt_5g = np.empty(len(catalog))
    energy_4g = np.empty(len(catalog))
    energy_5g = np.empty(len(catalog))
    for i, site in enumerate(catalog):
        r4, r5 = browser.load_both(site)
        plt_4g[i], plt_5g[i] = r4.plt_s, r5.plt_s
        energy_4g[i], energy_5g[i] = r4.energy_j, r5.energy_j
    return InterfaceDataset(
        features=features,
        plt_4g=plt_4g,
        plt_5g=plt_5g,
        energy_4g=energy_4g,
        energy_5g=energy_5g,
    )


@dataclass
class SelectionReport:
    """Table 6 row outcome for one QoE model."""

    spec: QoEModelSpec
    use_4g: int
    use_5g: int
    accuracy: float
    energy_saving_percent: float
    tree: DecisionTreeClassifier

    @property
    def n_test(self) -> int:
        return self.use_4g + self.use_5g


@dataclass
class InterfaceSelector:
    """Trains and evaluates the M1-M5 decision trees.

    Attributes:
        max_depth: post-pruning proxy — the paper shows 2-level trees
            (Fig. 22), but deeper trees are allowed and then summarised.
        test_size: the paper's 7:3 split.
        seed: split/tree RNG seed.
    """

    max_depth: int = 4
    min_samples_leaf: int = 10
    test_size: float = 0.3
    seed: int = 0

    def evaluate(self, dataset: InterfaceDataset) -> Dict[str, SelectionReport]:
        """Train one tree per QoE model and report Table 6's columns."""
        reports: Dict[str, SelectionReport] = {}
        for spec in QOE_MODELS:
            labels = dataset.labels_for(spec)
            (
                X_train,
                X_test,
                y_train,
                y_test,
                e4_train,
                e4_test,
                e5_train,
                e5_test,
            ) = train_test_split(
                dataset.features,
                labels,
                dataset.energy_4g,
                dataset.energy_5g,
                test_size=self.test_size,
                random_state=self.seed,
            )
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            if np.unique(y_train).shape[0] == 1:
                # Degenerate split (e.g. M5: everything 4G) still trains.
                pass
            tree.fit(X_train, y_train, feature_names=FEATURE_NAMES)
            predictions = tree.predict(X_test)
            accuracy = float(np.mean(predictions == y_test))
            use_5g = int(np.sum(predictions == 1))
            use_4g = int(np.sum(predictions == 0))
            # Energy saving of following the tree vs always-5G.
            chosen_energy = np.where(predictions == 1, e5_test, e4_test)
            always_5g = e5_test.sum()
            saving = (
                100.0 * (always_5g - chosen_energy.sum()) / always_5g
                if always_5g > 0
                else 0.0
            )
            reports[spec.model_id] = SelectionReport(
                spec=spec,
                use_4g=use_4g,
                use_5g=use_5g,
                accuracy=accuracy,
                energy_saving_percent=float(saving),
                tree=tree,
            )
        return reports

    @staticmethod
    def table_rows(reports: Dict[str, SelectionReport]) -> List[tuple]:
        """Rows shaped like Table 6."""
        rows = []
        for model_id in sorted(reports):
            report = reports[model_id]
            rows.append(
                (
                    model_id,
                    report.spec.description,
                    report.spec.alpha,
                    report.spec.beta,
                    report.use_4g,
                    report.use_5g,
                )
            )
        return rows
