"""Synthetic website catalog with Table 5's page factors.

The paper instruments Alexa's top 1500 websites; per page it extracts
the factors of Table 5: object count (NO), dynamic object count/share
(DNO, DSO), image and video counts (NI, NV), total page size (PS), and
average object size (AOS). The generator draws those factors from
heavy-tailed distributions fitted to published HTTP-Archive-style
statistics (median page ~2 MB / ~70 objects, long tail to tens of MB
and ~1000 objects), which is what Fig. 19's x-axis bucketing needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

import numpy as np


@dataclass(frozen=True)
class Website:
    """One website's page factors (Table 5).

    Attributes:
        name: synthetic hostname.
        n_objects: total object count (NO).
        n_dynamic: dynamically generated objects (DNO numerator).
        n_images: image count (NI).
        n_videos: embedded video count (NV).
        total_bytes: total page size in bytes (PS).
        dynamic_bytes: bytes in dynamic objects (DSO numerator).
    """

    name: str
    n_objects: int
    n_dynamic: int
    n_images: int
    n_videos: int
    total_bytes: int
    dynamic_bytes: int

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("a page has at least one object")
        if not 0 <= self.n_dynamic <= self.n_objects:
            raise ValueError("n_dynamic out of range")
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if not 0 <= self.dynamic_bytes <= self.total_bytes:
            raise ValueError("dynamic_bytes out of range")

    @property
    def dynamic_ratio(self) -> float:
        """DNO as a share of objects (the Fig. 22 split feature)."""
        return self.n_dynamic / self.n_objects

    @property
    def dynamic_size_ratio(self) -> float:
        """DSO: dynamic bytes over total bytes."""
        return self.dynamic_bytes / self.total_bytes

    @property
    def avg_object_bytes(self) -> float:
        """AOS."""
        return self.total_bytes / self.n_objects

    def feature_vector(self) -> np.ndarray:
        """Table 5 features in a fixed order (see FEATURE_NAMES)."""
        return np.array(
            [
                self.n_objects,
                self.n_dynamic,
                self.dynamic_ratio,
                self.n_images,
                self.n_videos,
                self.total_bytes,
                self.dynamic_bytes,
                self.dynamic_size_ratio,
                self.avg_object_bytes,
            ]
        )


FEATURE_NAMES: List[str] = [
    "NO",  # number of objects
    "DNO_count",  # dynamic objects
    "DNO",  # dynamic / total objects
    "NI",  # images
    "NV",  # videos
    "PS",  # total page size (bytes)
    "DSO_bytes",  # dynamic bytes
    "DSO",  # dynamic / total size
    "AOS",  # average object size
]


@dataclass
class WebsiteCatalog:
    """An ordered collection of websites."""

    sites: List[Website] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sites)

    def __iter__(self) -> Iterator[Website]:
        return iter(self.sites)

    def __getitem__(self, index: int) -> Website:
        return self.sites[index]

    def feature_matrix(self) -> np.ndarray:
        return np.array([site.feature_vector() for site in self.sites])

    def bucket_by(self, key, buckets: List[tuple]) -> Dict[str, List[Website]]:
        """Group sites into labeled value ranges (Fig. 19's x-axis)."""
        grouped: Dict[str, List[Website]] = {label: [] for label, *_ in buckets}
        for site in self.sites:
            value = key(site)
            for label, low, high in buckets:
                if low <= value < high:
                    grouped[label].append(site)
                    break
        return grouped


def generate_catalog(n_sites: int = 1500, seed: int = 11) -> WebsiteCatalog:
    """Draw ``n_sites`` websites with Table 5 factor distributions."""
    if n_sites < 1:
        raise ValueError("n_sites must be >= 1")
    rng = np.random.default_rng(seed)
    sites: List[Website] = []
    for i in range(n_sites):
        n_objects = int(np.clip(rng.lognormal(np.log(70.0), 0.9), 2, 1200))
        dynamic_ratio = float(np.clip(rng.beta(2.0, 3.5), 0.0, 0.98))
        n_dynamic = int(round(dynamic_ratio * n_objects))
        n_images = int(np.clip(rng.binomial(n_objects, 0.4), 0, n_objects))
        n_videos = int(rng.poisson(0.4))
        avg_object_kb = float(np.clip(rng.lognormal(np.log(28.0), 0.7), 2.0, 400.0))
        total_bytes = int(n_objects * avg_object_kb * 1024)
        # Dynamic objects skew smaller (scripts, beacons) than media.
        dynamic_bytes = int(
            total_bytes
            * np.clip(dynamic_ratio * rng.uniform(0.5, 1.1), 0.0, 1.0)
        )
        sites.append(
            Website(
                name=f"site-{i:04d}.example",
                n_objects=n_objects,
                n_dynamic=min(n_dynamic, n_objects),
                n_images=n_images,
                n_videos=n_videos,
                total_bytes=max(total_bytes, 1024),
                dynamic_bytes=min(dynamic_bytes, total_bytes),
            )
        )
    return WebsiteCatalog(sites=sites)
