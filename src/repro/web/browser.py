"""Page-load-time and energy model for 4G vs mmWave 5G (section 6).

The PLT model captures the mechanics that drive Fig. 19/20:

* connection setup (DNS + TCP + TLS) costs ~2.5 RTTs;
* the object dependency graph forces a chain of request rounds
  (roughly logarithmic in object count under HTTP/2 multiplexing,
  deeper when many objects are dynamically generated — their URLs are
  only discovered after scripts execute);
* body transfer runs at the radio's browsing-effective rate, with TCP
  ramp-up shortchanging short flows (most pages never reach mmWave's
  multi-Gbps capacity, which is why the 5G PLT advantage grows with
  page size);
* client-side compute (parse/layout/script) depends on object count
  and dynamic share, identical across radios.

Energy prices the resulting HAR throughput timeline with the device
power curves: 5G finishes sooner but holds a radio whose *idle
intercept alone* exceeds 4G's fully-loaded draw — the section 6
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.power.device import DeviceProfile, get_device
from repro.web.catalog import Website
from repro.web.har import HarEntry, HarRecord

# Browsing-effective radio profiles: (bandwidth Mbps, RTT ms). The
# mmWave bandwidth is capped by short-flow dynamics well below the
# iPerf-style peak; 4G is the paper's LTE baseline.
_RADIO_PROFILES = {
    "5G": {"bandwidth_mbps": 1100.0, "rtt_ms": 20.0, "power_key": "verizon-nsa-mmwave"},
    "4G": {"bandwidth_mbps": 25.0, "rtt_ms": 50.0, "power_key": "verizon-lte"},
}

_SETUP_RTTS = 2.5
_MSS_BYTES = 1460.0
_INITIAL_WINDOW_SEGMENTS = 10.0
# Client compute per object, ms (parse/decode/layout).
_COMPUTE_PER_OBJECT_MS = 6.0
# Extra compute multiplier for dynamic objects (script execution).
_DYNAMIC_COMPUTE_FACTOR = 3.5
# Server generation time per dependency round (identical across radios).
_SERVER_THINK_MS = 100.0


def _transfer_ms(size_bytes: float, bandwidth_mbps: float, rtt_ms: float) -> float:
    """Slow-start-aware transfer time for one flow of ``size_bytes``."""
    if size_bytes <= 0:
        return 0.0
    # Rounds of window doubling until the flow is done or reaches the
    # bandwidth-delay ceiling.
    window = _INITIAL_WINDOW_SEGMENTS * _MSS_BYTES
    bdp_bytes = bandwidth_mbps * 1e6 / 8.0 * rtt_ms / 1000.0
    remaining = size_bytes
    elapsed = 0.0
    while remaining > 0:
        sendable = min(window, bdp_bytes)
        sent = min(remaining, sendable)
        if window >= bdp_bytes:
            # Pipe is full: stream the rest at line rate.
            elapsed += remaining * 8.0 / (bandwidth_mbps * 1e6) * 1000.0
            break
        elapsed += rtt_ms
        remaining -= sent
        window *= 2.0
    return elapsed


@dataclass
class PageLoadResult:
    """One page load's QoE outcome."""

    website: Website
    radio: str
    plt_s: float
    energy_j: float
    har: HarRecord


@dataclass
class Browser:
    """Loads catalog pages over a chosen radio and prices the energy.

    Attributes:
        device: UE whose power curves price the load (PX5 in the paper;
            any profile with curves for both networks works).
        jitter: multiplicative PLT noise std-dev (run-to-run variation;
            the paper loads each page >= 8 times per radio).
        seed: RNG seed.
    """

    device: Optional[DeviceProfile] = None
    jitter: float = 0.06
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.device is None:
            self.device = get_device("S10")
        self._rng = np.random.default_rng(self.seed)

    def load(self, website: Website, radio: str) -> PageLoadResult:
        """Load one page over ``radio`` ("4G" or "5G")."""
        try:
            profile = _RADIO_PROFILES[radio]
        except KeyError:
            raise ValueError(f"unknown radio {radio!r}; use '4G' or '5G'") from None
        bandwidth = profile["bandwidth_mbps"]
        rtt = profile["rtt_ms"]

        har = HarRecord(page_url=website.name, radio=radio)
        setup_ms = _SETUP_RTTS * rtt

        # Dependency rounds: HTML first, then log2-ish waves of
        # discovery; dynamic objects add script-gated rounds.
        static_rounds = max(1, int(np.ceil(np.log2(website.n_objects + 1))))
        dynamic_rounds = int(np.ceil(website.dynamic_ratio * 4.0))
        rounds = static_rounds + dynamic_rounds

        avg_object = website.avg_object_bytes
        objects_per_round = max(1, website.n_objects // rounds)
        t_ms = setup_ms
        remaining = website.n_objects
        dynamic_left = website.n_dynamic
        for round_index in range(rounds):
            in_round = min(objects_per_round, remaining)
            if round_index == rounds - 1:
                in_round = remaining
            if in_round <= 0:
                break
            # Parallel fetch within the round shares the bandwidth.
            round_bytes = in_round * avg_object
            transfer = _transfer_ms(round_bytes, bandwidth, rtt)
            n_dynamic_in_round = min(dynamic_left, in_round)
            compute = in_round * _COMPUTE_PER_OBJECT_MS + (
                n_dynamic_in_round
                * _COMPUTE_PER_OBJECT_MS
                * (_DYNAMIC_COMPUTE_FACTOR - 1.0)
            )
            round_duration = rtt + _SERVER_THINK_MS + transfer + compute
            per_object = round_duration / in_round
            for k in range(in_round):
                har.add(
                    HarEntry(
                        url=f"{website.name}/obj-{round_index}-{k}",
                        start_ms=t_ms + k * per_object * 0.25,
                        duration_ms=per_object,
                        size_bytes=int(avg_object),
                        dynamic=k < n_dynamic_in_round,
                    )
                )
            dynamic_left -= n_dynamic_in_round
            remaining -= in_round
            t_ms += round_duration

        noise = float(np.clip(self._rng.normal(1.0, self.jitter), 0.7, 1.4))
        plt_s = har.on_load_ms / 1000.0 * noise
        energy = self._energy_j(har, profile["power_key"], plt_s)
        return PageLoadResult(
            website=website, radio=radio, plt_s=plt_s, energy_j=energy, har=har
        )

    def _energy_j(self, har: HarRecord, power_key: str, plt_s: float) -> float:
        """Price the HAR throughput timeline with the radio power curve."""
        curve = self.device.curve(power_key)
        timeline = har.throughput_timeline_mbps(dt_s=0.5)
        if not timeline:
            return 0.0
        energy_mj = 0.0  # mW * s
        for rate in timeline:
            energy_mj += curve.power_mw(dl_mbps=min(rate, 2000.0)) * 0.5
        # Scale to the jittered PLT so energy and PLT stay consistent.
        nominal_s = len(timeline) * 0.5
        return energy_mj / 1000.0 * (plt_s / max(nominal_s, 1e-9))

    def load_both(self, website: Website) -> "tuple[PageLoadResult, PageLoadResult]":
        """(4G result, 5G result) for one page."""
        return self.load(website, "4G"), self.load(website, "5G")
