"""HAR-like page-load records (the chrome-har-capturer output shape).

The paper's pipeline collects an HTTP Archive per page load; downstream
analyses only need per-object timings and sizes plus the total PLT, so
:class:`HarRecord` keeps exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class HarEntry:
    """One fetched object."""

    url: str
    start_ms: float
    duration_ms: float
    size_bytes: int
    dynamic: bool = False

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.duration_ms < 0:
            raise ValueError("timings must be non-negative")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms


@dataclass
class HarRecord:
    """A page load: entries + summary timings."""

    page_url: str
    radio: str  # "4G" | "5G"
    entries: List[HarEntry] = field(default_factory=list)

    def add(self, entry: HarEntry) -> None:
        self.entries.append(entry)

    @property
    def n_entries(self) -> int:
        return len(self.entries)

    @property
    def total_bytes(self) -> int:
        return sum(e.size_bytes for e in self.entries)

    @property
    def on_load_ms(self) -> float:
        """PLT: the last object's completion time."""
        if not self.entries:
            return 0.0
        return max(e.end_ms for e in self.entries)

    def throughput_timeline_mbps(self, dt_s: float = 1.0) -> List[float]:
        """Per-interval delivered throughput, for power-model input.

        This is the "extract the per-second throughput trace from the
        packet dumps and feed it to the power model" step of section 6.
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if not self.entries:
            return []
        horizon_ms = self.on_load_ms
        n = max(1, int(horizon_ms / (dt_s * 1000.0)) + 1)
        bits = [0.0] * n
        for entry in self.entries:
            if entry.duration_ms <= 0:
                index = min(int(entry.start_ms / (dt_s * 1000.0)), n - 1)
                bits[index] += entry.size_bytes * 8.0
                continue
            # Spread the object's bits uniformly over its transfer.
            start_bin = int(entry.start_ms / (dt_s * 1000.0))
            end_bin = min(int(entry.end_ms / (dt_s * 1000.0)), n - 1)
            span = max(end_bin - start_bin + 1, 1)
            per_bin = entry.size_bytes * 8.0 / span
            for b in range(start_bin, start_bin + span):
                bits[min(b, n - 1)] += per_bin
        return [b / dt_s / 1e6 for b in bits]
