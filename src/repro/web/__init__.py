"""Web browsing QoE over mmWave 5G vs 4G (paper section 6).

A synthetic Alexa-style website catalog with the Table 5 factor
distributions, a page-load-time + energy model for loading each site
over 4G or mmWave 5G, HAR-like per-object records, and the decision-
tree radio-interface selector with the tunable
``QoE = alpha * EC + beta * PLT`` utility (models M1-M5, Table 6).
"""

from repro.web.catalog import Website, WebsiteCatalog, generate_catalog
from repro.web.browser import Browser, PageLoadResult
from repro.web.har import HarEntry, HarRecord
from repro.web.selection import (
    InterfaceDataset,
    InterfaceSelector,
    QOE_MODELS,
    QoEModelSpec,
    build_dataset,
)

__all__ = [
    "Browser",
    "HarEntry",
    "HarRecord",
    "InterfaceDataset",
    "InterfaceSelector",
    "PageLoadResult",
    "QOE_MODELS",
    "QoEModelSpec",
    "Website",
    "WebsiteCatalog",
    "build_dataset",
    "generate_catalog",
]
