"""repro: reproduction of "A Variegated Look at 5G in the Wild" (SIGCOMM 2021).

A simulation and analysis library covering the paper's full scope:
commercial 5G network performance (mmWave + low-band, NSA + SA), RRC
state machines, radio power characteristics and power modeling, and
application QoE (ABR video streaming, web browsing) with 4G/5G
interface selection.

Subpackages
-----------
- ``repro.ml`` — decision trees, gradient boosting, linear models.
- ``repro.radio`` — bands, carriers, propagation, RSRP, towers, link rates.
- ``repro.rrc`` — RRC states, Table-7 timers, state machine, RRC-Probe.
- ``repro.power`` — device power curves, Monsoon/software monitors, tails.
- ``repro.transport`` — fluid CUBIC/UDP flows, kernel buffer tuning.
- ``repro.mobility`` — routes, trajectories, handoffs.
- ``repro.net`` — latency model, server pools, Speedtest/iPerf harnesses.
- ``repro.traces`` — synthetic Lumos5G-like corpora and walking traces.
- ``repro.core`` — power-model construction, energy analysis, campaigns.
- ``repro.video`` — DASH player, seven ABR algorithms, 5G-aware streaming.
- ``repro.web`` — website catalog, page-load model, DT interface selection.
- ``repro.experiments`` — one runner per paper table/figure.
"""

__version__ = "1.0.0"
