"""Transport substrate: fluid TCP (CUBIC) and UDP flow models.

Reproduces the transport-layer phenomena of paper sections 3.2 and
Appendix A.2 without a packet-level simulator: a fluid-model CUBIC flow
whose achievable rate is limited by (a) the radio/link capacity, (b)
the sender's socket buffer over the path RTT (the ``tcp_wmem`` effect —
default Linux buffers cap a single connection near 500 Mbps and tuning
recovers 2.1-3x), (c) loss-induced window cuts, and an aggregate of
many such flows for the Speedtest-style multi-connection tests (15-25
parallel connections in the paper's packet dumps).
"""

from repro.transport.cubic import CubicState
from repro.transport.flow import (
    FlowResult,
    TcpFlow,
    UdpFlow,
    bandwidth_delay_product_bytes,
)
from repro.transport.aggregate import MultiConnection
from repro.transport.tuning import KernelConfig, DEFAULT_KERNEL, TUNED_KERNEL

__all__ = [
    "CubicState",
    "DEFAULT_KERNEL",
    "FlowResult",
    "KernelConfig",
    "MultiConnection",
    "TUNED_KERNEL",
    "TcpFlow",
    "UdpFlow",
    "bandwidth_delay_product_bytes",
]
