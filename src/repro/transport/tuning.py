"""Kernel transport configuration (the ``tcp_wmem`` experiment).

Section 3.2 / Appendix A.2: with the default Linux (v4.18) kernel the
single-connection TCP throughput is capped near 500 Mbps regardless of
the radio capacity; raising the maximum TCP write buffer
(``net.ipv4.tcp_wmem``) recovers 2.1-3x. The sender's socket buffer
must cover at least the bandwidth-delay product of the path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelConfig:
    """Transport-relevant kernel parameters.

    Attributes:
        name: label used in figures ("default", "tuned").
        tcp_wmem_max_bytes: max sender socket buffer (auto-tuning cap).
        usable_fraction: fraction of the buffer available to in-flight
            payload; Linux charges sk_buff bookkeeping against the
            budget, so roughly half the nominal buffer carries data.
        congestion_control: congestion control algorithm name.
    """

    name: str
    tcp_wmem_max_bytes: int
    usable_fraction: float = 0.5
    congestion_control: str = "cubic"

    def __post_init__(self) -> None:
        if self.tcp_wmem_max_bytes <= 0:
            raise ValueError("tcp_wmem_max_bytes must be positive")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ValueError("usable_fraction must be in (0, 1]")

    @property
    def effective_window_bytes(self) -> float:
        """Maximum in-flight payload a single connection can sustain."""
        return self.tcp_wmem_max_bytes * self.usable_fraction

    def max_rate_mbps(self, rtt_ms: float) -> float:
        """Buffer-limited ceiling: window / RTT, in Mbps."""
        if rtt_ms <= 0:
            raise ValueError("rtt_ms must be positive")
        return self.effective_window_bytes * 8.0 / (rtt_ms / 1000.0) / 1e6


# Linux 4.18 default: tcp_wmem = 4096 16384 4194304.
DEFAULT_KERNEL = KernelConfig(name="default", tcp_wmem_max_bytes=4 * 1024 * 1024)

# The paper's tuned configuration (large enough to cover mmWave BDPs).
TUNED_KERNEL = KernelConfig(name="tuned", tcp_wmem_max_bytes=32 * 1024 * 1024)
