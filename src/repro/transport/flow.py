"""Single-flow TCP (CUBIC) and UDP fluid simulation.

The TCP flow steps once per RTT: it computes the in-flight window
(CUBIC cwnd clamped by the kernel send buffer), converts it to a rate,
clamps to the path capacity, and draws loss events — random tail loss
plus overflow loss when the window would exceed the path's BDP + queue.
This reproduces both distance effects in Fig. 3/8: higher RTT lowers
the buffer-limited ceiling *and* slows loss recovery, so single-
connection throughput decays with UE-server distance while UDP stays
flat at capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.kernels.sampling import sample_series
from repro.obs.trace import span as trace_span
from repro.transport.cubic import CubicState, MSS_BYTES
from repro.transport.tuning import DEFAULT_KERNEL, KernelConfig

CapacityLike = Union[float, Callable[[float], float]]


def bandwidth_delay_product_bytes(rate_mbps, rtt_ms: float):
    """BDP in bytes for a path of ``rate_mbps`` (scalar or series) and
    ``rtt_ms``."""
    if np.any(np.asarray(rate_mbps) <= 0) or rtt_ms <= 0:
        raise ValueError("rate and rtt must be positive")
    return rate_mbps * 1e6 / 8.0 * (rtt_ms / 1000.0)


@dataclass
class FlowResult:
    """Outcome of a flow simulation.

    Attributes:
        throughput_mbps: mean goodput over the run.
        rate_series_mbps: per-RTT (TCP) or per-step (UDP) rates.
        loss_events: number of loss events experienced.
        duration_s: simulated duration.
    """

    throughput_mbps: float
    rate_series_mbps: np.ndarray
    loss_events: int
    duration_s: float


@dataclass
class UdpFlow:
    """Constant-rate UDP sender (iPerf3-style).

    Achieves ``min(target, capacity)`` less a small header overhead;
    used as the baseline that tracks the radio capacity in Fig. 8.
    """

    target_mbps: Optional[float] = None
    header_overhead: float = 0.02

    def run(
        self, capacity: CapacityLike, duration_s: float = 10.0, dt_s: float = 0.1
    ) -> FlowResult:
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and dt must be positive")
        # Clamp to at least one step: sub-dt durations used to round to
        # zero steps and return a NaN mean from an empty array.
        steps = max(1, int(round(duration_s / dt_s)))
        with trace_span("kernel.udp.run", steps=steps):
            caps = sample_series(capacity, np.arange(steps) * dt_s)
            offered = caps if self.target_mbps is None else self.target_mbps
            rates = np.maximum(0.0, np.minimum(offered, caps)) * (
                1.0 - self.header_overhead
            )
            return FlowResult(
                throughput_mbps=float(np.mean(rates)),
                rate_series_mbps=rates,
                loss_events=0,
                duration_s=duration_s,
            )


@dataclass
class TcpFlow:
    """Fluid CUBIC flow with kernel send-buffer clamping.

    Attributes:
        rtt_ms: base path round-trip time.
        kernel: kernel configuration (buffer sizes).
        loss_rate: random per-packet loss probability (the paper saw
            <1% on Speedtest runs, yet even slight loss hurts at
            multi-Gbps rates).
        queue_bdp_factor: router queue depth as a multiple of BDP;
            windows beyond ``(1 + factor) * BDP`` overflow and lose.
        seed: RNG seed.
    """

    rtt_ms: float
    kernel: KernelConfig = field(default_factory=lambda: DEFAULT_KERNEL)
    loss_rate: float = 2e-6
    queue_bdp_factor: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rtt_ms <= 0:
            raise ValueError("rtt_ms must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def run(
        self, capacity: CapacityLike, duration_s: float = 15.0
    ) -> FlowResult:
        """Simulate ``duration_s`` of bulk transfer against ``capacity``
        (Mbps, constant or a function of time).

        The capacity/BDP series and the loss-uniform stream are
        precomputed in batch; the only remaining per-RTT Python is the
        inherently sequential CUBIC recurrence. Bit-identical to the
        pre-PR per-step implementation: the uniform stream is consumed
        at an index that only advances on non-overflow steps, matching
        the scalar path's short-circuited draw order.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        rtt_s = self.rtt_ms / 1000.0
        steps = max(1, int(round(duration_s / rtt_s)))
        with trace_span("kernel.tcp.run", steps=steps):
            return self._run_steps(capacity, duration_s, rtt_s, steps)

    def _run_steps(
        self, capacity: CapacityLike, duration_s: float, rtt_s: float, steps: int
    ) -> FlowResult:
        rng = np.random.default_rng(self.seed)
        cubic = CubicState()
        buffer_bytes = self.kernel.effective_window_bytes

        caps = np.maximum(sample_series(capacity, np.arange(steps) * rtt_s), 1e-3)
        bdps = bandwidth_delay_product_bytes(caps, self.rtt_ms)
        # Overflow steps skip their loss draw (short-circuit), so at
        # most `steps` uniforms are ever consumed; trailing unused
        # draws don't affect the consumed prefix of the stream.
        uniforms = rng.random(steps).tolist()
        caps_list = caps.tolist()
        bdps_list = bdps.tolist()

        rates = np.empty(steps)
        losses = 0
        draw = 0
        overflow_window = 1.0 + self.queue_bdp_factor
        one_minus_loss = 1.0 - self.loss_rate
        for i in range(steps):
            cap_mbps = caps_list[i]
            cwnd_bytes = cubic.cwnd_bytes()
            window = min(cwnd_bytes, buffer_bytes)
            rate_mbps = min(window * 8.0 / rtt_s / 1e6, cap_mbps)
            rates[i] = rate_mbps

            if cwnd_bytes > overflow_window * bdps_list[i]:
                cubic.on_loss()
                losses += 1
                continue
            packets = rate_mbps * 1e6 / 8.0 * rtt_s / MSS_BYTES
            p_random = 1.0 - one_minus_loss ** max(packets, 0.0)
            u = uniforms[draw]
            draw += 1
            if u < p_random:
                cubic.on_loss()
                losses += 1
            else:
                cubic.on_ack_interval(rtt_s)
        return FlowResult(
            throughput_mbps=float(np.mean(rates)),
            rate_series_mbps=rates,
            loss_events=losses,
            duration_s=duration_s,
        )

    def steady_state_mbps(
        self, capacity_mbps: float, duration_s: float = 20.0
    ) -> float:
        """Mean rate excluding the first quarter (ramp-up) of the run."""
        result = self.run(capacity_mbps, duration_s=duration_s)
        series = result.rate_series_mbps
        start = series.shape[0] // 4
        return float(np.mean(series[start:]))
