"""Fluid-model CUBIC congestion control (RFC 8312 window growth).

Used by :class:`repro.transport.flow.TcpFlow`. The window grows as

``W(t) = C * (t - K)^3 + W_max``  with  ``K = cbrt(W_max * beta / C)``

after each loss event, where ``t`` is the time since the loss and
``W_max`` the window at the loss. Slow start doubles the window each
RTT until the first loss or until reaching the slow-start threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# RFC 8312 constants.
CUBIC_C = 0.4  # scaling constant (segments/s^3)
CUBIC_BETA = 0.7  # multiplicative decrease factor

MSS_BYTES = 1460.0


@dataclass
class CubicState:
    """CUBIC window state, in segments.

    Attributes:
        cwnd_segments: current congestion window.
        w_max_segments: window at the last loss event.
        ssthresh_segments: slow-start threshold.
    """

    cwnd_segments: float = 10.0
    w_max_segments: float = 0.0
    ssthresh_segments: float = float("inf")
    _t_since_loss_s: float = field(default=0.0)
    _in_slow_start: bool = field(default=True)

    @property
    def in_slow_start(self) -> bool:
        return self._in_slow_start

    def k_seconds(self) -> float:
        """Time for the cubic curve to return to ``w_max``."""
        if self.w_max_segments <= 0:
            return 0.0
        return (self.w_max_segments * (1.0 - CUBIC_BETA) / CUBIC_C) ** (1.0 / 3.0)

    def on_ack_interval(self, dt_s: float) -> None:
        """Advance the window by ``dt_s`` of loss-free transmission."""
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        if self._in_slow_start:
            # Exponential growth: double per RTT ~= grow by factor
            # 2^(dt/rtt); approximate with a fixed nominal 25 ms RTT
            # slice handled by the caller stepping per-RTT.
            self.cwnd_segments *= 2.0
            if self.cwnd_segments >= self.ssthresh_segments:
                self.cwnd_segments = self.ssthresh_segments
                self._in_slow_start = False
            return
        self._t_since_loss_s += dt_s
        t = self._t_since_loss_s
        k = self.k_seconds()
        target = CUBIC_C * (t - k) ** 3 + self.w_max_segments
        self.cwnd_segments = max(target, 2.0)

    def on_loss(self) -> None:
        """Multiplicative decrease and cubic epoch reset."""
        self.w_max_segments = max(self.cwnd_segments, 2.0)
        self.cwnd_segments = max(self.cwnd_segments * CUBIC_BETA, 2.0)
        self.ssthresh_segments = self.cwnd_segments
        self._t_since_loss_s = 0.0
        self._in_slow_start = False

    def cwnd_bytes(self) -> float:
        return self.cwnd_segments * MSS_BYTES
