"""Multi-connection transfer (Speedtest-style parallel TCP).

Speedtest's multi-connection mode opens 15-25 parallel TCP connections
(paper section 3.2, from packet dumps); the aggregate overcomes both
the per-socket buffer cap and slow loss recovery, saturating the radio
across the whole UE-server distance range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.transport.flow import FlowResult, TcpFlow
from repro.transport.tuning import DEFAULT_KERNEL, KernelConfig


@dataclass
class MultiConnection:
    """N parallel CUBIC flows fairly sharing a bottleneck capacity.

    Attributes:
        n_connections: parallel sockets (Speedtest uses 15-25).
        rtt_ms: shared path RTT.
        kernel: kernel configuration applied to every socket.
        loss_rate: per-packet random loss probability.
        seed: RNG seed (each flow gets an independent stream).
    """

    n_connections: int
    rtt_ms: float
    kernel: KernelConfig = field(default_factory=lambda: DEFAULT_KERNEL)
    loss_rate: float = 2e-6
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_connections < 1:
            raise ValueError("n_connections must be >= 1")

    def run(self, capacity_mbps: float, duration_s: float = 15.0) -> FlowResult:
        """Aggregate throughput against a shared ``capacity_mbps``."""
        if capacity_mbps <= 0:
            raise ValueError("capacity_mbps must be positive")
        rng = np.random.default_rng(self.seed)
        share = capacity_mbps / self.n_connections
        total_series: Optional[np.ndarray] = None
        losses = 0
        for _ in range(self.n_connections):
            flow = TcpFlow(
                rtt_ms=self.rtt_ms,
                kernel=self.kernel,
                loss_rate=self.loss_rate,
                seed=int(rng.integers(0, 2**31)),
            )
            result = flow.run(share, duration_s=duration_s)
            losses += result.loss_events
            if total_series is None:
                total_series = result.rate_series_mbps.copy()
            else:
                n = min(total_series.shape[0], result.rate_series_mbps.shape[0])
                total_series = total_series[:n] + result.rate_series_mbps[:n]
        return FlowResult(
            throughput_mbps=float(np.mean(total_series)),
            rate_series_mbps=total_series,
            loss_events=losses,
            duration_s=duration_s,
        )
