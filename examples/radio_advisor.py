#!/usr/bin/env python3
"""Radio advisor: which interface should each app use?

Generalises the paper's per-application interface-selection schemes
(sections 5.4, 6.2) into one API: price every canonical app profile on
the Verizon radios, then show how the energy weight (Table 6's alpha)
moves the recommendation.

Run: ``python examples/radio_advisor.py``
"""

from repro.core import PROFILES, RadioAdvisor
from repro.experiments import format_table


def main() -> None:
    advisor = RadioAdvisor()

    print("== Per-radio estimates (balanced view) ==")
    rows = []
    for name, profile in PROFILES.items():
        result = advisor.recommend(profile, alpha=0.5)
        for key, est in result["estimates"].items():
            rows.append(
                (
                    name,
                    key.replace("verizon-", ""),
                    round(est.achieved_mbps, 1),
                    f"{est.completion_factor:.0%}",
                    round(est.rtt_ms, 0),
                    round(est.energy_j, 1),
                )
            )
    print(
        format_table(
            ["app", "radio", "achieved Mbps", "demand met", "RTT ms", "energy J"],
            rows,
        )
    )

    print("\n== Recommendations vs energy weight (Table 6's alpha) ==")
    rows = []
    for name, profile in PROFILES.items():
        picks = []
        for alpha in (0.2, 0.5, 0.8):
            result = advisor.recommend(profile, alpha=alpha)
            picks.append(result["recommended"].replace("verizon-", ""))
        rows.append((name, *picks))
    print(format_table(["app", "alpha=0.2 (perf)", "alpha=0.5", "alpha=0.8 (energy)"], rows))

    print(
        "\nReading: bandwidth-hungry work stays on mmWave regardless of "
        "weight; light/bursty\napps flip to cheaper radios as the energy "
        "weight grows — the paper's section 6.2 pattern."
    )


if __name__ == "__main__":
    main()
