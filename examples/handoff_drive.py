#!/usr/bin/env python3
"""Fig. 9: the handoff driving experiment with an ASCII timeline.

Replays the 10 km drive under all five radio-band configurations and
renders each configuration's active-radio timeline the way Fig. 9
draws its horizontal bars (4 = LTE, N = NSA-5G, S = SA-5G).

Run: ``python examples/handoff_drive.py``
"""

from repro.experiments import format_table, run_handoff_drive
from repro.mobility.handoff import RadioTech

_GLYPH = {
    RadioTech.LTE: "4",
    RadioTech.NSA_5G: "N",
    RadioTech.SA_5G: "S",
    RadioTech.NONE: ".",
}


def render_timeline(summary, width: int = 96) -> str:
    """One character per timeline slice, like Fig. 9's colored bars."""
    if not summary.segments:
        return ""
    end = max(seg_end for _s, seg_end, _t in summary.segments)
    step = end / width
    chars = []
    for i in range(width):
        t = i * step
        tech = RadioTech.NONE
        for start, seg_end, seg_tech in summary.segments:
            if start <= t < seg_end:
                tech = seg_tech
                break
        chars.append(_GLYPH[tech])
    return "".join(chars)


def main() -> None:
    result = run_handoff_drive(dt_s=0.5, seed=3)
    print(
        f"Route: {result['route_km']:.1f} km, "
        f"{result['duration_s'] / 60.0:.1f} minutes of driving\n"
    )
    print(
        format_table(
            ["configuration", "total", "horizontal", "vertical"],
            [
                (r["configuration"], r["total"], r["horizontal"], r["vertical"])
                for r in result["rows"]
            ],
            title="Fig. 9: handoff counts",
        )
    )
    print("\nActive-radio timelines (4 = LTE, N = NSA-5G, S = SA-5G):\n")
    for name, summary in result["summaries"].items():
        print(f"  {name:14s} |{render_timeline(summary)}|")
    print(
        "\nReading: SA needs no 4G anchor, so its bar is solid and its "
        "handoff count minimal;\nNSA flaps between the LTE anchor and "
        "the 5G leg on every data-activity cycle."
    )


if __name__ == "__main__":
    main()
