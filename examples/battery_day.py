#!/usr/bin/env python3
"""Battery drain for a day of app usage, per radio.

Composes the paper's whole power thread: RRC tails and 4G->5G switch
bursts (section 4.2), throughput/signal-aware transfer power (section
4.5), and the radio-choice trade-off (sections 5.4/6.2) into one
battery estimate — and quantifies the paper's headline advice that
periodic background traffic should be batched under 5G.

Run: ``python examples/battery_day.py``
"""

from repro.core import (
    Activity,
    UsageSession,
    batched_sync_timeline,
    periodic_sync_timeline,
)
from repro.experiments import format_table

RADIOS = ("verizon-nsa-mmwave", "verizon-nsa-lowband", "verizon-lte")


def typical_day() -> list:
    """A compressed 'day': browsing bursts, two video sessions, a big
    download, and background syncs."""
    timeline = []
    for _ in range(12):  # morning browsing
        timeline.append(Activity("web", demand_mbps=25.0, transfer_s=4.0, gap_s=45.0))
    timeline.append(Activity("video", demand_mbps=8.0, transfer_s=1200.0, gap_s=300.0))
    for _ in range(8):
        timeline.append(Activity("web", demand_mbps=25.0, transfer_s=4.0, gap_s=60.0))
    timeline.append(Activity("download", demand_mbps=2000.0, transfer_s=45.0, gap_s=120.0))
    timeline.append(Activity("video", demand_mbps=120.0, transfer_s=900.0, gap_s=600.0))
    return timeline


def main() -> None:
    timeline = typical_day()
    print("== A day of usage, per radio ==")
    rows = []
    for key in RADIOS:
        result = UsageSession(key).simulate(timeline)
        rows.append(
            (
                key.replace("verizon-", ""),
                round(result.total_energy_j, 0),
                round(result.transfer_energy_j, 0),
                round(result.tail_energy_j, 0),
                round(result.switch_energy_j, 1),
                round(result.duration_s / 60.0, 1),
                f"{result.battery_drain_percent:.1f}%",
            )
        )
    print(
        format_table(
            ["radio", "total J", "transfer J", "tails J", "switches J", "minutes", "battery"],
            rows,
        )
    )

    print("\n== Section 4.2's advice, quantified: batch background syncs ==")
    rows = []
    for key in RADIOS:
        session = UsageSession(key)
        periodic = session.simulate(periodic_sync_timeline())
        batched = session.simulate(batched_sync_timeline())
        saving = 100.0 * (1.0 - batched.total_energy_j / periodic.total_energy_j)
        rows.append(
            (
                key.replace("verizon-", ""),
                round(periodic.total_energy_j, 1),
                round(batched.total_energy_j, 1),
                f"{saving:.0f}%",
            )
        )
    print(format_table(["radio", "periodic sync J", "batched sync J", "saving"], rows))
    print(
        "\nReading: every radio benefits from batching, and mmWave "
        "benefits the most — its tail\nburns ~1.1 W for ~10.5 s after "
        "every little transfer (Table 2)."
    )


if __name__ == "__main__":
    main()
