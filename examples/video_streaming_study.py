#!/usr/bin/env python3
"""Video streaming over mmWave 5G (paper section 5).

Reproduces the section-5 study at example scale:

* evaluates all seven ABR algorithms on synthetic Lumos5G-like 5G and
  4G corpora (Fig. 17),
* swaps throughput predictors into fastMPC (Fig. 18a),
* compares chunk lengths (Fig. 18b),
* runs the 5G-aware interface-selection scheme with energy accounting
  (Fig. 18c / Table 4).

Run: ``python examples/video_streaming_study.py``
"""

from repro.experiments import (
    format_table,
    run_abr_comparison,
    run_chunk_lengths,
    run_video_interface_selection,
    run_video_predictors,
)


def fig17() -> None:
    print("== Fig. 17: seven ABRs on 5G vs 4G ==")
    result = run_abr_comparison(n_traces=10, n_chunks=40, duration_s=220, seed=3)
    print(
        format_table(
            ["ABR", "5G stall %", "5G bitrate", "4G stall %", "4G bitrate"],
            [
                (
                    r["abr"],
                    round(r["stall_5G"], 2),
                    round(r["bitrate_5G"], 3),
                    round(r["stall_4G"], 2),
                    round(r["bitrate_4G"], 3),
                )
                for r in result["rows"]
            ],
        )
    )
    print(
        "\nReading: stalls inflate on 5G for nearly every ABR; Pensieve "
        "(trained on 4G-like dynamics)\nhas the best 4G numbers and the "
        "worst 5G stalls; robustMPC balances both axes.\n"
    )


def fig18a() -> None:
    print("== Fig. 18a: throughput predictors inside fastMPC ==")
    result = run_video_predictors(n_traces=12, n_chunks=40, duration_s=220, seed=4)
    print(
        format_table(
            ["predictor", "mean QoE"],
            [(k, round(v, 0)) for k, v in result["qoe"].items()],
        )
    )
    print(
        "\nReading: the PHY-aware GBDT predictor beats harmonic mean; the "
        "ground-truth oracle bounds both.\n"
    )


def fig18b() -> None:
    print("== Fig. 18b: chunk length ==")
    result = run_chunk_lengths(n_traces=10, duration_s=220, seed=5)
    print(
        format_table(
            ["chunk s", "stall %", "normalized bitrate"],
            [
                (r["chunk_s"], round(r["stall_percent"], 2), round(r["normalized_bitrate"], 3))
                for r in result["rows"]
            ],
        )
    )
    print("\nReading: finer chunks adapt faster and buy higher bitrate.\n")


def fig18c() -> None:
    print("== Fig. 18c / Table 4: 5G-aware interface selection ==")
    result = run_video_interface_selection(n_pairs=12, n_chunks=40, duration_s=220, seed=6)
    print(
        format_table(
            ["scheme", "stall %", "bitrate", "energy J", "switches/session"],
            [
                (
                    name,
                    round(stats["stall_percent"], 2),
                    round(stats["normalized_bitrate"], 3),
                    round(stats["energy_j"], 1),
                    round(stats["switches"], 2),
                )
                for name, stats in result["summary"].items()
            ],
        )
    )
    print(
        "\nReading: escaping mmWave craters onto stable-but-slow 4G cuts "
        "both stalls and radio energy;\nthe realistic scheme pays a small "
        "switching-overhead premium over the idealised one.\n"
    )


if __name__ == "__main__":
    fig17()
    fig18a()
    fig18b()
    fig18c()
