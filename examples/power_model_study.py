#!/usr/bin/env python3
"""Power characterisation and modeling (paper section 4).

* controlled iPerf + Monsoon throughput-power sweeps and the Fig. 11
  crossover points,
* energy efficiency (Fig. 12),
* RRC tail/switch power (Table 2) with the demotion staircase,
* the TH+SS power model and its TH / SS / linear baselines (Fig. 15),
* software-monitor calibration (Fig. 16, Tables 3/9).

Run: ``python examples/power_model_study.py``
"""

from repro.experiments import (
    format_table,
    run_energy_efficiency,
    run_power_models,
    run_software_monitor,
    run_tail_power,
    run_throughput_power,
)


def main() -> None:
    print("== Fig. 11: throughput vs power (S20U, controlled sweeps) ==")
    sweep = run_throughput_power(n_points=8, duration_s=4.0, seed=0)
    rows = []
    for key, data in sweep["sweeps"].items():
        rows.append(
            (
                key,
                round(data["dl"]["slope"], 2),
                round(data["dl"]["intercept"], 0),
                round(data["ul"]["slope"], 2),
            )
        )
    print(format_table(["network", "DL slope mW/Mbps", "DL intercept mW", "UL slope"], rows))

    print("\nCrossover points (paper: DL 187/189, UL 40/123 Mbps):")
    for (a, b, direction), value in sweep["crossovers"].items():
        if value is not None:
            print(f"  {a} vs {b} [{direction}]: {value:6.1f} Mbps")

    print("\n== Fig. 12: energy efficiency (mW/Mbps, falls with rate) ==")
    efficiency = run_energy_efficiency(throughput_power=sweep)
    curve = efficiency["curves"][("verizon-nsa-mmwave", "dl")]
    for t, e in list(zip(curve["throughput"], curve["efficiency"]))[::2]:
        print(f"  {t:7.1f} Mbps -> {e:7.1f}")

    print("\n== Table 2: RRC tail & switch power ==")
    tail = run_tail_power()
    print(
        format_table(
            ["network", "tail mW", "switch mW", "tail energy J"],
            [
                (
                    r["network"],
                    r["tail_mw"],
                    r["switch_mw"] if r["switch_mw"] is not None else "N/A",
                    round(r["tail_energy_j"], 2),
                )
                for r in tail["rows"]
            ],
        )
    )

    print("\n== Fig. 15: power-model MAPE by feature set ==")
    models = run_power_models(n_train=4, n_test=1, seed=5)
    print(
        format_table(
            ["setting", "TH+SS", "TH", "SS", "linear"],
            [
                (
                    r["setting"],
                    round(r["TH+SS"], 2),
                    round(r["TH"], 2),
                    round(r["SS"], 2),
                    round(r["linear TH+SS"], 2),
                )
                for r in models["rows"]
            ],
        )
    )

    print("\n== Fig. 16 / Tables 3, 9: software power monitor ==")
    software = run_software_monitor(duration_s=12.0, calibration_duration_s=90.0)
    for rate, calib in software["calibration"].items():
        print(
            f"  {rate}: MAPE {calib['mape_before']:.1f}% -> "
            f"{calib['mape_after']:.1f}% after DTR calibration"
        )


if __name__ == "__main__":
    main()
