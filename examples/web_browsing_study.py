#!/usr/bin/env python3
"""Web browsing QoE over mmWave 5G vs 4G (paper section 6).

Builds a synthetic Alexa-style catalog, loads every page over both
radios, and reproduces:

* Fig. 19: how object count and page size drive the 4G/5G PLT and
  energy gaps,
* Fig. 20: PLT and energy CDFs,
* Fig. 21: the energy saving bought by accepting a PLT penalty,
* Table 6 / Fig. 22: the M1-M5 decision trees.

Run: ``python examples/web_browsing_study.py``
"""

import numpy as np

from repro.experiments import format_table, run_web_factors, run_web_selection


def main() -> None:
    print("Building catalog and loading pages over 4G and 5G...")
    factors = run_web_factors(n_sites=400, seed=1)
    dataset = factors["dataset"]

    print("\n== Fig. 19a: impact of object count ==")
    print(
        format_table(
            ["bucket", "n", "4G PLT s", "5G PLT s", "4G E J", "5G E J"],
            [
                (
                    r["bucket"],
                    r["n"],
                    round(r["plt_4g"], 2),
                    round(r["plt_5g"], 2),
                    round(r["energy_4g"], 2),
                    round(r["energy_5g"], 2),
                )
                for r in factors["fig19_objects"]
                if r["n"] > 0
            ],
        )
    )

    print("\n== Fig. 20: medians of the CDFs ==")
    print(
        f"  PLT   : 4G {np.median(dataset.plt_4g):5.2f} s   5G {np.median(dataset.plt_5g):5.2f} s"
    )
    print(
        f"  Energy: 4G {np.median(dataset.energy_4g):5.2f} J   5G {np.median(dataset.energy_5g):5.2f} J"
    )

    print("\n== Fig. 21: saving vs penalty ==")
    print(
        format_table(
            ["PLT penalty %", "n sites", "energy saving %"],
            [
                (r["penalty_bucket"], r["n"], round(r["energy_saving_percent"], 1))
                for r in factors["fig21"]
                if r["n"] > 0
            ],
        )
    )

    print("\n== Table 6: decision-tree interface selection ==")
    selection = run_web_selection(dataset=dataset, seed=1)
    print(
        format_table(
            ["#ID", "Desired QoE", "alpha", "beta", "Use 4G", "Use 5G"],
            selection["rows"],
        )
    )

    print("\n== Fig. 22: the M1 (high-performance) tree ==")
    print(selection["trees"]["M1"])
    print("\n== Fig. 22: the M4 (energy-saving) tree ==")
    print(selection["trees"]["M4"])


if __name__ == "__main__":
    main()
