#!/usr/bin/env python3
"""Quickstart: a ten-minute tour of the library.

Walks through the paper's main threads end to end:

1. carrier networks and their radio link budgets,
2. a miniature Speedtest campaign (Fig. 2/3 methodology),
3. RRC-Probe inference of the Table 7 timers,
4. the throughput/signal-aware power model (section 4.5),
5. a single ABR video playback over a synthetic mmWave trace.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.core.powermodel import train_from_walking_traces
from repro.experiments import format_table
from repro.net.servers import carrier_server_pool
from repro.net.speedtest import ConnectionMode, SpeedtestHarness
from repro.power.device import get_device
from repro.radio.carriers import NETWORKS, get_network
from repro.radio.link import LinkBudget
from repro.rrc.parameters import get_parameters
from repro.rrc.probe import RRCProbe
from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.traces.walking import WalkingTraceGenerator
from repro.video.abr import make_abr
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import Player
from repro.video.qoe import normalized_bitrate, stall_percent


def tour_networks() -> None:
    print("== 1. Carrier networks (section 2) ==")
    rows = []
    for network in NETWORKS.values():
        rows.append(
            (
                network.label,
                network.band.name,
                network.peak_dl_mbps,
                network.peak_ul_mbps,
                network.rtt_floor_ms,
            )
        )
    print(format_table(["network", "band", "peak DL", "peak UL", "RTT floor"], rows))

    link = LinkBudget(get_network("verizon-nsa-mmwave"), get_device("S20U").modem)
    print("\nmmWave capacity vs RSRP (S20U):")
    for rsrp in (-75, -90, -105):
        print(f"  RSRP {rsrp:4d} dBm -> {link.capacity_mbps(rsrp):7.0f} Mbps down")


def tour_speedtest() -> None:
    print("\n== 2. Speedtest (Fig. 2/3 methodology) ==")
    harness = SpeedtestHarness(
        network=get_network("verizon-nsa-mmwave"), device=get_device("S20U"), seed=0
    )
    for server in carrier_server_pool("Verizon")[:3]:
        peak = harness.peak(harness.run_setting(server, ConnectionMode.MULTIPLE, 5))
        print(
            f"  {server.city:12s} {peak.distance_km:7.0f} km  "
            f"RTT {peak.rtt_ms:5.1f} ms  DL {peak.downlink_mbps:6.0f} Mbps"
        )


def tour_rrc() -> None:
    print("\n== 3. RRC-Probe (Table 7) ==")
    for key in ("tmobile-sa-lowband", "verizon-nsa-mmwave"):
        probe = RRCProbe(get_parameters(key), seed=1)
        result = probe.sweep(np.arange(1.0, 19.0, 1.0), packets_per_interval=15)
        inferred = result.inferred
        print(
            f"  {key:22s} tail {inferred['inactivity_ms']:7.0f} ms  "
            f"promotion {inferred['promotion_ms']:6.0f} ms  "
            f"intermediate={'yes' if inferred['has_intermediate'] else 'no'}"
        )


def tour_power_model() -> None:
    print("\n== 4. Power model (section 4.5) ==")
    generator = WalkingTraceGenerator(
        network=get_network("verizon-nsa-mmwave"), device=get_device("S20U"), seed=2
    )
    traces = generator.generate_many(4)
    model = train_from_walking_traces("S20U/VZ/NSA-HB", traces[:3])
    test = traces[3]
    mape = model.mape(test.dl_mbps, test.rsrp_dbm, test.power_mw)
    print(f"  TH+SS model MAPE on held-out walk: {mape:.2f}%")
    for dl, rsrp in ((0.0, -80.0), (500.0, -80.0), (500.0, -100.0)):
        power = model.predict_mw([dl], [rsrp])[0]
        print(f"  predict({dl:6.0f} Mbps, {rsrp:4.0f} dBm) = {power:6.0f} mW")


def tour_video() -> None:
    print("\n== 5. ABR playback over a mmWave trace (section 5) ==")
    traces_5g, _ = generate_lumos_corpus(
        LumosConfig(n_5g=1, n_4g=0, duration_s=240, seed=5)
    )
    manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=40)
    player = Player(manifest)
    for name in ("robustmpc", "pensieve"):
        result = player.play(make_abr(name), traces_5g[0].throughput_at)
        print(
            f"  {name:10s} stall {stall_percent(result.stall_s, result.playback_s):5.2f}%  "
            f"bitrate {normalized_bitrate(result.chunk_bitrates_mbps, 160.0):.3f}"
        )


if __name__ == "__main__":
    tour_networks()
    tour_speedtest()
    tour_rrc()
    tour_power_model()
    tour_video()
    print("\nDone. See benchmarks/ for full per-figure reproductions.")
