#!/usr/bin/env python3
"""Export a released-artifact-style dataset.

The paper ships its dataset as per-experiment folders of CSVs plus
processed results (Appendix A.6). This example regenerates a miniature
equivalent from the simulation:

* ``throughput_traces/`` — Lumos5G-like 5G/4G CSV traces,
* ``walking_traces/`` — 10 Hz network+power walking CSVs,
* ``results/`` — per-figure processed JSON (same content as
  ``python -m repro run <artifact> --json``),
* ``figures/`` — rendered SVGs.

Run: ``python examples/export_dataset.py [outdir]``
"""

import sys
from pathlib import Path

from repro.experiments import (
    run_handoff_drive,
    run_tail_power,
    run_throughput_power,
)
from repro.experiments.export import export_json
from repro.power.device import get_device
from repro.radio.carriers import get_network
from repro.traces.io import save_throughput_trace, save_walking_trace
from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.traces.walking import WalkingTraceGenerator
from repro.viz.figures import render_figure


def main(outdir: Path) -> None:
    print(f"Exporting dataset to {outdir}/ ...")

    # Throughput traces (a small sample, like the paper's repo).
    traces_5g, traces_4g = generate_lumos_corpus(
        LumosConfig(n_5g=8, n_4g=8, duration_s=300, seed=42)
    )
    for trace in traces_5g + traces_4g:
        save_throughput_trace(
            trace, outdir / "throughput_traces" / f"{trace.name}.csv"
        )
    print(f"  wrote {len(traces_5g) + len(traces_4g)} throughput traces")

    # Walking traces for two settings.
    for network_key, device_name, city in (
        ("verizon-nsa-mmwave", "S20U", "Minneapolis"),
        ("tmobile-sa-lowband", "S20U", "Minneapolis"),
    ):
        generator = WalkingTraceGenerator(
            network=get_network(network_key),
            device=get_device(device_name),
            city=city,
            seed=7,
        )
        for trace in generator.generate_many(2, prefix=network_key):
            save_walking_trace(
                trace, outdir / "walking_traces" / f"{trace.name}.csv"
            )
    print("  wrote 4 walking traces")

    # Processed per-figure results.
    results = {
        "fig9_handoffs": run_handoff_drive(),
        "table2_tail_power": run_tail_power(),
        "fig11_throughput_power": run_throughput_power(n_points=6, duration_s=3.0),
    }
    for name, result in results.items():
        result.pop("summaries", None)  # bulky object graphs
        result.pop("sweeps", None)
        export_json(result, outdir / "results" / f"{name}.json")
    print(f"  wrote {len(results)} processed result files")

    # Figures.
    paths = []
    for figure in ("fig9", "fig11", "fig12"):
        paths.extend(render_figure(figure, outdir / "figures", scale=0.5))
    print(f"  rendered {len(paths)} SVG figures")
    print("Done.")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("dataset_export")
    main(target)
