"""Fan a set of paper artifacts over the scenario engine.

Demonstrates the full `repro.engine` surface: a seeded sweep spec, a
worker pool, an on-disk cache (rerun this script to see hits), a
progress stream, and graceful handling of an injected failure.

Usage::

    python examples/engine_sweep.py [workers] [cache_dir]
"""

from __future__ import annotations

import sys

from repro import engine


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    cache_dir = sys.argv[2] if len(sys.argv) > 2 else ".repro-cache"

    # Three real artifacts at quick-look scale, plus one injected
    # always-failing job to show sweep-level fault tolerance.
    sweep = engine.SweepSpec(
        runners=["fig2", "fig9", "table2"], base_seed=17, scale=0.25
    )
    jobs = sweep.expand() + [
        engine.JobSpec(runner="test.fail", label="injected-failure", index=3)
    ]

    result = engine.execute(
        jobs,
        workers=workers,
        retries=1,
        cache=engine.ResultCache(cache_dir),
        progress=engine.ProgressTracker(stream=sys.stderr),
    )

    print(result.summary())
    print(f"cache hit rate: {100.0 * result.cache_hit_rate:.0f}%")
    for failure in result.failures():
        print(f"failed (as intended): {failure.label}: {failure.error}")

    # Values arrive in job order; failures yield None.
    fig2, fig9, table2, injected = result.values()
    assert injected is None
    print(f"fig2 networks: {sorted(fig2['series'])}")
    print(f"fig9 configurations: {[row['configuration'] for row in fig9['rows']]}")
    print(f"table2 rows: {len(table2['rows'])}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
