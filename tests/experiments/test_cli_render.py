"""Tests for the CLI render subcommand."""

import xml.etree.ElementTree as ET

import pytest

from repro.cli import main


class TestRender:
    def test_render_single_figure(self, tmp_path, capsys):
        assert main(["render", "fig9", str(tmp_path), "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "fig9_handoffs.svg" in out
        ET.parse(tmp_path / "fig9_handoffs.svg")

    def test_render_unknown_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["render", "fig999", str(tmp_path)])

    def test_render_scale_validated(self, tmp_path):
        assert main(["render", "fig9", str(tmp_path), "--scale", "-1"]) == 2
