"""Tests for repro.experiments.export."""

import dataclasses
import enum
import json

import numpy as np
import pytest

from repro.experiments.export import export_json, from_jsonable, to_jsonable


class Color(enum.Enum):
    RED = "red"


@dataclasses.dataclass
class Point:
    x: float
    y: np.ndarray
    _private: int = 0


class TestToJsonable:
    def test_primitives_pass_through(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True

    def test_nan_becomes_null(self):
        assert to_jsonable(np.float64("nan")) is None
        assert to_jsonable(float("nan")) is None

    def test_infinities_become_sentinels(self):
        assert to_jsonable(float("inf")) == "Infinity"
        assert to_jsonable(float("-inf")) == "-Infinity"
        assert to_jsonable(np.float64("inf")) == "Infinity"
        assert to_jsonable(np.array([np.inf, -np.inf, np.nan, 1.0])) == [
            "Infinity",
            "-Infinity",
            None,
            1.0,
        ]

    def test_nonfinite_roundtrips_as_strict_json(self, tmp_path):
        path = export_json(
            {"nan": float("nan"), "inf": np.inf, "ninf": -np.inf},
            tmp_path / "strict.json",
        )
        # Strict parsers (no NaN/Infinity literals) must accept the file.
        data = json.loads(path.read_text(), parse_constant=lambda c: (_ for _ in ()).throw(ValueError(c)))
        assert data == {"nan": None, "inf": "Infinity", "ninf": "-Infinity"}

    def test_arrays(self):
        assert to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_huge_array_rejected(self):
        with pytest.raises(ValueError):
            to_jsonable(np.zeros(200_001))

    def test_enum(self):
        assert to_jsonable(Color.RED) == "red"

    def test_dataclass_skips_private(self):
        point = Point(x=1.0, y=np.array([2.0]), _private=9)
        out = to_jsonable(point)
        assert out == {"x": 1.0, "y": [2.0]}

    def test_tuple_keys_joined(self):
        assert to_jsonable({("a", "b"): 1}) == {"a|b": 1}

    def test_nested_structures(self):
        value = {"rows": [{"v": np.float32(1.5)}], "t": (1, 2)}
        assert to_jsonable(value) == {"rows": [{"v": 1.5}], "t": [1, 2]}

    def test_fallback_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert to_jsonable(Odd()) == "<odd>"


class TestFromJsonable:
    def test_sentinels_decode_to_floats(self):
        assert from_jsonable("Infinity") == float("inf")
        assert from_jsonable("-Infinity") == float("-inf")
        assert isinstance(from_jsonable("Infinity"), float)

    def test_roundtrip_inf_ninf_nan(self):
        original = {"inf": float("inf"), "ninf": float("-inf"),
                    "nan": float("nan"), "x": 1.5}
        decoded = from_jsonable(to_jsonable(original))
        assert decoded["inf"] == float("inf")
        assert decoded["ninf"] == float("-inf")
        assert decoded["nan"] is None  # NaN is one-way: missing stays null
        assert decoded["x"] == 1.5

    def test_recurses_through_containers(self):
        value = {"rows": [["Infinity", {"v": "-Infinity"}], "plain"]}
        decoded = from_jsonable(value)
        assert decoded["rows"][0][0] == float("inf")
        assert decoded["rows"][0][1]["v"] == float("-inf")
        assert decoded["rows"][1] == "plain"

    def test_ordinary_values_pass_through(self):
        for value in (None, True, 3, 2.5, "text", [], {}):
            assert from_jsonable(value) == value

    def test_roundtrip_array_sentinels(self):
        encoded = to_jsonable(np.array([np.inf, -np.inf, np.nan, 2.0]))
        assert from_jsonable(encoded) == [
            float("inf"),
            float("-inf"),
            None,
            2.0,
        ]


class TestExportJson:
    def test_roundtrip(self, tmp_path):
        path = export_json({"a": np.array([1, 2])}, tmp_path / "out" / "x.json")
        assert path.exists()
        assert json.loads(path.read_text()) == {"a": [1, 2]}

    def test_runner_output_exports(self, tmp_path):
        from repro.experiments import run_tail_power

        path = export_json(run_tail_power(), tmp_path / "t2.json")
        data = json.loads(path.read_text())
        assert any(r["network"] == "verizon-nsa-mmwave" for r in data["rows"])
