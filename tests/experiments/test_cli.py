"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "fig9", "--scale", "0.5"])
        assert args.artifact == "fig9"
        assert args.scale == 0.5

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig999"])

    def test_every_paper_artifact_reachable(self):
        # Every evaluation table/figure maps to some CLI id (several ids
        # cover multiple artifacts; the docstrings say which).
        assert {"table1", "table2", "table6", "table9"} <= set(ARTIFACTS)
        assert {"fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig17", "fig19"} <= set(ARTIFACTS)


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ARTIFACTS:
            assert key in out

    def test_run_fig9_prints_table(self, capsys):
        assert main(["run", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "SA-5G only" in out
        assert "NSA-5G + LTE" in out

    def test_run_table2_json(self, tmp_path, capsys):
        target = tmp_path / "t2.json"
        assert main(["run", "table2", "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        networks = {r["network"] for r in data["rows"]}
        assert "verizon-nsa-mmwave" in networks

    def test_scale_validation(self, capsys):
        assert main(["run", "fig9", "--scale", "0"]) == 2

    def test_scaled_run_smaller(self, capsys):
        assert main(["run", "fig24", "--scale", "0.25"]) == 0
        assert "Verizon, Minneapolis" in capsys.readouterr().out
