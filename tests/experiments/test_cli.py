"""Tests for the ``python -m repro`` CLI."""

import json

from repro.cli import _artifact_ids, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "fig9", "--scale", "0.5"])
        assert args.artifact == "fig9"
        assert args.scale == 0.5

    def test_run_seed_parses(self):
        args = build_parser().parse_args(["run", "fig9", "--seed", "42"])
        assert args.seed == 42

    def test_sweep_parses(self):
        args = build_parser().parse_args(
            ["sweep", "fig2", "fig9", "--workers", "4", "--cache-dir", "c"]
        )
        assert args.artifacts == ["fig2", "fig9"]
        assert args.workers == 4
        assert args.cache_dir == "c"

    def test_every_paper_artifact_reachable(self):
        # Every evaluation table/figure maps to some CLI id (several ids
        # cover multiple artifacts; the docstrings say which).
        ids = set(_artifact_ids())
        assert {"table1", "table2", "table6", "table9"} <= ids
        assert {"fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig17", "fig19"} <= ids


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in _artifact_ids():
            assert key in out

    def test_unknown_artifact_exits_nonzero(self, capsys):
        assert main(["run", "fig999"]) == 2
        err = capsys.readouterr().err
        assert "fig999" in err and "repro list" in err

    def test_unknown_sweep_artifact_exits_nonzero(self, capsys):
        assert main(["sweep", "fig2", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_run_fig9_prints_table(self, capsys):
        assert main(["run", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "SA-5G only" in out
        assert "NSA-5G + LTE" in out

    def test_run_table2_json(self, tmp_path, capsys):
        target = tmp_path / "t2.json"
        assert main(["run", "table2", "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        networks = {r["network"] for r in data["rows"]}
        assert "verizon-nsa-mmwave" in networks

    def test_scale_validation(self, capsys):
        assert main(["run", "fig9", "--scale", "0"]) == 2

    def test_scaled_run_smaller(self, capsys):
        assert main(["run", "fig24", "--scale", "0.25"]) == 0
        assert "Verizon, Minneapolis" in capsys.readouterr().out

    def test_run_seed_changes_output(self, tmp_path):
        paths = []
        for i, seed in enumerate(["1", "2"]):
            target = tmp_path / f"f2-{seed}-{i}.json"
            assert main(["run", "fig2", "--scale", "0.2", "--seed", seed,
                         "--json", str(target)]) == 0
            paths.append(json.loads(target.read_text()))
        assert paths[0] != paths[1]

    def test_run_seed_reproducible(self, tmp_path):
        payloads = []
        for i in range(2):
            target = tmp_path / f"f2-{i}.json"
            assert main(["run", "fig2", "--scale", "0.2", "--seed", "7",
                         "--json", str(target)]) == 0
            payloads.append(json.loads(target.read_text()))
        assert payloads[0] == payloads[1]
