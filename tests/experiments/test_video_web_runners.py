"""Shape tests for the video and web experiment runners (Figs. 17-22)."""

import numpy as np
import pytest

import repro.experiments as ex


@pytest.fixture(scope="module")
def abr_result():
    return ex.run_abr_comparison(n_traces=8, n_chunks=40, duration_s=200, seed=3)


class TestFig17:
    def test_all_seven_abrs_ran(self, abr_result):
        assert len(abr_result["rows"]) == 7

    def test_stalls_worse_on_5g_for_most(self, abr_result):
        worse = sum(
            1 for row in abr_result["rows"] if row["stall_5G"] > row["stall_4G"]
        )
        assert worse >= 5

    def test_pensieve_worst_5g_stall(self, abr_result):
        stalls = {row["abr"]: row["stall_5G"] for row in abr_result["rows"]}
        assert stalls["pensieve"] == max(stalls.values())

    def test_pensieve_top_bitrate(self, abr_result):
        bitrates = {row["abr"]: row["bitrate_5G"] for row in abr_result["rows"]}
        assert bitrates["pensieve"] >= max(bitrates.values()) - 0.05

    def test_bba_low_stall_both_networks(self, abr_result):
        rows = {row["abr"]: row for row in abr_result["rows"]}
        stalls = sorted(r["stall_5G"] for r in abr_result["rows"])
        # BBA stays at (or within a small margin of) the lower half of
        # the 5G stall ranking; across seeds it is usually 1st-2nd, but
        # individual corpus realizations can nudge it just past the
        # median.
        assert rows["bba"]["stall_5G"] <= stalls[len(stalls) // 2] * 1.15

    def test_robustmpc_better_qoe_region_5g(self, abr_result):
        rows = {row["abr"]: row for row in abr_result["rows"]}
        robust = rows["robustmpc"]
        # robustMPC balances both axes: fewer stalls than fastMPC at a
        # still-high bitrate (the paper's lone better-QoE survivor).
        assert robust["stall_5G"] < rows["fastmpc"]["stall_5G"]
        assert robust["stall_5G"] < 8.0
        assert robust["bitrate_5G"] > 0.7

    def test_bitrate_drop_5g_vs_4g_small(self, abr_result):
        # Paper: average normalized-bitrate drop is only ~3.5%.
        drops = [row["bitrate_4G"] - row["bitrate_5G"] for row in abr_result["rows"]]
        assert np.mean(drops) < 0.15


class TestFig18:
    def test_predictor_ordering(self):
        result = ex.run_video_predictors(n_traces=12, n_chunks=40, duration_s=200, seed=4)
        qoe = result["qoe"]
        assert qoe["truthMPC"] >= qoe["MPC_GDBT"]
        assert qoe["MPC_GDBT"] > qoe["hmMPC"]

    def test_chunk_length_bitrate_trend(self):
        result = ex.run_chunk_lengths(n_traces=8, duration_s=200, seed=5)
        rows = {row["chunk_s"]: row for row in result["rows"]}
        # Fig. 18b: shorter chunks buy higher bitrate.
        assert rows[1.0]["normalized_bitrate"] > rows[4.0]["normalized_bitrate"]

    def test_interface_selection_saves_energy(self):
        result = ex.run_video_interface_selection(
            n_pairs=8, n_chunks=40, duration_s=200, seed=6
        )
        summary = result["summary"]
        assert summary["5G-aware MPC"]["energy_j"] < summary["5G-only MPC"]["energy_j"]
        # Stalls should not get dramatically worse (paper: 26.9% better).
        assert (
            summary["5G-aware MPC"]["stall_percent"]
            <= summary["5G-only MPC"]["stall_percent"] * 1.3
        )


@pytest.fixture(scope="module")
def web_result():
    return ex.run_web_factors(n_sites=200, seed=1)


class TestFig19to21:
    def test_5g_faster_4g_cheaper(self, web_result):
        dataset = web_result["dataset"]
        assert (dataset.plt_5g < dataset.plt_4g).all()
        assert (dataset.energy_4g < dataset.energy_5g).all()

    def test_plt_gap_grows_with_objects(self, web_result):
        rows = [r for r in web_result["fig19_objects"] if r["n"] > 3]
        gaps = [r["plt_4g"] - r["plt_5g"] for r in rows]
        assert gaps[-1] > gaps[0]

    def test_energy_gap_opposite_direction(self, web_result):
        rows = [r for r in web_result["fig19_size"] if r["n"] > 3]
        for row in rows:
            assert row["energy_5g"] > row["energy_4g"]

    def test_cdfs_monotone(self, web_result):
        xs, ys = web_result["cdfs"]["plt_4g"]
        assert np.all(np.diff(ys) > 0)

    def test_fig21_small_penalty_big_saving(self, web_result):
        buckets = [b for b in web_result["fig21"] if b["n"] > 0]
        assert buckets, "no penalty buckets populated"
        assert buckets[0]["energy_saving_percent"] > 40.0


class TestTable6:
    def test_flip_pattern(self, web_result):
        result = ex.run_web_selection(dataset=web_result["dataset"], seed=1)
        reports = result["reports"]
        assert reports["M1"].use_5g > reports["M1"].use_4g
        assert reports["M4"].use_4g > reports["M4"].use_5g
        assert reports["M5"].use_5g <= reports["M4"].use_5g

    def test_trees_described(self, web_result):
        result = ex.run_web_selection(dataset=web_result["dataset"], seed=1)
        assert "M1" in result["trees"]
        assert isinstance(result["trees"]["M1"], str)


class TestFormatTable:
    def test_renders(self):
        text = ex.format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
        assert "T" in text
        assert "2.500" in text

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            ex.format_table(["a"], [[1, 2]])
