"""Smoke + shape tests for the per-figure experiment runners.

Each runner gets exercised at reduced scale; assertions check the
paper's qualitative findings (who wins, orderings, crossovers), not
absolute numbers. The full-scale versions live in ``benchmarks/``.
"""

import math

import numpy as np
import pytest

import repro.experiments as ex


class TestPerfRunners:
    def test_latency_vs_distance_shape(self):
        result = ex.run_latency_vs_distance(n_servers=6, seed=0)
        series = result["series"]
        mm = series["verizon-nsa-mmwave"]
        # RTT grows with distance.
        assert mm[0][1] < mm[-1][1]
        # mmWave beats low-band beats LTE at every common distance.
        for (d1, mm_rtt), (_d2, lb_rtt), (_d3, lte_rtt) in zip(
            mm, series["verizon-nsa-lowband"], series["verizon-lte"]
        ):
            assert mm_rtt < lb_rtt < lte_rtt

    def test_throughput_vs_distance_shape(self):
        result = ex.run_throughput_vs_distance(n_servers=4, repetitions=4, seed=1)
        rows = result["rows"]
        # Multi-connection stays near peak; single decays with distance.
        assert rows[0]["dl_multi_mbps"] > 2500.0
        assert rows[-1]["dl_multi_mbps"] > 2500.0
        assert rows[-1]["dl_single_mbps"] < rows[0]["dl_single_mbps"]

    def test_azure_transport_ordering(self):
        result = ex.run_azure_transport(seed=0)
        for row in result["rows"]:
            assert row["udp_mbps"] >= row["tcp8_mbps"] * 0.95
            assert row["tcp8_mbps"] > row["tcp1_tuned_mbps"] * 0.9
            assert row["tcp1_tuned_mbps"] > row["tcp1_default_mbps"]
        # Default 1-TCP bound near 500 Mbps at metro distances.
        first = result["rows"][0]
        assert first["tcp1_default_mbps"] < 1400.0

    def test_azure_tuning_gain_2_to_3x(self):
        result = ex.run_azure_transport(seed=0)
        gains = [r["tcp1_tuned_mbps"] / r["tcp1_default_mbps"] for r in result["rows"]]
        assert 1.5 <= np.mean(gains) <= 3.5

    def test_server_survey_caps_visible(self):
        result = ex.run_server_survey(seed=0, repetitions=3)
        rows = {r["server"]: r for r in result["rows"]}
        carrier = rows["Verizon, Minneapolis"]
        assert carrier["dl_mbps"] > 2700.0
        capped = [r for r in result["rows"] if r["cap_mbps"] == 1000.0]
        assert all(r["dl_mbps"] <= 1000.0 for r in capped)

    def test_carrier_aggregation_fig23(self):
        result = ex.run_carrier_aggregation()
        rows = {r["device"]: r for r in result["rows"]}
        assert rows["S20U"]["dl_mbps"] > rows["PX5"]["dl_mbps"]
        assert rows["PX5"]["dl_mbps"] == pytest.approx(2200.0, rel=0.15)


class TestHandoffRunner:
    def test_fig9_ordering(self):
        result = ex.run_handoff_drive()
        totals = {r["configuration"]: r["total"] for r in result["rows"]}
        assert totals["NSA-5G + LTE"] > totals["All Bands"] > totals["SA-5G + LTE"]
        assert totals["SA-5G only"] == min(totals.values())


class TestRrcRunners:
    def test_inference_matches_table7(self):
        result = ex.run_rrc_inference(
            network_keys=["tmobile-sa-lowband", "verizon-nsa-mmwave"], seed=1
        )
        rows = {r["network"]: r for r in result["rows"]}
        sa = rows["tmobile-sa-lowband"]
        assert sa["inactive_detected"]
        assert sa["inferred_inactivity_ms"] == pytest.approx(10400.0, abs=1100.0)
        mm = rows["verizon-nsa-mmwave"]
        assert not mm["inactive_detected"]
        assert mm["inferred_promotion_ms"] == pytest.approx(1907.0, rel=0.25)

    def test_tail_power_table2(self):
        result = ex.run_tail_power()
        rows = {r["network"]: r for r in result["rows"]}
        assert rows["verizon-nsa-mmwave"]["tail_mw"] == 1092.0
        assert rows["verizon-nsa-mmwave"]["tail_energy_j"] > rows["verizon-lte"]["tail_energy_j"]


class TestPowerRunners:
    @pytest.fixture(scope="class")
    def sweep(self):
        return ex.run_throughput_power(n_points=5, duration_s=3.0, seed=0)

    def test_crossovers_near_paper(self, sweep):
        crossings = sweep["crossovers"]
        dl = crossings[("verizon-nsa-mmwave", "verizon-lte", "dl")]
        ul = crossings[("verizon-nsa-mmwave", "verizon-lte", "ul")]
        assert dl == pytest.approx(187.0, rel=0.1)
        assert ul == pytest.approx(40.0, rel=0.15)

    def test_slopes_near_table8(self, sweep):
        mm = sweep["sweeps"]["verizon-nsa-mmwave"]
        assert mm["dl"]["slope"] == pytest.approx(1.81, rel=0.25)
        lte = sweep["sweeps"]["verizon-lte"]
        assert lte["ul"]["slope"] == pytest.approx(80.21, rel=0.25)

    def test_efficiency_log_log_decreasing(self, sweep):
        eff = ex.run_energy_efficiency(throughput_power=sweep)
        curve = eff["curves"][("verizon-nsa-mmwave", "dl")]
        assert curve["efficiency"][0] > curve["efficiency"][-1]

    def test_walking_power_fig14_trend(self):
        result = ex.run_walking_power(n_traces=2, seed=5)
        bins = [b for b in result["bins"] if b["n"] > 10]
        assert len(bins) >= 3
        # Better signal (later bins) -> lower energy per bit.
        assert bins[0]["efficiency"] > bins[-1]["efficiency"]


class TestPowerModelRunners:
    def test_fig15_ordering(self):
        result = ex.run_power_models(
            settings=[("S20U", "verizon-nsa-mmwave", "S20/VZ/NSA-HB")],
            n_train=3,
            n_test=1,
            seed=5,
        )
        row = result["rows"][0]
        assert row["TH+SS"] <= row["TH"] + 0.3
        assert row["TH+SS"] < row["SS"]
        assert row["TH+SS"] < row["linear TH+SS"]

    def test_software_monitor_tables(self):
        result = ex.run_software_monitor(duration_s=8.0, calibration_duration_s=60.0)
        for row in result["table9_rows"]:
            assert row["ratio_1hz"] < 1.0
            assert row["ratio_10hz"] < 1.02
        t3 = {r["activity"]: r["power_mw"] for r in result["table3_rows"]}
        assert t3["Monitor on (10Hz)"] > t3["Monitor on (1Hz)"] > t3["Idle"]
        for rate_key, calib in result["calibration"].items():
            assert calib["mape_after"] < calib["mape_before"]


class TestCampaignRunner:
    def test_table1_rows(self):
        result = ex.run_table1_campaign(
            speedtest_repetitions=1, walking_traces_per_setting=1, web_loads=50
        )
        labels = [r[0] for r in result["rows"]]
        assert len(labels) == 7
        assert result["stats"].speedtest_count > 0
        assert result["stats"].km_walked > 0
