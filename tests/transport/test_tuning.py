"""Tests for repro.transport.tuning."""

import pytest

from repro.transport.tuning import DEFAULT_KERNEL, TUNED_KERNEL, KernelConfig


class TestKernelConfig:
    def test_default_is_linux_418(self):
        assert DEFAULT_KERNEL.tcp_wmem_max_bytes == 4 * 1024 * 1024

    def test_default_buffer_limited_ceiling_near_paper(self):
        # ~533 Mbps at a 30 ms RTT: the paper's <=500 Mbps observation.
        assert DEFAULT_KERNEL.max_rate_mbps(30.0) == pytest.approx(559.0, rel=0.05)

    def test_tuned_covers_mmwave_bdp(self):
        # Must exceed 3 Gbps at metro RTTs.
        assert TUNED_KERNEL.max_rate_mbps(30.0) > 3000.0

    def test_ceiling_inversely_proportional_to_rtt(self):
        config = TUNED_KERNEL
        assert config.max_rate_mbps(10.0) == pytest.approx(3 * config.max_rate_mbps(30.0), rel=0.01)

    def test_usable_fraction(self):
        config = KernelConfig(name="x", tcp_wmem_max_bytes=1000, usable_fraction=0.5)
        assert config.effective_window_bytes == 500.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            KernelConfig(name="x", tcp_wmem_max_bytes=0)
        with pytest.raises(ValueError):
            KernelConfig(name="x", tcp_wmem_max_bytes=10, usable_fraction=0.0)
        with pytest.raises(ValueError):
            DEFAULT_KERNEL.max_rate_mbps(0.0)
