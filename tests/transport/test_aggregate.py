"""Tests for repro.transport.aggregate."""

import pytest

from repro.transport.aggregate import MultiConnection
from repro.transport.flow import TcpFlow
from repro.transport.tuning import DEFAULT_KERNEL


class TestMultiConnection:
    def test_saturates_high_capacity(self):
        # Speedtest's 15-25 connections overcome the per-socket cap.
        agg = MultiConnection(n_connections=20, rtt_ms=30.0, seed=0)
        result = agg.run(3000.0, duration_s=12.0)
        assert result.throughput_mbps > 0.85 * 3000.0

    def test_beats_single_connection(self):
        single = TcpFlow(rtt_ms=40.0, kernel=DEFAULT_KERNEL, seed=1).steady_state_mbps(3000.0)
        multi = MultiConnection(n_connections=16, rtt_ms=40.0, seed=1).run(3000.0).throughput_mbps
        assert multi > 2.0 * single

    def test_distance_insensitive(self):
        # Fig. 3: multi-connection throughput stays flat across RTTs.
        near = MultiConnection(n_connections=20, rtt_ms=10.0, seed=2).run(3000.0).throughput_mbps
        far = MultiConnection(n_connections=20, rtt_ms=60.0, seed=2).run(3000.0).throughput_mbps
        assert far > 0.85 * near

    def test_single_connection_degenerate(self):
        agg = MultiConnection(n_connections=1, rtt_ms=30.0, seed=3)
        single = TcpFlow(rtt_ms=30.0, kernel=DEFAULT_KERNEL, seed=None)
        result = agg.run(1000.0, duration_s=8.0)
        assert result.throughput_mbps <= 1000.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MultiConnection(n_connections=0, rtt_ms=10.0)
        with pytest.raises(ValueError):
            MultiConnection(n_connections=2, rtt_ms=10.0).run(0.0)
