"""Tests for repro.transport.cubic."""

import pytest

from repro.transport.cubic import CUBIC_BETA, CubicState, MSS_BYTES


class TestCubic:
    def test_slow_start_doubles(self):
        state = CubicState(cwnd_segments=10.0)
        state.on_ack_interval(0.03)
        assert state.cwnd_segments == pytest.approx(20.0)

    def test_slow_start_ends_at_ssthresh(self):
        state = CubicState(cwnd_segments=10.0, ssthresh_segments=15.0)
        state.on_ack_interval(0.03)
        assert state.cwnd_segments == pytest.approx(15.0)
        assert not state.in_slow_start

    def test_loss_applies_beta(self):
        state = CubicState(cwnd_segments=100.0)
        state.on_loss()
        assert state.cwnd_segments == pytest.approx(100.0 * CUBIC_BETA)
        assert state.w_max_segments == pytest.approx(100.0)

    def test_window_recovers_to_wmax_at_k(self):
        state = CubicState(cwnd_segments=1000.0)
        state.on_loss()
        k = state.k_seconds()
        state.on_ack_interval(k)
        assert state.cwnd_segments == pytest.approx(1000.0, rel=0.01)

    def test_growth_is_cubic_shape(self):
        state = CubicState(cwnd_segments=1000.0)
        state.on_loss()
        # Concave approach to w_max: early growth slower than late.
        start = state.cwnd_segments
        state.on_ack_interval(1.0)
        early = state.cwnd_segments - start
        state.on_ack_interval(1.0)
        # Near the plateau the growth flattens.
        assert state.cwnd_segments <= state.w_max_segments * 1.5

    def test_window_floor(self):
        state = CubicState(cwnd_segments=2.0)
        state.on_loss()
        assert state.cwnd_segments >= 2.0

    def test_cwnd_bytes(self):
        state = CubicState(cwnd_segments=10.0)
        assert state.cwnd_bytes() == pytest.approx(10.0 * MSS_BYTES)

    def test_negative_interval_raises(self):
        with pytest.raises(ValueError):
            CubicState().on_ack_interval(-1.0)

    def test_k_zero_before_any_loss(self):
        assert CubicState().k_seconds() == 0.0
