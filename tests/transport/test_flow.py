"""Tests for repro.transport.flow (the Fig. 3/8 mechanics)."""

import pytest

from repro.transport.flow import TcpFlow, UdpFlow, bandwidth_delay_product_bytes
from repro.transport.tuning import DEFAULT_KERNEL, TUNED_KERNEL


class TestBdp:
    def test_known_value(self):
        # 1000 Mbps x 40 ms = 5 MB.
        assert bandwidth_delay_product_bytes(1000.0, 40.0) == pytest.approx(5e6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            bandwidth_delay_product_bytes(0.0, 10.0)


class TestUdp:
    def test_tracks_capacity(self):
        result = UdpFlow().run(2000.0, duration_s=5.0)
        assert result.throughput_mbps == pytest.approx(2000.0 * 0.98, rel=0.01)

    def test_target_respected(self):
        result = UdpFlow(target_mbps=100.0).run(2000.0, duration_s=5.0)
        assert result.throughput_mbps <= 100.0

    def test_capacity_function(self):
        result = UdpFlow().run(lambda t: 100.0 if t < 2.5 else 300.0, duration_s=5.0)
        assert 150.0 < result.throughput_mbps < 250.0

    def test_sub_dt_duration_is_finite(self):
        # Regression: durations below dt/2 used to round to zero steps
        # and return a NaN mean over an empty rate series; they now run
        # a single step.
        import math

        result = UdpFlow().run(500.0, duration_s=0.04, dt_s=0.1)
        assert math.isfinite(result.throughput_mbps)
        assert result.rate_series_mbps.shape == (1,)
        assert result.throughput_mbps == pytest.approx(500.0 * 0.98)


class TestTcpBufferLimit:
    def test_default_kernel_caps_near_500mbps(self):
        # The paper's finding: default tcp_wmem limits 1-TCP to <=500 Mbps.
        flow = TcpFlow(rtt_ms=30.0, kernel=DEFAULT_KERNEL, seed=0)
        rate = flow.steady_state_mbps(3000.0)
        assert rate <= DEFAULT_KERNEL.max_rate_mbps(30.0) * 1.05
        assert 350.0 < rate < 620.0

    def test_tuning_recovers_2_to_3x(self):
        default = TcpFlow(rtt_ms=30.0, kernel=DEFAULT_KERNEL, seed=0).steady_state_mbps(3000.0)
        tuned = TcpFlow(rtt_ms=30.0, kernel=TUNED_KERNEL, seed=0).steady_state_mbps(3000.0)
        assert 1.8 <= tuned / default <= 3.5

    def test_throughput_decays_with_rtt(self):
        # CUBIC epoch dynamics make adjacent RTTs noisy; the distance
        # trend (Fig. 3/8) is asserted across a wide RTT spread with
        # seed averaging.
        def mean_rate(rtt):
            return sum(
                TcpFlow(rtt_ms=rtt, kernel=TUNED_KERNEL, seed=s).steady_state_mbps(2200.0)
                for s in range(3)
            ) / 3.0

        near, mid, far = mean_rate(15.0), mean_rate(60.0), mean_rate(120.0)
        assert near > far
        assert mid > far

    def test_tcp_below_capacity(self):
        result = TcpFlow(rtt_ms=20.0, kernel=TUNED_KERNEL, seed=2).run(1000.0, duration_s=10.0)
        assert result.throughput_mbps <= 1000.0

    def test_low_capacity_fully_used(self):
        # At modest capacity the buffer never binds; TCP saturates.
        rate = TcpFlow(rtt_ms=20.0, kernel=DEFAULT_KERNEL, seed=3).steady_state_mbps(50.0)
        assert rate == pytest.approx(50.0, rel=0.1)

    def test_losses_counted(self):
        result = TcpFlow(rtt_ms=20.0, kernel=TUNED_KERNEL, loss_rate=1e-4, seed=4).run(
            2000.0, duration_s=10.0
        )
        assert result.loss_events > 0

    def test_heavy_loss_hurts(self):
        clean = TcpFlow(rtt_ms=30.0, kernel=TUNED_KERNEL, loss_rate=0.0, seed=5).steady_state_mbps(2000.0)
        lossy = TcpFlow(rtt_ms=30.0, kernel=TUNED_KERNEL, loss_rate=5e-5, seed=5).steady_state_mbps(2000.0)
        assert lossy < clean

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TcpFlow(rtt_ms=0.0)
        with pytest.raises(ValueError):
            TcpFlow(rtt_ms=10.0, loss_rate=1.0)
        with pytest.raises(ValueError):
            TcpFlow(rtt_ms=10.0).run(100.0, duration_s=0.0)
