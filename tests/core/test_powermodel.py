"""Tests for repro.core.powermodel (the section 4.5 contribution)."""

import numpy as np
import pytest

from repro.core.powermodel import (
    FeatureSet,
    LinearPowerModel,
    PowerModel,
    PowerModelRegistry,
    train_from_walking_traces,
)
from repro.core.powermodel import _stack_traces


@pytest.fixture(scope="module")
def split_traces(walking_traces_mmwave):
    return walking_traces_mmwave[:3], walking_traces_mmwave[3:]


class TestPowerModel:
    def test_thss_accurate(self, split_traces):
        train, test = split_traces
        model = train_from_walking_traces("S20U/VZ/NSA-HB", train)
        throughput, rsrp, power = _stack_traces(test)
        assert model.mape(throughput, rsrp, power) < 6.0

    def test_thss_beats_ss(self, split_traces):
        # Fig. 15: SS-only models have much larger errors on mmWave.
        train, test = split_traces
        throughput, rsrp, power = _stack_traces(test)
        thss = train_from_walking_traces("x", train, features=FeatureSet.TH_SS)
        ss = train_from_walking_traces("x", train, features=FeatureSet.SS)
        assert thss.mape(throughput, rsrp, power) < ss.mape(throughput, rsrp, power)

    def test_thss_beats_th(self, split_traces):
        train, test = split_traces
        throughput, rsrp, power = _stack_traces(test)
        thss = train_from_walking_traces("x", train, features=FeatureSet.TH_SS)
        th = train_from_walking_traces("x", train, features=FeatureSet.TH)
        assert thss.mape(throughput, rsrp, power) <= th.mape(throughput, rsrp, power) + 0.3

    def test_dtr_beats_linear_multifactor(self, split_traces):
        # Section 4.5's negative result for linear multi-factor fitting.
        train, test = split_traces
        throughput, rsrp, power = _stack_traces(test)
        dtr = train_from_walking_traces("x", train, features=FeatureSet.TH_SS)
        linear = LinearPowerModel("x", features=FeatureSet.TH_SS)
        tr_t, tr_r, tr_p = _stack_traces(train)
        linear.fit(tr_t, tr_r, tr_p)
        assert dtr.mape(throughput, rsrp, power) < linear.mape(throughput, rsrp, power)

    def test_energy_estimation(self, split_traces):
        train, test = split_traces
        model = train_from_walking_traces("x", train)
        trace = test[0]
        energy = model.estimate_energy_j(
            trace.dl_mbps, trace.rsrp_dbm, dt_s=0.1
        )
        true_energy = float(np.sum(trace.power_mw) * 0.1 / 1000.0)
        assert energy == pytest.approx(true_energy, rel=0.05)

    def test_predictions_positive(self, split_traces):
        train, _ = split_traces
        model = train_from_walking_traces("x", train)
        predictions = model.predict_mw([0.0, 500.0, 1500.0], [-80.0, -95.0, -75.0])
        assert np.all(predictions > 0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PowerModel("x").predict_mw([1.0], [-80.0])

    def test_misaligned_raises(self, split_traces):
        train, _ = split_traces
        model = train_from_walking_traces("x", train)
        with pytest.raises(ValueError):
            model.predict_mw([1.0, 2.0], [-80.0])

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            PowerModel("x").fit([1.0] * 5, [-80.0] * 5, [100.0] * 5)

    def test_energy_invalid_dt(self, split_traces):
        train, _ = split_traces
        model = train_from_walking_traces("x", train)
        with pytest.raises(ValueError):
            model.estimate_energy_j([1.0], [-80.0], dt_s=0.0)


class TestRegistry:
    def test_add_get(self, split_traces):
        train, test = split_traces
        registry = PowerModelRegistry()
        registry.add(train_from_walking_traces("A", train))
        assert registry.get("A").setting == "A"
        assert registry.settings() == ["A"]

    def test_duplicate_rejected(self, split_traces):
        train, _ = split_traces
        registry = PowerModelRegistry()
        registry.add(train_from_walking_traces("A", train))
        with pytest.raises(ValueError):
            registry.add(train_from_walking_traces("A", train))

    def test_evaluate_all(self, split_traces):
        train, test = split_traces
        registry = PowerModelRegistry()
        registry.add(train_from_walking_traces("A", train))
        results = registry.evaluate_all({"A": list(test)})
        assert "A" in results
        assert results["A"] < 10.0

    def test_unknown_setting_raises(self):
        with pytest.raises(KeyError):
            PowerModelRegistry().get("missing")
