"""Tests for DirectionalPowerModel on mixed UL/DL workloads."""

import numpy as np
import pytest

from repro.core.powermodel import (
    DirectionalPowerModel,
    FeatureSet,
    train_from_walking_traces,
)
from repro.core.powermodel import _stack_traces
from repro.power.device import get_device
from repro.radio.carriers import get_network
from repro.traces.walking import WalkingTraceGenerator


@pytest.fixture(scope="module")
def mixed_traces():
    """Walking traces whose bursts are ~40% uplink."""
    generator = WalkingTraceGenerator(
        network=get_network("verizon-nsa-mmwave"),
        device=get_device("S20U"),
        uplink_fraction=0.4,
        seed=21,
    )
    return generator.generate_many(6)


class TestMixedWorkloads:
    def test_uplink_bursts_present(self, mixed_traces):
        total_ul = sum(float(t.ul_mbps.sum()) for t in mixed_traces)
        total_dl = sum(float(t.dl_mbps.sum()) for t in mixed_traces)
        assert total_ul > 0
        assert total_dl > 0

    def test_directions_never_simultaneous(self, mixed_traces):
        for trace in mixed_traces:
            assert not np.any((trace.dl_mbps > 0) & (trace.ul_mbps > 0))

    def test_directional_beats_summed_on_mixed_traffic(self, mixed_traces):
        """The headline: summed-throughput features confuse cheap DL
        Mbps with expensive UL Mbps; directional features do not."""
        train, test = mixed_traces[:4], mixed_traces[4:]
        directional = DirectionalPowerModel.from_walking_traces("x", train)
        summed = train_from_walking_traces("x", train, features=FeatureSet.TH_SS)

        throughput, rsrp, power = _stack_traces(test)
        dl = np.concatenate([t.dl_mbps for t in test])
        ul = np.concatenate([t.ul_mbps for t in test])
        directional_mape = directional.mape(dl, ul, rsrp, power)
        summed_mape = summed.mape(throughput, rsrp, power)
        assert directional_mape < summed_mape

    def test_directional_predictions_reflect_ul_premium(self, mixed_traces):
        model = DirectionalPowerModel.from_walking_traces("x", mixed_traces)
        dl_only = model.predict_mw([150.0], [0.0], [-80.0])[0]
        ul_only = model.predict_mw([0.0], [150.0], [-80.0])[0]
        assert ul_only > dl_only

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DirectionalPowerModel("x").predict_mw([1.0], [0.0], [-80.0])

    def test_misaligned_raises(self, mixed_traces):
        model = DirectionalPowerModel.from_walking_traces("x", mixed_traces)
        with pytest.raises(ValueError):
            model.predict_mw([1.0, 2.0], [0.0], [-80.0, -80.0])

    def test_empty_traces_raise(self):
        with pytest.raises(ValueError):
            DirectionalPowerModel.from_walking_traces("x", [])

    def test_uplink_fraction_validated(self):
        with pytest.raises(ValueError):
            WalkingTraceGenerator(
                network=get_network("verizon-lte"),
                device=get_device("S20U"),
                uplink_fraction=1.5,
            )
