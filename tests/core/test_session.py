"""Tests for repro.core.session (usage-session battery estimation)."""

import pytest

from repro.core.session import (
    Activity,
    UsageSession,
    batched_sync_timeline,
    periodic_sync_timeline,
)


@pytest.fixture
def web_timeline():
    return [
        Activity("web", demand_mbps=25.0, transfer_s=5.0, gap_s=30.0),
        Activity("web", demand_mbps=25.0, transfer_s=5.0, gap_s=30.0),
        Activity("video", demand_mbps=8.0, transfer_s=60.0, gap_s=120.0),
    ]


class TestActivity:
    def test_validation(self):
        with pytest.raises(ValueError):
            Activity("x", demand_mbps=-1.0, transfer_s=1.0)
        with pytest.raises(ValueError):
            Activity("x", demand_mbps=1.0, transfer_s=0.0)
        with pytest.raises(ValueError):
            Activity("x", demand_mbps=1.0, transfer_s=1.0, gap_s=-1.0)


class TestSession:
    def test_energy_components_positive(self, web_timeline):
        result = UsageSession("verizon-nsa-mmwave").simulate(web_timeline)
        assert result.transfer_energy_j > 0
        assert result.tail_energy_j > 0
        assert result.total_energy_j == pytest.approx(
            result.transfer_energy_j
            + result.tail_energy_j
            + result.switch_energy_j
            + result.idle_energy_j
        )

    def test_mmwave_costs_more_for_light_use(self, web_timeline):
        # Section 4's bottom line: light/bursty traffic is cheaper on 4G.
        mm = UsageSession("verizon-nsa-mmwave").simulate(web_timeline)
        lte = UsageSession("verizon-lte").simulate(web_timeline)
        assert lte.total_energy_j < mm.total_energy_j

    def test_bulk_transfer_cheaper_on_mmwave(self):
        bulk = [Activity("download", demand_mbps=3000.0, transfer_s=30.0, gap_s=5.0)]
        mm = UsageSession("verizon-nsa-mmwave").simulate(bulk)
        lte = UsageSession("verizon-lte").simulate(bulk)
        # LTE can't carry 3 Gbps: the transfer stretches ~17x and costs more.
        assert mm.total_energy_j < lte.total_energy_j
        assert mm.duration_s < lte.duration_s

    def test_periodic_vs_batched_sync(self):
        # The paper's section 4.2 advice, quantified: batching the same
        # payload avoids per-cycle tails and switches.
        session = UsageSession("verizon-nsa-mmwave")
        periodic = session.simulate(periodic_sync_timeline())
        batched = session.simulate(batched_sync_timeline())
        assert batched.total_energy_j < periodic.total_energy_j
        assert batched.switches < periodic.switches

    def test_periodic_sync_on_lte_cheaper_than_mmwave(self):
        timeline = periodic_sync_timeline()
        mm = UsageSession("verizon-nsa-mmwave").simulate(timeline)
        lte = UsageSession("verizon-lte").simulate(timeline)
        assert lte.total_energy_j < mm.total_energy_j

    def test_battery_drain_scale(self, web_timeline):
        result = UsageSession("verizon-nsa-mmwave").simulate(web_timeline)
        assert 0.0 < result.battery_drain_percent < 5.0

    def test_switch_burst_only_on_5g(self, web_timeline):
        mm = UsageSession("verizon-nsa-mmwave").simulate(web_timeline)
        lte = UsageSession("verizon-lte").simulate(web_timeline)
        assert mm.switch_energy_j > 0
        assert lte.switch_energy_j == 0

    def test_compare_covers_requested_radios(self, web_timeline):
        session = UsageSession("verizon-nsa-mmwave")
        results = session.compare(web_timeline, ("verizon-lte", "verizon-nsa-lowband"))
        assert set(results) == {
            "verizon-nsa-mmwave",
            "verizon-lte",
            "verizon-nsa-lowband",
        }

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError):
            UsageSession("verizon-lte").simulate([])

    def test_invalid_battery(self):
        with pytest.raises(ValueError):
            UsageSession("verizon-lte", battery_wh=0.0)

    def test_missing_curve_rejected(self):
        from repro.power.device import get_device

        with pytest.raises(KeyError):
            UsageSession("tmobile-sa-lowband", device=get_device("S10"))
