"""Tests for repro.core.energy."""

import numpy as np
import pytest

from repro.core.energy import (
    efficiency_curve,
    energy_efficiency_uj_per_bit,
    find_crossover,
    fit_power_slope,
    transfer_power_fraction,
)


class TestEfficiency:
    def test_ratio_definition(self):
        # 3 W at 1 Mbps lands at 3000 on the paper's Fig. 12 axis.
        assert energy_efficiency_uj_per_bit(3000.0, 1.0) == pytest.approx(3000.0)

    def test_decreases_with_throughput(self):
        # P = a + b*T -> efficiency strictly decreasing.
        t = np.array([1.0, 10.0, 100.0, 1000.0])
        p = 3000.0 + 1.81 * t
        _xs, eff = efficiency_curve(t, p)
        assert np.all(np.diff(eff) < 0)

    def test_loglog_linearity(self):
        # Paper's derivation: log E ~ c3 log T + c4 at low throughput.
        t = np.logspace(0, 1.5, 20)
        p = 3000.0 + 1.81 * t
        _xs, eff = efficiency_curve(t, p)
        slope = np.polyfit(np.log(t), np.log(eff), 1)[0]
        assert slope == pytest.approx(-1.0, abs=0.05)

    def test_zero_throughput_excluded(self):
        xs, eff = efficiency_curve([0.0, 10.0], [100.0, 200.0])
        assert xs.shape[0] == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            energy_efficiency_uj_per_bit(100.0, 0.0)
        with pytest.raises(ValueError):
            energy_efficiency_uj_per_bit(-1.0, 1.0)


class TestSlopeFitting:
    def test_recovers_table8_slope(self):
        rng = np.random.default_rng(0)
        t = np.linspace(10, 1800, 30)
        p = 3182.0 + 1.81 * t + rng.normal(0, 20, size=30)
        slope, intercept = fit_power_slope(t, p)
        assert slope == pytest.approx(1.81, rel=0.05)
        assert intercept == pytest.approx(3182.0, rel=0.05)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_slope([1.0], [2.0])


class TestCrossover:
    def test_finds_187mbps(self):
        t = np.linspace(10, 1000, 25)
        mmwave = 3182.0 + 1.81 * t
        lte = 800.0 + 14.55 * t
        crossing = find_crossover(t, mmwave, lte)
        assert crossing == pytest.approx(187.0, rel=0.02)

    def test_parallel_lines_none(self):
        t = np.linspace(1, 10, 5)
        assert find_crossover(t, 2.0 * t + 1.0, 2.0 * t + 5.0) is None

    def test_negative_crossing_none(self):
        t = np.linspace(1, 10, 5)
        # Lines crossing at negative throughput.
        assert find_crossover(t, 1.0 + 2.0 * t, 2.0 + 3.0 * t) is None


class TestTransferFraction:
    def test_paper_range(self):
        # mmWave downlink: data transfer is 48-76% of total power.
        total = np.array([6000.0])
        fraction = transfer_power_fraction(total, idle_power_mw=1800.0)
        assert 0.48 <= fraction[0] <= 0.76

    def test_clipped_to_unit(self):
        fraction = transfer_power_fraction(np.array([100.0]), idle_power_mw=200.0)
        assert fraction[0] == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            transfer_power_fraction(np.array([0.0]), 10.0)
        with pytest.raises(ValueError):
            transfer_power_fraction(np.array([10.0]), -1.0)
