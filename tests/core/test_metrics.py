"""Tests for repro.core.metrics."""

import numpy as np
import pytest

from repro.core.metrics import cdf_points, percentile, summarize


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_p95_is_peak_metric(self):
        values = list(range(100))
        assert percentile(values, 95) == pytest.approx(94.05)

    def test_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_parity_with_numpy_and_shared_helper(self):
        # One shared implementation (repro.obs.metrics.percentile)
        # backs both public helpers; all three must agree.
        from repro.obs.metrics import percentile as obs_percentile

        rng = np.random.default_rng(7)
        for size in (1, 2, 5, 100, 997):
            values = rng.normal(50.0, 20.0, size)
            for q in (0.0, 1.0, 25.0, 50.0, 75.0, 95.0, 99.9, 100.0):
                expected = float(np.percentile(values, q))
                assert percentile(values, q) == pytest.approx(expected)
                assert obs_percentile(values.tolist(), q) == pytest.approx(
                    expected
                )

    def test_accepts_numpy_arrays(self):
        assert percentile(np.array([1.0, 2.0, 3.0]), 50) == 2.0


class TestCdf:
    def test_shape(self):
        xs, ys = cdf_points([3.0, 1.0, 2.0])
        assert np.array_equal(xs, [1.0, 2.0, 3.0])
        assert np.allclose(ys, [1 / 3, 2 / 3, 1.0])

    def test_monotone(self):
        rng = np.random.default_rng(0)
        xs, ys = cdf_points(rng.normal(size=100))
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ys) > 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["median"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["count"] == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
