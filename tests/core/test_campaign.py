"""Tests for repro.core.campaign (Table 1 statistics)."""

import pytest

from repro.core.campaign import Campaign
from repro.net.servers import carrier_server_pool


@pytest.fixture(scope="module")
def campaign():
    c = Campaign(seed=1)
    c.run_speedtests(
        network_keys=["verizon-nsa-mmwave"],
        device_names=["S20U"],
        servers=carrier_server_pool("Verizon")[:2],
        repetitions=2,
    )
    c.run_walking(
        network_keys=["tmobile-sa-lowband"], traces_per_setting=1
    )
    c.run_probes(network_keys=["tmobile-sa-lowband"])
    c.record_web_loads(100)
    return c


class TestCampaign:
    def test_speedtest_counts(self, campaign):
        # 1 network x 1 device x 2 servers x 2 modes x 2 reps = 8.
        assert len(campaign.speedtest_results) == 8

    def test_stats_rows_shape(self, campaign):
        rows = campaign.stats().as_rows()
        labels = [r[0] for r in rows]
        assert "5G Network Performance Tests" in labels
        assert "Total kilometers walked" in labels
        assert len(rows) == 7

    def test_km_walked(self, campaign):
        # One 1.6 km walking trace.
        assert campaign.stats().km_walked == pytest.approx(1.6, abs=0.1)

    def test_unique_servers(self, campaign):
        assert campaign.stats().unique_servers == 2

    def test_web_loads_counted(self, campaign):
        assert campaign.stats().web_page_loads == 100

    def test_probe_results_stored(self, campaign):
        assert "tmobile-sa-lowband" in campaign.probe_results
        inferred = campaign.probe_results["tmobile-sa-lowband"].inferred
        assert inferred["has_intermediate"] == 1.0

    def test_power_minutes_positive(self, campaign):
        assert campaign.stats().power_minutes > 10.0

    def test_negative_web_loads_rejected(self):
        with pytest.raises(ValueError):
            Campaign().record_web_loads(-1)

    def test_inventory_accessors(self, campaign):
        assert len(campaign.networks()) == 6
        assert len(campaign.devices()) == 3
