"""Tests for repro.core.advisor."""

import pytest

from repro.core.advisor import PROFILES, AppProfile, RadioAdvisor


@pytest.fixture(scope="module")
def advisor():
    return RadioAdvisor()


class TestAppProfile:
    def test_canonical_profiles_exist(self):
        assert {"web-browsing", "uhd-video", "bulk-download", "messaging"} <= set(PROFILES)

    def test_validation(self):
        with pytest.raises(ValueError):
            AppProfile("x", demand_mbps=-1.0)
        with pytest.raises(ValueError):
            AppProfile("x", demand_mbps=1.0, active_fraction=0.0)
        with pytest.raises(ValueError):
            AppProfile("x", demand_mbps=1.0, session_s=0.0)


class TestEstimates:
    def test_bulk_download_only_mmwave_completes(self, advisor):
        profile = PROFILES["bulk-download"]
        mm = advisor.estimate(profile, "verizon-nsa-mmwave")
        lte = advisor.estimate(profile, "verizon-lte")
        assert mm.completion_factor > 3 * lte.completion_factor

    def test_messaging_cheaper_on_lte(self, advisor):
        profile = PROFILES["messaging"]
        mm = advisor.estimate(profile, "verizon-nsa-mmwave")
        lte = advisor.estimate(profile, "verizon-lte")
        assert lte.energy_j < mm.energy_j

    def test_energy_scales_with_session(self, advisor):
        short = advisor.estimate(
            AppProfile("x", demand_mbps=10.0, session_s=10.0), "verizon-lte"
        )
        long = advisor.estimate(
            AppProfile("x", demand_mbps=10.0, session_s=100.0), "verizon-lte"
        )
        assert long.energy_j == pytest.approx(10.0 * short.energy_j, rel=0.01)

    def test_unmet_demand_stretches_active_time(self, advisor):
        light = advisor.estimate(
            AppProfile("x", demand_mbps=10.0, active_fraction=0.3), "verizon-lte"
        )
        heavy = advisor.estimate(
            AppProfile("x", demand_mbps=2000.0, active_fraction=0.3), "verizon-lte"
        )
        assert heavy.mean_power_mw > light.mean_power_mw


class TestRecommendations:
    def test_bulk_download_prefers_5g(self, advisor):
        result = advisor.recommend(PROFILES["bulk-download"], alpha=0.3)
        assert result["recommended"] == "verizon-nsa-mmwave"

    def test_messaging_prefers_cheap_radio(self, advisor):
        result = advisor.recommend(PROFILES["messaging"], alpha=0.8)
        assert result["recommended"] != "verizon-nsa-mmwave"

    def test_alpha_flips_web_browsing(self, advisor):
        # The Table 6 pattern: performance weight sends pages to 5G,
        # energy weight pulls them to 4G.
        perf = advisor.recommend(PROFILES["web-browsing"], alpha=0.0)
        energy = advisor.recommend(PROFILES["web-browsing"], alpha=1.0)
        assert perf["recommended"] != energy["recommended"] or (
            perf["recommended"] != "verizon-nsa-mmwave"
        )

    def test_estimates_cover_candidates(self, advisor):
        result = advisor.recommend(PROFILES["hd-video"])
        assert set(result["estimates"]) == set(advisor.candidates)

    def test_invalid_alpha(self, advisor):
        with pytest.raises(ValueError):
            advisor.recommend(PROFILES["hd-video"], alpha=1.5)

    def test_missing_curve_rejected_early(self):
        from repro.power.device import get_device

        with pytest.raises(KeyError):
            RadioAdvisor(device=get_device("S10"), candidates=("tmobile-sa-lowband",))
