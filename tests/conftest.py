"""Shared fixtures: small corpora and manifests reused across tests."""

from __future__ import annotations

import pytest

from repro.power.device import get_device
from repro.radio.carriers import get_network
from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.traces.walking import WalkingTraceGenerator
from repro.video.encoding import VideoManifest, build_ladder


@pytest.fixture(scope="session")
def small_corpus():
    """A small (5G, 4G) Lumos-like corpus shared by video tests."""
    return generate_lumos_corpus(
        LumosConfig(n_5g=6, n_4g=6, duration_s=150, seed=123)
    )


@pytest.fixture(scope="session")
def manifest_5g():
    return VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=30)


@pytest.fixture(scope="session")
def manifest_4g():
    return VideoManifest(ladder=build_ladder(20.0), chunk_s=4.0, n_chunks=30)


@pytest.fixture(scope="session")
def walking_traces_mmwave():
    """Four mmWave walking traces on the S20U (shared, read-only)."""
    generator = WalkingTraceGenerator(
        network=get_network("verizon-nsa-mmwave"),
        device=get_device("S20U"),
        seed=99,
    )
    return generator.generate_many(4)
