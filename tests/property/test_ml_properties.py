"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.linear import LinearRegression
from repro.ml.metrics import mean_absolute_error, root_mean_squared_error
from repro.ml.model_selection import train_test_split
from repro.ml.tree import DecisionTreeRegressor

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=30, deadline=None)
@given(
    y=arrays(np.float64, st.integers(5, 40), elements=finite_floats),
)
def test_rmse_geq_mae_always(y):
    rng = np.random.default_rng(0)
    pred = y + rng.normal(size=y.shape[0])
    assert root_mean_squared_error(y, pred) >= mean_absolute_error(y, pred) - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    X=arrays(
        np.float64,
        st.tuples(st.integers(10, 60), st.integers(1, 3)),
        elements=st.floats(-100, 100, allow_nan=False),
    ),
)
def test_tree_predictions_within_target_range(X):
    """A regression tree predicts leaf means, so predictions stay inside
    [min(y), max(y)]."""
    rng = np.random.default_rng(1)
    y = rng.uniform(-50.0, 50.0, size=X.shape[0])
    tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
    predictions = tree.predict(X)
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 200),
    test_size=st.floats(0.05, 0.95),
    seed=st.integers(0, 2**31 - 1),
)
def test_split_partition_property(n, test_size, seed):
    """Train/test always partition the index set exactly."""
    X = np.arange(n)
    train, test = train_test_split(X, test_size=test_size, random_state=seed)
    assert len(train) + len(test) == n
    assert set(train.tolist()) | set(test.tolist()) == set(range(n))
    assert len(test) >= 1 and len(train) >= 1


@settings(max_examples=25, deadline=None)
@given(
    slope=st.floats(-50, 50, allow_nan=False),
    intercept=st.floats(-1000, 1000, allow_nan=False),
)
def test_linear_regression_recovers_exact_lines(slope, intercept):
    X = np.linspace(0.0, 10.0, 20).reshape(-1, 1)
    y = slope * X[:, 0] + intercept
    model = LinearRegression().fit(X, y)
    assert np.isclose(model.slope_, slope, atol=1e-6)
    assert np.isclose(model.intercept_, intercept, atol=1e-5)
