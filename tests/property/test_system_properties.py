"""Property-based tests on system invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.power.device import get_device
from repro.radio.bands import NR_N71, NR_N261
from repro.radio.carriers import get_network
from repro.radio.link import LinkBudget, MODEMS
from repro.radio.propagation import PathLossModel
from repro.rrc.machine import RRCStateMachine
from repro.rrc.parameters import RRC_PARAMETERS
from repro.transport.cubic import CubicState
from repro.video.encoding import build_ladder
from repro.web.har import HarEntry, HarRecord


@settings(max_examples=40, deadline=None)
@given(
    d1=st.floats(1.0, 5000.0),
    d2=st.floats(1.0, 5000.0),
)
def test_path_loss_monotone_in_distance(d1, d2):
    model = PathLossModel(NR_N261)
    lo, hi = sorted((d1, d2))
    assert model.path_loss_db(lo) <= model.path_loss_db(hi) + 1e-9


@settings(max_examples=40, deadline=None)
@given(rsrp=st.floats(-140.0, -60.0))
def test_link_capacity_bounds(rsrp):
    """Capacity is non-negative and never exceeds modem/network caps."""
    link = LinkBudget(get_network("verizon-nsa-mmwave"), MODEMS["X55"])
    capacity = link.capacity_mbps(rsrp)
    assert 0.0 <= capacity <= 3400.0


@settings(max_examples=40, deadline=None)
@given(
    r1=st.floats(-140.0, -60.0),
    r2=st.floats(-140.0, -60.0),
)
def test_link_capacity_monotone_in_rsrp(r1, r2):
    link = LinkBudget(get_network("tmobile-nsa-lowband"), MODEMS["X55"])
    lo, hi = sorted((r1, r2))
    assert link.capacity_mbps(lo) <= link.capacity_mbps(hi) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    dl=st.floats(0.0, 3000.0),
    ul=st.floats(0.0, 200.0),
    rsrp=st.floats(-130.0, -60.0),
)
def test_power_curve_positive_and_monotone(dl, ul, rsrp):
    curve = get_device("S20U").curve("verizon-nsa-mmwave")
    power = curve.power_mw(dl_mbps=dl, ul_mbps=ul, rsrp_dbm=rsrp)
    assert power > 0.0
    assert curve.power_mw(dl_mbps=dl + 10.0, ul_mbps=ul, rsrp_dbm=rsrp) >= power


@settings(max_examples=20, deadline=None)
@given(
    key=st.sampled_from(sorted(RRC_PARAMETERS)),
    gap_s=st.floats(0.1, 60.0),
    seed=st.integers(0, 1000),
)
def test_rrc_delay_bounded(key, gap_s, seed):
    """RRC delay never exceeds paging wait + promotion, and a second
    back-to-back packet is always free."""
    params = RRC_PARAMETERS[key]
    machine = RRCStateMachine(params, seed=seed)
    machine.deliver_packet(0.0)
    delay = machine.deliver_packet(machine.last_activity_ms + gap_s * 1000.0)
    upper = params.idle_drx_ms + params.promotion_delay_ms
    assert 0.0 <= delay <= upper + 1e-6
    follow_up = machine.deliver_packet(machine.last_activity_ms + 1.0)
    assert follow_up == 0.0


@settings(max_examples=30, deadline=None)
@given(
    cwnd=st.floats(2.0, 1e5),
    losses=st.integers(1, 10),
)
def test_cubic_window_never_below_floor(cwnd, losses):
    state = CubicState(cwnd_segments=cwnd)
    for _ in range(losses):
        state.on_loss()
        state.on_ack_interval(0.05)
    assert state.cwnd_segments >= 2.0


@settings(max_examples=30, deadline=None)
@given(top=st.floats(1.0, 1000.0), n=st.integers(2, 10))
def test_ladder_invariants(top, n):
    ladder = build_ladder(top, n_tracks=n)
    assert len(ladder) == n
    assert ladder.top_mbps <= top * (1 + 1e-9)
    bitrates = ladder.bitrates_mbps
    assert all(a < b for a, b in zip(bitrates, bitrates[1:]))
    # index_for_rate is the inverse of the ladder lookup.
    for i, bitrate in enumerate(bitrates):
        assert ladder.index_for_rate(bitrate * 1.0001) == i


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(100, 10_000_000), min_size=1, max_size=20),
)
def test_har_timeline_conserves_bytes(sizes):
    record = HarRecord(page_url="p", radio="5G")
    t = 0.0
    for i, size in enumerate(sizes):
        record.add(HarEntry(url=str(i), start_ms=t, duration_ms=130.0, size_bytes=size))
        t += 90.0
    timeline = record.throughput_timeline_mbps(dt_s=0.5)
    total_bits = sum(timeline) * 0.5 * 1e6
    assert np.isclose(total_bits, sum(sizes) * 8.0, rtol=1e-6)
