"""Property-based tests on playback invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.video.abr import make_abr
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.live import LiveManifest, LivePlayer, make_live_controller
from repro.video.player import DOWNLOAD_TICK_S, Player
from repro.video.qoe import normalized_bitrate, stall_percent

ALL_ABRS = (
    "bba",
    "bola",
    "rb",
    "festive",
    "fastmpc",
    "robustmpc",
    "pensieve",
    "energyaware",
)

# One small walking corpus shared across examples: a 5G mmWave trace
# (blockage craters) and a 4G one, plus synthetic constant/noisy links.
_TRACES_5G, _TRACES_4G = generate_lumos_corpus(
    LumosConfig(n_5g=1, n_4g=1, duration_s=200, seed=11)
)


def _bandwidth_fn(trace_type, seed):
    rng = np.random.default_rng(seed)
    if trace_type == "constant":
        level = float(rng.uniform(20.0, 800.0))
        return lambda t: level
    if trace_type == "noisy":
        noise = rng.uniform(10.0, 400.0, size=300)
        return lambda t: float(noise[int(t) % 300])
    if trace_type == "lumos_5g":
        return _TRACES_5G[0].throughput_at
    return _TRACES_4G[0].throughput_at


@settings(max_examples=12, deadline=None)
@given(
    abr_name=st.sampled_from(["bba", "rb", "bola", "festive", "robustmpc"]),
    bandwidth=st.floats(5.0, 500.0),
    seed=st.integers(0, 100),
)
def test_playback_invariants(abr_name, bandwidth, seed):
    """For any ABR and constant bandwidth: all chunks play, stalls are
    non-negative, bitrates come from the ladder, wall clock >= playback
    progress."""
    rng = np.random.default_rng(seed)
    manifest = VideoManifest(
        ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=12, seed=seed
    )
    player = Player(manifest)
    noise = rng.uniform(0.7, 1.3, size=200)

    def bw(t):
        return bandwidth * noise[int(t) % 200]

    result = player.play(make_abr(abr_name), bw)
    assert len(result.chunk_tracks) == manifest.n_chunks
    assert result.stall_s >= 0.0
    assert all(b in manifest.ladder.bitrates_mbps for b in result.chunk_bitrates_mbps)
    assert 0.0 <= normalized_bitrate(result.chunk_bitrates_mbps, 160.0) <= 1.0
    assert 0.0 <= stall_percent(result.stall_s, result.playback_s) < 100.0
    assert result.rebuffer_events >= 0


@settings(max_examples=24, deadline=None)
@given(
    abr_name=st.sampled_from(ALL_ABRS),
    trace_type=st.sampled_from(["constant", "noisy", "lumos_5g", "lumos_4g"]),
    seed=st.integers(0, 50),
)
def test_timeline_covers_wall_clock(abr_name, trace_type, seed):
    """The pinned timeline contract (docs/video.md), for every ABR and
    every trace type: ``timeline.size * DOWNLOAD_TICK_S`` equals
    ``wall_clock_s`` to within one tick, the true tick durations sum to
    the wall clock exactly, and megabits are conserved."""
    manifest = VideoManifest(
        ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=10, seed=seed
    )
    result = Player(manifest).play(
        make_abr(abr_name), _bandwidth_fn(trace_type, seed)
    )
    n = result.download_rate_timeline.size
    assert abs(n * DOWNLOAD_TICK_S - result.wall_clock_s) <= DOWNLOAD_TICK_S
    durations = result.tick_durations_s
    assert abs(durations.sum() - result.wall_clock_s) <= 1e-6
    downloaded = float((result.download_rate_timeline * durations).sum())
    expected = sum(
        manifest.chunk_size_mbit(i, t) for i, t in enumerate(result.chunk_tracks)
    )
    assert abs(downloaded - expected) <= 1e-6 * max(expected, 1.0)


@settings(max_examples=12, deadline=None)
@given(
    controller=st.sampled_from(["lolp", "l2a", "stallion"]),
    trace_type=st.sampled_from(["constant", "noisy", "lumos_5g"]),
    seed=st.integers(0, 50),
)
def test_live_timeline_covers_wall_clock(controller, trace_type, seed):
    """The same contract holds for LL-DASH live sessions."""
    manifest = LiveManifest(
        ladder=build_ladder(80.0), segment_s=1.0, chunks_per_segment=5,
        n_segments=40, seed=seed,
    )
    result = LivePlayer(manifest).play(
        make_live_controller(controller), _bandwidth_fn(trace_type, seed)
    )
    n = result.download_rate_timeline.size
    assert abs(n * DOWNLOAD_TICK_S - result.wall_clock_s) <= DOWNLOAD_TICK_S
    assert abs(result.tick_durations_s.sum() - result.wall_clock_s) <= 1e-6
    assert result.wall_clock_s >= manifest.duration_s - 1e-6


@settings(max_examples=10, deadline=None)
@given(bandwidth=st.floats(30.0, 2000.0))
def test_more_bandwidth_never_worse_for_bba(bandwidth):
    """BBA's stall time is monotone non-increasing in bandwidth."""
    manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=12, seed=0)
    player = Player(manifest)
    low = player.play(make_abr("bba"), lambda t: bandwidth)
    high = player.play(make_abr("bba"), lambda t: bandwidth * 2.0)
    assert high.stall_s <= low.stall_s + 1e-6
