"""Property-based tests on playback invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.video.abr import make_abr
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import Player
from repro.video.qoe import normalized_bitrate, stall_percent


@settings(max_examples=12, deadline=None)
@given(
    abr_name=st.sampled_from(["bba", "rb", "bola", "festive", "robustmpc"]),
    bandwidth=st.floats(5.0, 500.0),
    seed=st.integers(0, 100),
)
def test_playback_invariants(abr_name, bandwidth, seed):
    """For any ABR and constant bandwidth: all chunks play, stalls are
    non-negative, bitrates come from the ladder, wall clock >= playback
    progress."""
    rng = np.random.default_rng(seed)
    manifest = VideoManifest(
        ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=12, seed=seed
    )
    player = Player(manifest)
    noise = rng.uniform(0.7, 1.3, size=200)

    def bw(t):
        return bandwidth * noise[int(t) % 200]

    result = player.play(make_abr(abr_name), bw)
    assert len(result.chunk_tracks) == manifest.n_chunks
    assert result.stall_s >= 0.0
    assert all(b in manifest.ladder.bitrates_mbps for b in result.chunk_bitrates_mbps)
    assert 0.0 <= normalized_bitrate(result.chunk_bitrates_mbps, 160.0) <= 1.0
    assert 0.0 <= stall_percent(result.stall_s, result.playback_s) < 100.0
    assert result.rebuffer_events >= 0


@settings(max_examples=10, deadline=None)
@given(bandwidth=st.floats(30.0, 2000.0))
def test_more_bandwidth_never_worse_for_bba(bandwidth):
    """BBA's stall time is monotone non-increasing in bandwidth."""
    manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=12, seed=0)
    player = Player(manifest)
    low = player.play(make_abr("bba"), lambda t: bandwidth)
    high = player.play(make_abr("bba"), lambda t: bandwidth * 2.0)
    assert high.stall_s <= low.stall_s + 1e-6
