"""Scalar <-> vectorized kernel equivalence (the PR's determinism contract).

Each vectorized hot path is checked against the pre-PR scalar
implementation preserved in :mod:`repro.kernels.reference`:

* bit-identical where the RNG draw order is preserved (blockage chain,
  transport flows, software monitor, power curve, serving distances,
  route sampling, trace lookup);
* within the documented scan/ufunc tolerance where the reformulation
  changes floating-point association (RSRP simulate, capacity series).

See ``docs/performance.md`` for the per-kernel contract.
"""

import numpy as np
import pytest

from repro.kernels import reference as ref
from repro.power.device import S20U
from repro.power.software import SoftwareMonitor
from repro.radio.bands import LTE_1900, NR_N71, NR_N261
from repro.radio.carriers import get_network
from repro.radio.link import LinkBudget, MODEMS, spectral_efficiency
from repro.radio.propagation import BlockageModel, PathLossModel
from repro.radio.signal import RsrpProcess
from repro.traces.schema import ThroughputTrace
from repro.transport.flow import TcpFlow, UdpFlow
from repro.transport.tuning import DEFAULT_KERNEL, TUNED_KERNEL


class TestPathLoss:
    @pytest.mark.parametrize("band", [NR_N261, NR_N71, LTE_1900])
    @pytest.mark.parametrize("los", [True, False])
    def test_series_bit_identical(self, band, los):
        model = PathLossModel(band)
        distances = np.linspace(0.5, 5000.0, 500)
        series = model.path_loss_db_series(distances, los=los)
        scalar = np.array(
            [model.path_loss_db(float(d), los=los) for d in distances]
        )
        np.testing.assert_array_equal(series, scalar)


class TestBlockage:
    @pytest.mark.parametrize("seed", range(5))
    def test_simulate_bit_identical_to_step_loop(self, seed):
        model = BlockageModel()
        vec = model.simulate(
            600.0, speed_mps=1.4, dt_s=0.1,
            rng=np.random.default_rng(seed), start_blocked=bool(seed % 2),
        )
        loop = ref.blockage_series_step_loop(
            model, 600.0, 1.4, dt_s=0.1,
            rng=np.random.default_rng(seed), start_blocked=bool(seed % 2),
        )
        np.testing.assert_array_equal(vec, loop)


class TestRsrp:
    @pytest.mark.parametrize("band", [NR_N261, NR_N71])
    @pytest.mark.parametrize("seed", range(3))
    def test_simulate_matches_batched_order_reference(self, band, seed):
        distances = np.clip(
            60.0 + np.cumsum(np.random.default_rng(99).normal(0, 1.0, 3000)),
            10.0,
            400.0,
        )
        vec = RsrpProcess(band, seed=seed).simulate(distances, speed_mps=1.4)
        scalar = ref.rsrp_series_scalar(
            RsrpProcess(band, seed=seed), distances, speed_mps=1.4
        )
        # The AR(1)/ramp scans change float association; everything
        # else (draws, path loss, clipping) is identical.
        np.testing.assert_allclose(vec, scalar, rtol=0, atol=1e-9)

    def test_step_draw_order_unchanged(self):
        # The streaming API must keep the legacy interleaved draw order
        # (golden-pinned); its per-step outputs are the step-loop
        # reference by construction.
        process = RsrpProcess(NR_N261, seed=5)
        loop = ref.rsrp_series_step_loop(
            RsrpProcess(NR_N261, seed=5), np.full(50, 100.0), speed_mps=1.0
        )
        mine = np.array([process.step(100.0, 1.0) for _ in range(50)])
        np.testing.assert_array_equal(mine, loop)


class TestLinkBudget:
    @pytest.mark.parametrize(
        "network_key", ["verizon-nsa-mmwave", "tmobile-nsa-lowband", "verizon-lte"]
    )
    @pytest.mark.parametrize("downlink", [True, False])
    def test_capacity_series_matches_scalar_reference(self, network_key, downlink):
        link = LinkBudget(get_network(network_key), MODEMS["X55"])
        rsrp = np.linspace(-140.0, -60.0, 400)
        vec = link.capacity_series_mbps(rsrp, downlink=downlink)
        scalar = ref.capacity_series_scalar(link, rsrp, downlink=downlink)
        # SIMD pow rounding can differ from Python ** by <= 1 ulp.
        np.testing.assert_allclose(vec, scalar, rtol=1e-12, atol=0)

    def test_capacity_scalar_is_series_special_case(self):
        link = LinkBudget(get_network("verizon-nsa-mmwave"), MODEMS["X55"])
        rsrp = np.linspace(-140.0, -60.0, 101)
        series = link.capacity_series_mbps(rsrp)
        scalars = np.array([link.capacity_mbps(float(r)) for r in rsrp])
        np.testing.assert_array_equal(series, scalars)

    def test_spectral_efficiency_scalar_matches_reference(self):
        for sinr in np.linspace(-20.0, 50.0, 200):
            assert spectral_efficiency(float(sinr)) == pytest.approx(
                ref.spectral_efficiency_scalar(float(sinr)), rel=1e-14
            )


class TestFlows:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("kernel", [DEFAULT_KERNEL, TUNED_KERNEL])
    def test_tcp_bit_identical(self, seed, kernel):
        def cap(t):
            return 800.0 + 600.0 * np.sin(t)

        for capacity in (2000.0, cap):
            vec = TcpFlow(
                rtt_ms=28.0, kernel=kernel, loss_rate=1e-4, seed=seed
            ).run(capacity, duration_s=12.0)
            scalar = ref.tcp_run_scalar(
                TcpFlow(rtt_ms=28.0, kernel=kernel, loss_rate=1e-4, seed=seed),
                capacity,
                duration_s=12.0,
            )
            np.testing.assert_array_equal(
                vec.rate_series_mbps, scalar.rate_series_mbps
            )
            assert vec.loss_events == scalar.loss_events
            assert vec.throughput_mbps == scalar.throughput_mbps

    def test_udp_bit_identical(self):
        for capacity in (2000.0, lambda t: 100.0 if t < 2.5 else 300.0):
            vec = UdpFlow().run(capacity, duration_s=5.0)
            scalar = ref.udp_run_scalar(UdpFlow(), capacity, duration_s=5.0)
            np.testing.assert_array_equal(
                vec.rate_series_mbps, scalar.rate_series_mbps
            )
            assert vec.throughput_mbps == scalar.throughput_mbps


class TestSoftwareMonitor:
    @pytest.mark.parametrize("rate_hz", [1.0, 10.0])
    def test_measure_bit_identical(self, rate_hz):
        def power_fn(t):
            return 2000.0 + 500.0 * np.sin(t / 3.0)

        vec = SoftwareMonitor(rate_hz=rate_hz, seed=11).measure(
            power_fn, 30.0, start_s=1.5
        )
        scalar = ref.software_measure_scalar(
            SoftwareMonitor(rate_hz=rate_hz, seed=11), power_fn, 30.0, start_s=1.5
        )
        assert len(vec) == len(scalar)
        for a, b in zip(vec, scalar):
            assert (a.t_s, a.power_mw, a.current_ma) == (
                b.t_s,
                b.power_mw,
                b.current_ma,
            )


class TestPowerCurve:
    def test_series_bit_identical(self):
        rng = np.random.default_rng(7)
        curve = S20U.curve("verizon-nsa-mmwave")
        dl = np.abs(rng.normal(500.0, 400.0, 300))
        ul = np.where(rng.random(300) < 0.3, np.abs(rng.normal(50.0, 40.0, 300)), 0.0)
        rsrp = rng.normal(-85.0, 10.0, 300)
        vec = curve.power_mw_series(dl, ul, rsrp)
        scalar = np.array(
            [curve.power_mw(float(d), float(u), float(r)) for d, u, r in zip(dl, ul, rsrp)]
        )
        np.testing.assert_array_equal(vec, scalar)


class TestTraceLookup:
    def test_throughput_at_series_bit_identical(self):
        rng = np.random.default_rng(13)
        trace = ThroughputTrace(
            name="t", tech="5G", throughput_mbps=np.abs(rng.normal(500.0, 200.0, 120))
        )
        times = rng.uniform(0.0, 900.0, 500)
        vec = trace.throughput_at_series(times)
        scalar = np.array([trace.throughput_at(float(t)) for t in times])
        np.testing.assert_array_equal(vec, scalar)
