"""Property tests: dispatch mode must never change sweep results.

The engine's core contract — results depend only on the spec, never on
how jobs were scheduled — extended to the batch-lease executor: for
any mix of runners, worker count, and lease size, batched dispatch is
bit-identical to per-job dispatch and to the serial reference, and
injected crash faults fail the same jobs without contaminating
survivors. Executions spawn real worker processes, so example counts
are kept deliberately small.
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import JobSpec, execute
from repro.engine.shm import active_segments
from repro.experiments.export import to_jsonable
from repro.faults import FaultPlan

_SLOW = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _jobs(n, big_every=0):
    jobs = []
    for i in range(n):
        if big_every and i % big_every == 0:
            jobs.append(
                JobSpec(
                    runner="test.array",
                    kwargs={"n": 20_000},
                    index=i,
                    seed=50 + i,
                    label=f"arr{i}",
                )
            )
        else:
            jobs.append(
                JobSpec(
                    runner="test.echo",
                    kwargs={"v": i},
                    index=i,
                    seed=50 + i,
                    label=f"echo{i}",
                )
            )
    return jobs


def _canon(result):
    return json.dumps(to_jsonable(result.values()), sort_keys=True)


@settings(**_SLOW)
@given(
    n_jobs=st.integers(1, 10),
    workers=st.sampled_from([2, 3]),
    lease_size=st.sampled_from([1, 2, 5, 16]),
    big_every=st.sampled_from([0, 3]),
)
def test_batched_equals_per_job_equals_serial(
    n_jobs, workers, lease_size, big_every
):
    jobs = _jobs(n_jobs, big_every)
    serial = execute(jobs, workers=1)
    per_job = execute(jobs, workers=workers, dispatch="per-job")
    batched = execute(
        jobs, workers=workers, dispatch="batch", lease_size=lease_size
    )
    assert _canon(serial) == _canon(per_job) == _canon(batched)
    assert active_segments() == ()


@settings(**_SLOW)
@given(
    crash_at=st.integers(0, 7),
    lease_size=st.sampled_from([1, 3, 8]),
)
def test_injected_crash_fails_same_job_in_both_modes(crash_at, lease_size):
    jobs = _jobs(8)
    plan = FaultPlan.single("crash", at=(crash_at,))
    per_job = execute(
        jobs, workers=2, dispatch="per-job", retries=0, faults=plan
    )
    batched = execute(
        jobs,
        workers=2,
        dispatch="batch",
        lease_size=lease_size,
        retries=0,
        faults=plan,
    )
    assert [o.status for o in per_job.outcomes] == [
        o.status for o in batched.outcomes
    ]
    assert (
        batched.outcomes[crash_at].failure.error_type == "WorkerCrashError"
    )
    # Survivors are bit-identical to the serial reference.
    serial = execute(jobs, workers=1)
    for i, outcome in enumerate(batched.outcomes):
        if i != crash_at:
            assert outcome.value == serial.outcomes[i].value
    assert active_segments() == ()


@settings(**_SLOW)
@given(
    hang_at=st.integers(0, 5),
    lease_size=st.sampled_from([2, 6]),
)
def test_injected_hang_is_reclaimed_under_batch(hang_at, lease_size):
    jobs = _jobs(6)
    plan = FaultPlan.single("hang", at=(hang_at,), hang_s=30.0)
    batched = execute(
        jobs,
        workers=2,
        dispatch="batch",
        lease_size=lease_size,
        retries=0,
        timeout_s=0.5,
        faults=plan,
    )
    statuses = [o.status for o in batched.outcomes]
    assert statuses[hang_at] == "failed"
    assert statuses.count("ok") == 5
    assert active_segments() == ()
