"""Property-based tests for the advisor and usage-session estimators."""

from hypothesis import given, settings, strategies as st

from repro.core.advisor import AppProfile, RadioAdvisor
from repro.core.session import Activity, UsageSession


@settings(max_examples=25, deadline=None)
@given(
    demand=st.floats(0.1, 4000.0),
    active=st.floats(0.05, 1.0),
    session_s=st.floats(1.0, 600.0),
)
def test_advisor_estimates_well_formed(demand, active, session_s):
    advisor = RadioAdvisor()
    profile = AppProfile("p", demand_mbps=demand, active_fraction=active, session_s=session_s)
    for key in advisor.candidates:
        est = advisor.estimate(profile, key)
        assert est.energy_j > 0.0
        assert 0.0 < est.completion_factor <= 1.0
        assert est.achieved_mbps <= demand * (1 + 1e-9)


@settings(max_examples=25, deadline=None)
@given(
    demand=st.floats(0.1, 4000.0),
    alpha=st.floats(0.0, 1.0),
)
def test_advisor_recommendation_among_candidates(demand, alpha):
    advisor = RadioAdvisor()
    profile = AppProfile("p", demand_mbps=demand)
    result = advisor.recommend(profile, alpha=alpha)
    assert result["recommended"] in advisor.candidates


@settings(max_examples=20, deadline=None)
@given(
    transfers=st.lists(
        st.tuples(st.floats(1.0, 500.0), st.floats(0.5, 120.0), st.floats(0.0, 120.0)),
        min_size=1,
        max_size=8,
    ),
)
def test_session_energy_accounting_consistent(transfers):
    """Components always sum to the total and scale with the timeline."""
    timeline = [
        Activity("a", demand_mbps=d, transfer_s=t, gap_s=g) for d, t, g in transfers
    ]
    result = UsageSession("verizon-nsa-mmwave").simulate(timeline)
    component_sum = (
        result.transfer_energy_j
        + result.tail_energy_j
        + result.switch_energy_j
        + result.idle_energy_j
    )
    assert abs(component_sum - result.total_energy_j) < 1e-6
    assert result.duration_s > 0
    assert result.battery_drain_percent >= 0


@settings(max_examples=15, deadline=None)
@given(demand=st.floats(1.0, 100.0), transfer_s=st.floats(1.0, 60.0))
def test_session_monotone_in_repetition(demand, transfer_s):
    """Doing an activity twice never costs less than doing it once."""
    session = UsageSession("verizon-lte")
    one = session.simulate([Activity("a", demand, transfer_s, gap_s=10.0)])
    two = session.simulate([Activity("a", demand, transfer_s, gap_s=10.0)] * 2)
    assert two.total_energy_j >= one.total_energy_j
