"""Tests for repro.traces.io (CSV round-tripping)."""

import numpy as np
import pytest

from repro.traces.io import (
    load_throughput_trace,
    load_walking_trace,
    save_throughput_trace,
    save_walking_trace,
)
from repro.traces.schema import ThroughputTrace, WalkingTrace


class TestThroughputRoundTrip:
    def test_roundtrip_with_rsrp(self, tmp_path):
        trace = ThroughputTrace(
            "t1", "5G", np.array([10.5, 20.25, 0.0]), rsrp_dbm=np.array([-80.0, -90.0, -120.0])
        )
        path = tmp_path / "t1.csv"
        save_throughput_trace(trace, path)
        loaded = load_throughput_trace(path)
        assert loaded.name == "t1"
        assert loaded.tech == "5G"
        assert np.allclose(loaded.throughput_mbps, trace.throughput_mbps, atol=1e-3)
        assert np.allclose(loaded.rsrp_dbm, trace.rsrp_dbm, atol=0.01)

    def test_roundtrip_without_rsrp(self, tmp_path):
        trace = ThroughputTrace("t2", "4G", np.array([5.0, 6.0]), dt_s=2.0)
        path = tmp_path / "t2.csv"
        save_throughput_trace(trace, path)
        loaded = load_throughput_trace(path)
        assert loaded.rsrp_dbm is None
        assert loaded.dt_s == 2.0

    def test_creates_parent_dirs(self, tmp_path):
        trace = ThroughputTrace("t", "5G", np.array([1.0]))
        path = tmp_path / "a" / "b" / "t.csv"
        save_throughput_trace(trace, path)
        assert path.exists()

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t_s,throughput_mbps\n0,1\n")
        with pytest.raises(ValueError):
            load_throughput_trace(path)


class TestWalkingRoundTrip:
    def test_roundtrip(self, tmp_path):
        n = 8
        trace = WalkingTrace(
            name="w1",
            network_key="verizon-nsa-mmwave",
            device_name="S10",
            city="Ann Arbor",
            band_class="mmWave",
            times_s=np.arange(n) * 0.1,
            dl_mbps=np.linspace(0, 700, n),
            ul_mbps=np.zeros(n),
            rsrp_dbm=np.linspace(-80, -100, n),
            power_mw=np.linspace(3000, 5000, n),
        )
        path = tmp_path / "w1.csv"
        save_walking_trace(trace, path)
        loaded = load_walking_trace(path)
        assert loaded.name == "w1"
        assert loaded.city == "Ann Arbor"
        assert loaded.band_class == "mmWave"
        assert np.allclose(loaded.dl_mbps, trace.dl_mbps, atol=1e-3)
        assert np.allclose(loaded.power_mw, trace.power_mw, atol=0.01)
