"""Tests for repro.traces.lumos (corpus statistics)."""

import numpy as np
import pytest

from repro.traces.lumos import LumosConfig, generate_lumos_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_lumos_corpus(
        LumosConfig(n_5g=12, n_4g=12, duration_s=200, seed=7)
    )


class TestCorpusStatistics:
    def test_counts_and_durations(self, corpus):
        traces_5g, traces_4g = corpus
        assert len(traces_5g) == 12
        assert len(traces_4g) == 12
        assert all(len(t) == 200 for t in traces_5g + traces_4g)

    def test_default_config_matches_dataset(self):
        config = LumosConfig()
        assert config.n_5g == 121
        assert config.n_4g == 175

    def test_median_anchored_to_ladders(self, corpus):
        traces_5g, traces_4g = corpus
        pooled_5g = np.concatenate([t.throughput_mbps for t in traces_5g])
        pooled_4g = np.concatenate([t.throughput_mbps for t in traces_4g])
        assert np.median(pooled_5g) == pytest.approx(160.0, rel=0.02)
        assert np.median(pooled_4g) == pytest.approx(20.0, rel=0.02)

    def test_mean_ratio_about_10x(self, corpus):
        traces_5g, traces_4g = corpus
        mean_5g = np.mean([t.mean_mbps for t in traces_5g])
        mean_4g = np.mean([t.mean_mbps for t in traces_4g])
        assert 5.0 <= mean_5g / mean_4g <= 15.0

    def test_5g_more_volatile(self, corpus):
        traces_5g, traces_4g = corpus
        cv_5g = np.mean([t.throughput_mbps.std() / max(t.mean_mbps, 1e-9) for t in traces_5g])
        cv_4g = np.mean([t.throughput_mbps.std() / max(t.mean_mbps, 1e-9) for t in traces_4g])
        assert cv_5g > cv_4g

    def test_5g_craters_exist(self, corpus):
        # mmWave traces must spend meaningful time near zero.
        traces_5g, _ = corpus
        pooled = np.concatenate([t.throughput_mbps for t in traces_5g])
        assert np.mean(pooled < 20.0) > 0.05

    def test_rsrp_co_recorded(self, corpus):
        traces_5g, _ = corpus
        assert all(t.rsrp_dbm is not None for t in traces_5g)

    def test_reproducible(self):
        config = LumosConfig(n_5g=2, n_4g=2, duration_s=50, seed=3)
        a5, a4 = generate_lumos_corpus(config)
        b5, b4 = generate_lumos_corpus(config)
        assert np.array_equal(a5[0].throughput_mbps, b5[0].throughput_mbps)
        assert np.array_equal(a4[1].throughput_mbps, b4[1].throughput_mbps)

    def test_techs_labeled(self, corpus):
        traces_5g, traces_4g = corpus
        assert all(t.tech == "5G" for t in traces_5g)
        assert all(t.tech == "4G" for t in traces_4g)

    def test_empty_counts_allowed(self):
        traces_5g, traces_4g = generate_lumos_corpus(
            LumosConfig(n_5g=0, n_4g=1, duration_s=50, seed=1)
        )
        assert traces_5g == []
        assert len(traces_4g) == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LumosConfig(n_5g=-1)
        with pytest.raises(ValueError):
            LumosConfig(duration_s=5)
