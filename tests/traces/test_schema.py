"""Tests for repro.traces.schema."""

import numpy as np
import pytest

from repro.traces.schema import ThroughputTrace, WalkingTrace


class TestThroughputTrace:
    def test_basic_stats(self):
        trace = ThroughputTrace("t", "5G", np.array([10.0, 20.0, 30.0]))
        assert trace.mean_mbps == pytest.approx(20.0)
        assert trace.median_mbps == pytest.approx(20.0)
        assert trace.duration_s == pytest.approx(3.0)
        assert len(trace) == 3

    def test_throughput_at_holds_and_wraps(self):
        trace = ThroughputTrace("t", "5G", np.array([1.0, 2.0, 3.0]))
        assert trace.throughput_at(0.5) == 1.0
        assert trace.throughput_at(2.9) == 3.0
        assert trace.throughput_at(3.1) == 1.0  # wraps

    def test_custom_dt(self):
        trace = ThroughputTrace("t", "4G", np.array([5.0, 6.0]), dt_s=2.0)
        assert trace.duration_s == 4.0
        assert trace.throughput_at(3.0) == 6.0

    def test_negative_throughput_rejected(self):
        with pytest.raises(ValueError):
            ThroughputTrace("t", "5G", np.array([-1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ThroughputTrace("t", "5G", np.array([]))

    def test_rsrp_must_align(self):
        with pytest.raises(ValueError):
            ThroughputTrace("t", "5G", np.array([1.0, 2.0]), rsrp_dbm=np.array([-80.0]))

    def test_negative_time_raises(self):
        trace = ThroughputTrace("t", "5G", np.array([1.0]))
        with pytest.raises(ValueError):
            trace.throughput_at(-0.1)


class TestWalkingTrace:
    def _make(self, n=10):
        return WalkingTrace(
            name="w",
            network_key="verizon-nsa-mmwave",
            device_name="S20U",
            city="Minneapolis",
            times_s=np.arange(n) * 0.1,
            dl_mbps=np.full(n, 100.0),
            ul_mbps=np.full(n, 10.0),
            rsrp_dbm=np.full(n, -85.0),
            power_mw=np.full(n, 4000.0),
        )

    def test_duration(self):
        assert self._make(11).duration_s == pytest.approx(1.0)

    def test_features_shape(self):
        features = self._make(10).features()
        assert features.shape == (10, 2)
        assert features[0, 0] == pytest.approx(110.0)  # dl + ul
        assert features[0, 1] == pytest.approx(-85.0)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            WalkingTrace(
                name="w", network_key="k", device_name="d", city="c",
                times_s=np.arange(5), dl_mbps=np.zeros(4), ul_mbps=np.zeros(5),
                rsrp_dbm=np.zeros(5), power_mw=np.zeros(5),
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WalkingTrace(
                name="w", network_key="k", device_name="d", city="c",
                times_s=np.array([]), dl_mbps=np.array([]), ul_mbps=np.array([]),
                rsrp_dbm=np.array([]), power_mw=np.array([]),
            )
