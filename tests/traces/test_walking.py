"""Tests for repro.traces.walking."""

import numpy as np
import pytest

from repro.power.device import get_device
from repro.radio.carriers import get_network
from repro.traces.walking import LOG_RATE_HZ, WalkingTraceGenerator


class TestWalkingTraces:
    def test_10hz_logging(self, walking_traces_mmwave):
        trace = walking_traces_mmwave[0]
        dt = np.diff(trace.times_s)
        assert np.allclose(dt, 1.0 / LOG_RATE_HZ)

    def test_loop_duration_about_20min(self, walking_traces_mmwave):
        assert walking_traces_mmwave[0].duration_s == pytest.approx(1143.0, rel=0.05)

    def test_power_tracks_throughput(self, walking_traces_mmwave):
        trace = walking_traces_mmwave[0]
        high = trace.dl_mbps > np.percentile(trace.dl_mbps, 80)
        low = trace.dl_mbps < np.percentile(trace.dl_mbps, 20)
        assert trace.power_mw[high].mean() > trace.power_mw[low].mean()

    def test_rsrp_fluctuates_wildly_on_mmwave(self, walking_traces_mmwave):
        # Section 4.4: mmWave signal "fluctuates frequently and wildly".
        trace = walking_traces_mmwave[0]
        assert trace.rsrp_dbm.max() - trace.rsrp_dbm.min() > 25.0

    def test_generate_many_counts(self):
        generator = WalkingTraceGenerator(
            network=get_network("tmobile-sa-lowband"),
            device=get_device("S20U"),
            seed=1,
        )
        traces = generator.generate_many(3)
        assert len(traces) == 3
        assert len({t.name for t in traces}) == 3

    def test_metadata_propagated(self, walking_traces_mmwave):
        trace = walking_traces_mmwave[0]
        assert trace.network_key == "verizon-nsa-mmwave"
        assert trace.device_name == "S20U"
        assert trace.band_class == "mmWave"

    def test_lowband_smoother_than_mmwave(self, walking_traces_mmwave):
        generator = WalkingTraceGenerator(
            network=get_network("tmobile-nsa-lowband"),
            device=get_device("S20U"),
            seed=2,
        )
        lowband = generator.generate("lb")
        mm = walking_traces_mmwave[0]
        assert np.std(lowband.rsrp_dbm) < np.std(mm.rsrp_dbm)

    def test_invalid_count(self):
        generator = WalkingTraceGenerator(
            network=get_network("verizon-lte"), device=get_device("S20U")
        )
        with pytest.raises(ValueError):
            generator.generate_many(0)
