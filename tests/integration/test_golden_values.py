"""Golden-value regression pins.

Every stochastic generator in the library is seeded, so a handful of
exact outputs act as drift detectors: if a refactor changes any of
these values, it has changed simulated *behaviour* (seed plumbing, RNG
consumption order, or model math) and every calibrated figure needs
re-checking. Update the pins only deliberately, alongside a re-run of
the benchmark suite.
"""

import numpy as np
import pytest

from repro.radio.bands import NR_N261
from repro.radio.signal import RsrpProcess, rsrp_at_distance
from repro.rrc.machine import RRCStateMachine
from repro.rrc.parameters import get_parameters
from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.web.catalog import generate_catalog


class TestGoldenValues:
    def test_lumos_corpus_first_samples(self):
        traces_5g, traces_4g = generate_lumos_corpus(
            LumosConfig(n_5g=1, n_4g=1, duration_s=50, seed=77)
        )
        # 5G pins regenerated when RsrpProcess.simulate moved to batched
        # RNG draws (draw order change documented in docs/performance.md);
        # 4G pins were unchanged by that migration (the non-mmWave path
        # consumes the same stream as the old per-step loop).
        assert np.round(traces_5g[0].throughput_mbps[:3], 4).tolist() == [
            165.8865,
            177.9363,
            191.7361,
        ]
        assert np.round(traces_4g[0].throughput_mbps[:3], 4).tolist() == [
            20.5677,
            23.015,
            24.6711,
        ]

    def test_rsrp_process_stream(self):
        process = RsrpProcess(NR_N261, seed=5)
        samples = [round(process.step(100.0, 1.0), 4) for _ in range(3)]
        assert samples == [-84.4887, -83.6845, -83.4261]

    def test_static_rsrp(self):
        assert rsrp_at_distance(NR_N261, 100.0) == pytest.approx(-82.3832, abs=1e-4)

    def test_rrc_idle_delay(self):
        machine = RRCStateMachine(get_parameters("verizon-nsa-mmwave"), seed=9)
        machine.deliver_packet(0.0)
        delay = machine.deliver_packet(machine.last_activity_ms + 20000.0)
        assert delay == pytest.approx(2274.126, abs=1e-3)

    def test_catalog_first_sites(self):
        catalog = generate_catalog(n_sites=3, seed=8)
        assert [(s.n_objects, s.total_bytes) for s in catalog] == [
            (14, 750319),
            (245, 19248548),
            (53, 1363079),
        ]
