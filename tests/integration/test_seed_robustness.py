"""Seed-robustness checks for the headline qualitative claims.

The benchmarks pin seeds for reproducibility; these tests verify the
claims are properties of the *model*, not of a lucky seed, by sweeping
a few seeds at reduced scale.
"""

import numpy as np
import pytest

from repro.core.energy import find_crossover
from repro.experiments import run_handoff_drive
from repro.experiments.power import _controlled_sweep
from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.video.abr import make_abr
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import Player
from repro.video.qoe import stall_percent


class TestHandoffOrderingAcrossSeeds:
    @pytest.mark.parametrize("seed", [1, 9, 17])
    def test_fig9_ordering(self, seed):
        result = run_handoff_drive(dt_s=1.0, seed=seed)
        totals = {r["configuration"]: r["total"] for r in result["rows"]}
        assert totals["SA-5G only"] == min(totals.values())
        assert totals["NSA-5G + LTE"] == max(totals.values())
        assert totals["All Bands"] > totals["SA-5G + LTE"]


class TestCrossoverAcrossSeeds:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_fig11_dl_crossover_stable(self, seed):
        targets = list(np.linspace(10.0, 1800.0, 6))
        mm_t, mm_p = _controlled_sweep(
            "S20U", "verizon-nsa-mmwave", targets, True, 3.0, seed
        )
        lte_targets = list(np.linspace(5.0, 150.0, 6))
        lte_t, lte_p = _controlled_sweep(
            "S20U", "verizon-lte", lte_targets, True, 3.0, seed
        )
        # Fit both sweeps on their own ranges and intersect.
        from repro.core.energy import fit_power_slope

        slope_mm, icpt_mm = fit_power_slope(mm_t, mm_p)
        slope_lte, icpt_lte = fit_power_slope(lte_t, lte_p)
        crossing = (icpt_mm - icpt_lte) / (slope_lte - slope_mm)
        assert crossing == pytest.approx(187.0, rel=0.15)


class TestPensieveAcrossSeeds:
    @pytest.mark.parametrize("seed", [5, 13])
    def test_pensieve_worst_5g_stall(self, seed):
        traces_5g, _ = generate_lumos_corpus(
            LumosConfig(n_5g=8, n_4g=0, duration_s=200, seed=seed)
        )
        manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=35)
        player = Player(manifest)
        stalls = {}
        for name in ("bba", "robustmpc", "pensieve"):
            values = []
            for trace in traces_5g:
                result = player.play(make_abr(name), trace.throughput_at)
                values.append(stall_percent(result.stall_s, result.playback_s))
            stalls[name] = float(np.mean(values))
        assert stalls["pensieve"] >= stalls["robustmpc"]
        assert stalls["pensieve"] >= stalls["bba"]


class TestCorpusAnchorsAcrossSeeds:
    @pytest.mark.parametrize("seed", [2, 19, 23])
    def test_medians_pinned(self, seed):
        traces_5g, traces_4g = generate_lumos_corpus(
            LumosConfig(n_5g=6, n_4g=6, duration_s=150, seed=seed)
        )
        pooled_5g = np.concatenate([t.throughput_mbps for t in traces_5g])
        pooled_4g = np.concatenate([t.throughput_mbps for t in traces_4g])
        assert np.median(pooled_5g) == pytest.approx(160.0, rel=0.02)
        assert np.median(pooled_4g) == pytest.approx(20.0, rel=0.02)
