"""Integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.core.powermodel import FeatureSet, train_from_walking_traces
from repro.power.device import get_device
from repro.power.monsoon import MonsoonMonitor
from repro.radio.carriers import get_network
from repro.traces.walking import WalkingTraceGenerator
from repro.video.abr.mpc import FastMPC
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import Player
from repro.web.browser import Browser
from repro.web.catalog import generate_catalog


class TestPowerModelValidation:
    """Section 4.5's 'validation on real applications': the trained
    power model estimates application energy within a few percent of
    the (simulated) hardware monitor."""

    @pytest.fixture(scope="class")
    def model(self, walking_traces_mmwave):
        return train_from_walking_traces(
            "S20U/VZ/NSA-HB", walking_traces_mmwave[:3], features=FeatureSet.TH_SS
        )

    def test_video_streaming_energy_error_small(self, model, small_corpus):
        traces_5g, _ = small_corpus
        manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=20)
        player = Player(manifest)
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        errors = []
        for trace in traces_5g[:3]:
            result = player.play(FastMPC(), trace.throughput_at)
            timeline = result.download_rate_timeline
            rsrp = np.full(timeline.shape[0], -80.0)
            estimated = model.estimate_energy_j(timeline, rsrp, dt_s=0.1)
            truth = sum(curve.power_mw(dl_mbps=r, rsrp_dbm=-80.0) * 0.1 for r in timeline) / 1000.0
            errors.append(abs(estimated - truth) / truth)
        # Paper reports ~3.7% average error for video streaming.
        assert np.mean(errors) < 0.10

    def test_web_browsing_energy_error_small(self, model):
        catalog = generate_catalog(n_sites=10, seed=4)
        browser = Browser(device=get_device("S20U"), seed=5)
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        errors = []
        for site in catalog:
            result = browser.load(site, "5G")
            timeline = result.har.throughput_timeline_mbps(dt_s=0.5)
            rsrp = np.full(len(timeline), -80.0)
            estimated = model.estimate_energy_j(timeline, rsrp, dt_s=0.5)
            truth = sum(
                curve.power_mw(dl_mbps=min(r, 2000.0), rsrp_dbm=-80.0) * 0.5
                for r in timeline
            ) / 1000.0
            errors.append(abs(estimated - truth) / truth)
        assert np.mean(errors) < 0.10


class TestMonsoonOnWalkingTraces:
    def test_monitor_reproduces_trace_energy(self, walking_traces_mmwave):
        trace = walking_traces_mmwave[0]
        monitor = MonsoonMonitor(rate_hz=100.0, seed=0)
        captured = monitor.measure_series(trace.power_mw, series_rate_hz=10.0)
        trace_energy = float(np.sum(trace.power_mw) * 0.1 / 1000.0)
        assert captured.energy_j() == pytest.approx(trace_energy, rel=0.02)


class TestCrossSubsystemConsistency:
    def test_network_peaks_consistent_with_link_budget(self):
        """Every configured network's peak is achievable by its best
        modem at excellent signal."""
        from repro.radio.link import LinkBudget, MODEMS

        for key in ("verizon-nsa-mmwave", "tmobile-nsa-lowband", "verizon-lte"):
            network = get_network(key)
            link = LinkBudget(network, MODEMS["X55"])
            assert link.capacity_mbps(-65.0) == pytest.approx(
                network.peak_dl_mbps, rel=0.01
            )

    def test_walking_trace_power_matches_device_curve(self, walking_traces_mmwave):
        """Walking-trace power is the device curve plus bounded noise."""
        trace = walking_traces_mmwave[0]
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        expected = np.array(
            [
                curve.power_mw(dl_mbps=d, rsrp_dbm=r)
                for d, r in zip(trace.dl_mbps, trace.rsrp_dbm)
            ]
        )
        ratio = trace.power_mw / np.maximum(expected, 1.0)
        assert 0.85 < np.median(ratio) < 1.15

    def test_rrc_tail_consistent_with_table2_power(self):
        """Integrating the Table 2 tail power over the Table 7 tail
        duration reproduces tail_energy_j."""
        from repro.power.tail import get_tail_power, tail_energy_j
        from repro.rrc.parameters import get_parameters

        key = "verizon-lte"
        params = get_parameters(key)
        tail = get_tail_power(key)
        approx = tail.tail_mw * params.inactivity_ms / 1e6
        assert tail_energy_j(key) == pytest.approx(approx, rel=0.05)
