"""Tests for repro.mobility.handoff (Fig. 9 behaviour)."""

import pytest

from repro.mobility.handoff import (
    BandConfiguration,
    FIG9_CONFIGURATIONS,
    HandoffSimulator,
    RadioTech,
    default_grids,
)
from repro.mobility.routes import driving_route
from repro.mobility.trajectory import Trajectory


@pytest.fixture(scope="module")
def drive():
    route = driving_route()
    trajectory = Trajectory.from_route(route, dt_s=0.5)
    grids = default_grids(route.waypoints, seed=7)
    simulator = HandoffSimulator(n71_grid=grids["n71"], lte_grid=grids["lte"], seed=3)
    return {
        cfg.name: simulator.run(trajectory, cfg) for cfg in FIG9_CONFIGURATIONS
    }


class TestFig9Shape:
    def test_sa_fewest_handoffs(self, drive):
        sa = drive["SA-5G only"].total_count
        assert all(
            sa <= summary.total_count for summary in drive.values()
        )

    def test_nsa_most_handoffs(self, drive):
        nsa = drive["NSA-5G + LTE"].total_count
        assert all(nsa >= s.total_count for s in drive.values())

    def test_paper_ordering(self, drive):
        # NSA+LTE (110) > All (64) > SA+LTE (38) > LTE (30) > SA (13).
        totals = {name: s.total_count for name, s in drive.items()}
        assert totals["NSA-5G + LTE"] > totals["All Bands"]
        assert totals["All Bands"] > totals["SA-5G + LTE"]
        assert totals["SA-5G + LTE"] >= totals["LTE only"]
        assert totals["LTE only"] > totals["SA-5G only"]

    def test_sa_has_no_vertical_handoffs(self, drive):
        assert drive["SA-5G only"].vertical_count == 0

    def test_nsa_vertical_dominates(self, drive):
        # Paper: ~90 of NSA's 110 handoffs are vertical.
        summary = drive["NSA-5G + LTE"]
        assert summary.vertical_count > 3 * summary.horizontal_count

    def test_n71_horizontal_count_low(self, drive):
        # Paper: 13-20 horizontal handoffs on n71.
        assert 8 <= drive["SA-5G only"].horizontal_count <= 25

    def test_lte_horizontal_about_30(self, drive):
        assert 20 <= drive["LTE only"].horizontal_count <= 40

    def test_segments_cover_timeline(self, drive):
        summary = drive["NSA-5G + LTE"]
        total = sum(end - start for start, end, _tech in summary.segments)
        assert total > 0
        assert summary.time_in_tech_s(RadioTech.NSA_5G) > 0
        assert summary.time_in_tech_s(RadioTech.LTE) > 0


class TestConfiguration:
    def test_nsa_requires_lte(self):
        with pytest.raises(ValueError):
            BandConfiguration("bad", sa_enabled=False, nsa_enabled=True, lte_enabled=False)

    def test_at_least_one_radio(self):
        with pytest.raises(ValueError):
            BandConfiguration("bad", sa_enabled=False, nsa_enabled=False, lte_enabled=False)

    def test_five_fig9_configurations(self):
        assert len(FIG9_CONFIGURATIONS) == 5
