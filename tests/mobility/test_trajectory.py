"""Tests for repro.mobility.trajectory."""

import numpy as np
import pytest

from repro.mobility.routes import Route, walking_loop
from repro.mobility.trajectory import Trajectory


class TestTrajectory:
    def test_sampling_rate(self):
        traj = Trajectory.from_route(walking_loop(), dt_s=0.5)
        assert traj.dt_s == pytest.approx(0.5)
        assert len(traj) == pytest.approx(walking_loop().duration_s / 0.5, abs=2)

    def test_positions_on_route(self):
        route = Route("r", [(0.0, 0.0), (100.0, 0.0)], [10.0])
        traj = Trajectory.from_route(route, dt_s=1.0)
        assert traj.y_m.max() == 0.0
        assert traj.x_m.min() >= 0.0
        assert traj.x_m.max() <= 100.0

    def test_repeats_wrap_around(self):
        route = Route("r", [(0.0, 0.0), (100.0, 0.0)], [10.0])
        once = Trajectory.from_route(route, dt_s=1.0, repeats=1)
        twice = Trajectory.from_route(route, dt_s=1.0, repeats=2)
        assert twice.duration_s == pytest.approx(2 * once.duration_s, rel=0.1)
        # Position wraps back to the start after the first lap.
        mid = len(twice) // 2
        assert twice.x_m[mid] < 50.0

    def test_distances_to(self):
        route = Route("r", [(0.0, 0.0), (100.0, 0.0)], [10.0])
        traj = Trajectory.from_route(route, dt_s=1.0)
        distances = traj.distances_to(0.0, 30.0)
        assert distances[0] == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory.from_route(walking_loop(), dt_s=0.0)
        with pytest.raises(ValueError):
            Trajectory.from_route(walking_loop(), repeats=0)
        with pytest.raises(ValueError):
            Trajectory(
                times_s=np.array([0.0]),
                x_m=np.array([0.0, 1.0]),
                y_m=np.array([0.0]),
                speed_mps=np.array([0.0]),
            )
