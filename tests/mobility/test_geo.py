"""Tests for repro.mobility.geo."""

import pytest

from repro.mobility.geo import haversine_km, path_length_m


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(44.98, -93.27, 44.98, -93.27) == 0.0

    def test_minneapolis_chicago(self):
        # Known great-circle distance: ~570 km.
        d = haversine_km(44.9778, -93.2650, 41.8781, -87.6298)
        assert d == pytest.approx(570.0, rel=0.02)

    def test_minneapolis_la(self):
        d = haversine_km(44.9778, -93.2650, 34.0522, -118.2437)
        assert d == pytest.approx(2450.0, rel=0.02)

    def test_symmetric(self):
        a = haversine_km(10.0, 20.0, 30.0, 40.0)
        b = haversine_km(30.0, 40.0, 10.0, 20.0)
        assert a == pytest.approx(b)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            haversine_km(91.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            haversine_km(0.0, 181.0, 0.0, 0.0)


class TestPathLength:
    def test_straight_line(self):
        assert path_length_m([(0.0, 0.0), (3.0, 4.0)]) == pytest.approx(5.0)

    def test_polyline(self):
        assert path_length_m([(0, 0), (100, 0), (100, 100)]) == pytest.approx(200.0)

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            path_length_m([(0, 0)])
