"""Tests for repro.mobility.routes."""

import pytest

from repro.mobility.routes import Route, driving_route, walking_loop


class TestWalkingLoop:
    def test_length_matches_paper(self):
        # ~1.6 km loop (section 4.1).
        assert walking_loop().length_m == pytest.approx(1600.0)

    def test_duration_about_20_minutes(self):
        # 1.6 km at 1.4 m/s ~ 19 minutes.
        assert walking_loop().duration_s == pytest.approx(1143.0, rel=0.05)

    def test_closed_loop(self):
        loop = walking_loop()
        assert loop.waypoints[0] == loop.waypoints[-1]


class TestDrivingRoute:
    def test_length_10km(self):
        assert driving_route().length_m == pytest.approx(10000.0, rel=0.01)

    def test_speed_range_matches_paper(self):
        # 0 to 100 kph (section 3.3); our slowest segment is 5 kph.
        route = driving_route()
        speeds_kph = [s * 3.6 for s in route.segment_speeds_mps]
        assert min(speeds_kph) < 10.0
        assert max(speeds_kph) == pytest.approx(100.0)

    def test_freeway_faster_than_downtown(self):
        route = driving_route()
        downtown = route.segment_speeds_mps[: len(route.segment_speeds_mps) // 2]
        freeway = route.segment_speeds_mps[-4:]
        assert min(freeway) > max(downtown)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            driving_route(length_km=0.0)


class TestRoute:
    def test_position_at_start(self):
        route = Route("r", [(0.0, 0.0), (100.0, 0.0)], [10.0])
        x, y, speed = route.position_at(0.0)
        assert (x, y) == (0.0, 0.0)
        assert speed == 10.0

    def test_position_interpolates(self):
        route = Route("r", [(0.0, 0.0), (100.0, 0.0)], [10.0])
        x, _, _ = route.position_at(5.0)
        assert x == pytest.approx(50.0)

    def test_position_clamps_at_end(self):
        route = Route("r", [(0.0, 0.0), (100.0, 0.0)], [10.0])
        x, _, speed = route.position_at(1000.0)
        assert x == 100.0
        assert speed == 0.0

    def test_default_walking_speed(self):
        route = Route("r", [(0.0, 0.0), (14.0, 0.0)])
        assert route.duration_s == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Route("r", [(0.0, 0.0)])
        with pytest.raises(ValueError):
            Route("r", [(0, 0), (1, 1)], [1.0, 2.0])
        with pytest.raises(ValueError):
            Route("r", [(0, 0), (1, 1)], [-1.0])
        with pytest.raises(ValueError):
            Route("r", [(0, 0), (1, 1)], [1.0]).position_at(-1.0)


class TestZeroLengthSegments:
    """Duplicate consecutive waypoints must not poison the traversal.

    Zero-length segments have zero duration; before they were filtered
    out of the lookup tables, a time landing exactly on the degenerate
    boundary divided 0/0 and returned NaN positions.
    """

    def _route(self):
        return Route(
            "r",
            [(0.0, 0.0), (100.0, 0.0), (100.0, 0.0), (100.0, 100.0)],
            [10.0, 5.0, 10.0],
        )

    def test_boundary_time_is_finite(self):
        import numpy as np

        route = self._route()
        # t=10 s is exactly the boundary into the zero-length segment.
        for t in (0.0, 5.0, 10.0, 15.0, 25.0):
            x, y, speed = route.position_at(t)
            assert np.isfinite([x, y, speed]).all(), f"NaN at t={t}"
        assert route.position_at(10.0)[:2] == (100.0, 0.0)

    def test_scalar_vectorized_parity(self):
        import numpy as np

        route = self._route()
        times = np.concatenate(
            [np.linspace(0.0, route.duration_s + 5.0, 301), [10.0]]
        )
        xs, ys, speeds = route.positions_at(times)
        for i, t in enumerate(times):
            x, y, speed = route.position_at(float(t))
            assert (x, y, speed) == (xs[i], ys[i], speeds[i])

    def test_positions_at_2d_time_grid(self):
        import numpy as np

        route = self._route()
        times = np.linspace(0.0, 25.0, 12).reshape(3, 4)
        xs, ys, speeds = route.positions_at(times)
        assert xs.shape == ys.shape == speeds.shape == (3, 4)
        flat_x, flat_y, flat_s = route.positions_at(times.ravel())
        assert np.array_equal(xs.ravel(), flat_x)
        assert np.array_equal(ys.ravel(), flat_y)
        assert np.array_equal(speeds.ravel(), flat_s)

    def test_fully_degenerate_route(self):
        import numpy as np

        route = Route("r", [(5.0, 7.0), (5.0, 7.0)], [1.0])
        assert route.position_at(3.0) == (5.0, 7.0, 0.0)
        xs, ys, speeds = route.positions_at(np.array([0.0, 1.0, 9.0]))
        assert np.array_equal(xs, [5.0, 5.0, 5.0])
        assert np.array_equal(ys, [7.0, 7.0, 7.0])
        assert np.array_equal(speeds, [0.0, 0.0, 0.0])
