"""Recovery-path tests that go beyond the plan-driven chaos sweeps:
hand-corrupted state, interrupt propagation, CLI exit-code contracts.
"""

import json
import warnings

import pytest

from repro import engine
from repro.cli import main
from repro.engine import JobSpec, execute
from repro.faults.corrupt import scribble, tear_final_line, truncate_tail
from repro.obs.events import EventLog, read_events


class TestQuarantine:
    def _prime(self, tmp_path, n=2):
        cache = engine.ResultCache(tmp_path / "cache")
        specs = [
            JobSpec(runner="test.echo", kwargs={"v": i}, index=i, seed=i)
            for i in range(n)
        ]
        result = execute(specs, workers=1, cache=cache)
        assert result.ok_count == n
        return cache, specs, result

    def test_hand_scribbled_entry_is_quarantined_and_recomputed(
        self, tmp_path
    ):
        cache, specs, clean = self._prime(tmp_path)
        version = clean.code_version
        key = cache.key_for(specs[0], version)
        scribble(cache.path_for(specs[0], key))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            again = execute(
                specs, workers=1, cache=cache, code_version=version
            )
        assert [o.status for o in again.outcomes] == ["ok", "cached"]
        assert again.values() == clean.values()
        assert any("quarantined" in str(w.message) for w in caught)
        assert len(list(cache.quarantine_dir.iterdir())) == 1

    def test_torn_write_regression(self, tmp_path):
        # A truncated (torn) entry must never be served as a hit.
        cache, specs, clean = self._prime(tmp_path)
        version = clean.code_version
        key = cache.key_for(specs[1], version)
        truncate_tail(cache.path_for(specs[1], key), keep_fraction=0.4)
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            again = execute(
                specs, workers=1, cache=cache, code_version=version
            )
        assert again.outcomes[1].status == "ok"  # recomputed
        assert again.values() == clean.values()

    def test_wrong_shape_record_is_quarantined(self, tmp_path):
        cache, specs, clean = self._prime(tmp_path, n=1)
        version = clean.code_version
        key = cache.key_for(specs[0], version)
        # Valid JSON, wrong shape: no "value" field.
        cache.path_for(specs[0], key).write_text('{"not": "a record"}\n')
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            hit, _ = cache.get(specs[0], key)
        assert not hit
        assert any("not a cache record" in str(w.message) for w in caught)

    def test_name_collisions_get_numeric_suffixes(self, tmp_path):
        cache, specs, clean = self._prime(tmp_path, n=1)
        version = clean.code_version
        key = cache.key_for(specs[0], version)
        path = cache.path_for(specs[0], key)
        for _ in range(3):
            scribble(path)
            with warnings.catch_warnings(record=True):
                warnings.simplefilter("always")
                hit, _ = cache.get(specs[0], key)
            assert not hit
            cache.put(specs[0], key, {"v": 0})
        names = sorted(p.name for p in cache.quarantine_dir.iterdir())
        assert names == [path.name, f"{path.name}.1", f"{path.name}.2"]

    def test_quarantine_dir_never_pollutes_entries(self, tmp_path):
        cache, specs, clean = self._prime(tmp_path, n=1)
        version = clean.code_version
        key = cache.key_for(specs[0], version)
        scribble(cache.path_for(specs[0], key))
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            cache.get(specs[0], key)
        assert len(cache) == 0  # quarantined entry no longer counted


class TestLedgerDurability:
    def test_fsync_mode_writes_identical_lines(self, tmp_path):
        plain, synced = tmp_path / "plain.jsonl", tmp_path / "synced.jsonl"
        clock = lambda: 1.0  # noqa: E731 - fixed clock for byte equality
        with EventLog(plain, clock=clock) as a:
            a.emit("sweep_start", jobs=1)
            a.emit("sweep_end", jobs=1, ok=1)
        with EventLog(synced, clock=clock, fsync=True) as b:
            b.emit("sweep_start", jobs=1)
            b.emit("sweep_end", jobs=1, ok=1)
        assert plain.read_bytes() == synced.read_bytes()

    def test_reader_warns_once_on_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            for i in range(5):
                log.emit("job_end", index=i, status="ok")
        tear_final_line(path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            events = read_events(path)
        assert len(events) == 4
        torn = [w for w in caught if "torn" in str(w.message)]
        assert len(torn) == 1
        assert issubclass(torn[0].category, RuntimeWarning)

    def test_mid_file_corruption_still_hard_errors(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = ['{"event":"a","seq":1}', "garbage{", '{"event":"b","seq":3}']
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 2"):
            read_events(path)


class TestFailureRecords:
    def test_traceback_preserved_end_to_end(self, tmp_path):
        from repro.obs.manifest import build_manifest

        result = execute(
            [JobSpec(runner="test.fail", kwargs={"message": "boom"}, index=0)],
            workers=1,
            retries=0,
        )
        failure = result.outcomes[0].failure
        assert failure.error == "boom"
        assert "RuntimeError: boom" in failure.traceback
        assert "failing_runner" in failure.traceback
        manifest = build_manifest(result, code_version="v")
        assert (
            "RuntimeError: boom"
            in manifest["jobs"][0]["failure"]["traceback"]
        )

    def test_keyboard_interrupt_propagates_not_recorded(self):
        # BaseException must abort the sweep, not become a JobFailure.
        jobs = [
            JobSpec(
                runner="repro.engine.testing:interrupt_runner", index=0
            ),
            JobSpec(runner="test.echo", kwargs={"v": 1}, index=1),
        ]
        with pytest.raises(KeyboardInterrupt):
            execute(jobs, workers=1, retries=0)


class TestCliKeepGoing:
    def _argv(self, tmp_path, *extra):
        return [
            "sweep", "test.echo", "test.fail", "test.echo",
            "--quiet", "--retries", "0",
            "--events", str(tmp_path / "ev.jsonl"),
            "--manifest", str(tmp_path / "run.json"),
        ] + list(extra)

    def test_failures_exit_nonzero_by_default(self, tmp_path, capsys):
        assert main(self._argv(tmp_path)) == 1
        capsys.readouterr()

    def test_keep_going_exits_zero_and_records_failures(
        self, tmp_path, capsys
    ):
        assert main(self._argv(tmp_path, "--keep-going")) == 0
        out = capsys.readouterr().out
        assert "FAILED test.fail" in out
        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["partial"] is True
        assert manifest["counts"]["failed"] == 1
        assert manifest["counts"]["ok"] == 2

    def test_max_failures_skips_and_marks_partial(self, tmp_path, capsys):
        argv = [
            "sweep", "test.fail", "test.fail", "test.fail",
            "--quiet", "--retries", "0",
            "--max-failures", "0", "--keep-going",
            "--manifest", str(tmp_path / "run.json"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "SKIPPED 2 job(s)" in out
        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["counts"] == {
            "jobs": 3, "ok": 0, "cached": 0, "failed": 1, "skipped": 2,
        }

    def test_inject_crash_via_cli(self, tmp_path, capsys):
        argv = [
            "sweep", "test.echo", "test.echo", "test.echo",
            "--quiet", "--retries", "0", "--keep-going",
            "--inject", "crash:at=1",
            "--manifest", str(tmp_path / "run.json"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["counts"]["failed"] == 1
        assert (
            manifest["jobs"][1]["failure"]["error_type"]
            == "WorkerCrashError"
        )

    def test_bad_inject_spec_is_a_usage_error(self, tmp_path, capsys):
        argv = ["sweep", "test.echo", "--quiet", "--inject", "gremlins"]
        assert main(argv) == 2
        assert "bad --inject" in capsys.readouterr().err


class TestCliStatsTornLedger:
    def test_stats_warns_but_succeeds_on_torn_ledger(self, tmp_path, capsys):
        events = tmp_path / "ev.jsonl"
        assert main(
            ["sweep", "test.echo", "--quiet", "--events", str(events)]
        ) == 0
        capsys.readouterr()
        tear_final_line(events)
        assert main(["stats", str(events)]) == 0
        captured = capsys.readouterr()
        assert "torn" in captured.err
        assert "1 sweep(s)" in captured.out

    def test_stats_still_exits_2_on_midfile_corruption(
        self, tmp_path, capsys
    ):
        events = tmp_path / "ev.jsonl"
        events.write_text('garbage{\n{"event":"sweep_start","seq":2}\n')
        assert main(["stats", str(events)]) == 2
        assert "malformed" in capsys.readouterr().err
