"""Tests for repro.faults.plan: determinism, selection, the CLI grammar."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    PARENT_FAULTS,
    WORKER_FAULTS,
    FaultPlan,
    FaultSpec,
    parse_fault,
    plan_from_args,
)


class TestFaultSpec:
    def test_kind_taxonomy_is_partitioned(self):
        assert WORKER_FAULTS | PARENT_FAULTS == FAULT_KINDS
        assert not WORKER_FAULTS & PARENT_FAULTS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    def test_rate_and_times_validated(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="crash", rate=1.5)
        with pytest.raises(ValueError, match="times"):
            FaultSpec(kind="crash", times=0)

    def test_site_selectors(self):
        spec = FaultSpec(kind="crash", at=(1, 3), runners=("test.echo",))
        assert spec.matches_site(1, "test.echo", 1)
        assert not spec.matches_site(2, "test.echo", 1)  # wrong index
        assert not spec.matches_site(1, "test.fail", 1)  # wrong runner
        assert not spec.matches_site(1, "test.echo", 2)  # past times=1

    def test_times_caps_attempts(self):
        spec = FaultSpec(kind="transient", times=2)
        assert spec.matches_site(0, "any", 1)
        assert spec.matches_site(0, "any", 2)
        assert not spec.matches_site(0, "any", 3)

    def test_payload_roundtrip(self):
        spec = FaultSpec(
            kind="hang", rate=0.5, at=(2,), runners=("a", "b"),
            times=3, hang_s=12.5,
        )
        assert FaultSpec.from_payload(spec.to_payload()) == spec


class TestFaultPlanDecide:
    def test_empty_plan_never_fires(self):
        plan = FaultPlan()
        for kind in FAULT_KINDS:
            assert plan.decide(kind, index=0) is None

    def test_rate_one_always_fires_at_matching_site(self):
        plan = FaultPlan.single("crash", at=(2,))
        assert plan.decide("crash", index=2) is not None
        assert plan.decide("crash", index=1) is None
        assert plan.decide("hang", index=2) is None

    def test_decisions_are_deterministic_per_seed(self):
        plan_a = FaultPlan.single("transient", rate=0.5, seed=7)
        plan_b = FaultPlan.single("transient", rate=0.5, seed=7)
        sites = [(i, a) for i in range(50) for a in (1,)]
        decisions_a = [
            plan_a.decide("transient", index=i, attempt=a) is not None
            for i, a in sites
        ]
        decisions_b = [
            plan_b.decide("transient", index=i, attempt=a) is not None
            for i, a in sites
        ]
        assert decisions_a == decisions_b
        # ~50% rate actually fires somewhere and spares somewhere.
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_differ(self):
        fire = []
        for seed in range(4):
            plan = FaultPlan.single("transient", rate=0.5, seed=seed)
            fire.append(
                tuple(
                    plan.decide("transient", index=i) is not None
                    for i in range(30)
                )
            )
        assert len(set(fire)) > 1

    def test_decision_independent_of_call_order(self):
        plan = FaultPlan.single("crash", rate=0.5, seed=3)
        forward = [plan.decide("crash", index=i) is not None for i in range(20)]
        backward = [
            plan.decide("crash", index=i) is not None
            for i in reversed(range(20))
        ]
        assert forward == list(reversed(backward))

    def test_worker_payload_roundtrip_filters_parent_faults(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="crash", at=(1,)),
                FaultSpec(kind="cache_corrupt"),
            ),
            seed=9,
        )
        payload = plan.worker_payload()
        assert [s["kind"] for s in payload["specs"]] == ["crash"]
        rebuilt = FaultPlan.from_payload(payload)
        assert rebuilt.seed == 9
        assert rebuilt.decide("crash", index=1) is not None
        assert rebuilt.decide("cache_corrupt", index=0) is None

    def test_worker_payload_none_when_parent_only(self):
        assert FaultPlan.single("ledger_tear").worker_payload() is None


class TestParseGrammar:
    def test_bare_kind(self):
        spec = parse_fault("cache_corrupt")
        assert spec.kind == "cache_corrupt" and spec.rate == 1.0

    def test_full_options(self):
        spec = parse_fault("hang:runner=test.sleep+test.echo,hang_s=30,at=1+4")
        assert spec.kind == "hang"
        assert spec.runners == ("test.sleep", "test.echo")
        assert spec.hang_s == 30.0
        assert spec.at == (1, 4)

    def test_rate_and_times(self):
        spec = parse_fault("transient:rate=0.25,times=2")
        assert spec.rate == 0.25 and spec.times == 2

    def test_bad_option_key(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            parse_fault("crash:when=later")

    def test_missing_value(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault("crash:at")

    def test_unknown_kind_via_grammar(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault("gremlins")

    def test_plan_from_args_uses_sweep_seed(self):
        plan = plan_from_args(["crash:at=0", "cache_corrupt"], seed=42)
        assert plan.seed == 42
        assert len(plan.specs) == 2
        assert plan_from_args([], seed=None).seed == 0
