"""Chaos suite: drive every fault class through a real 8-job sweep.

Each test asserts the three recovery invariants from docs/robustness.md:
the sweep runs to completion, surviving jobs carry correct values, and
the damage is visible in the ledger/manifest rather than silent.
"""

import warnings

import pytest

from repro import engine
from repro.engine import JobSpec, WorkerCrashError, execute
from repro.faults import FaultPlan, FaultSpec
from repro.obs.events import RecordingSink
from repro.obs.manifest import build_manifest
from repro.obs.stats import aggregate_events

N_JOBS = 8


def _jobs(runner="test.echo", **kwargs):
    return [
        JobSpec(runner=runner, kwargs=dict(kwargs, v=i), index=i, seed=100 + i)
        for i in range(N_JOBS)
    ]


def _expected_values():
    return [{"v": i, "seed": 100 + i} for i in range(N_JOBS)]


class TestCrashFault:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_sweep_survives_injected_crash(self, workers):
        plan = FaultPlan.single("crash", at=(3,))
        sink = RecordingSink()
        result = execute(
            _jobs(), workers=workers, retries=0, faults=plan, events=sink
        )
        assert result.failed_count == 1 and result.ok_count == N_JOBS - 1
        assert result.partial
        failure = result.outcomes[3].failure
        assert failure.error_type == "WorkerCrashError"
        assert not failure.transient
        # Survivors are untouched and correct.
        expected = _expected_values()
        for i, outcome in enumerate(result.outcomes):
            if i != 3:
                assert outcome.value == expected[i]
        # The crash is in the ledger and the manifest, not silent.
        ends = {e["index"]: e for e in sink.of_type("job_end")}
        assert ends[3]["status"] == "failed"
        assert ends[3]["error_type"] == "WorkerCrashError"
        manifest = build_manifest(result, code_version="v")
        assert manifest["partial"] is True
        assert manifest["counts"]["failed"] == 1
        assert (
            manifest["jobs"][3]["failure"]["error_type"] == "WorkerCrashError"
        )

    def test_parallel_crash_reports_exit_code(self):
        from repro.faults.inject import CRASH_EXIT_CODE

        plan = FaultPlan.single("crash", at=(1,))
        result = execute(_jobs(), workers=2, retries=0, faults=plan)
        assert str(CRASH_EXIT_CODE) in result.outcomes[1].failure.error

    def test_serial_crash_is_simulated_not_fatal(self):
        # Serial mode must not os._exit the orchestrating process.
        plan = FaultPlan.single("crash", at=(0,))
        result = execute(_jobs(), workers=1, retries=0, faults=plan)
        assert result.outcomes[0].failure.error_type == "WorkerCrashError"
        assert "serial" in result.outcomes[0].failure.error


class TestCrashRunner:
    """test.crash kills real workers without any fault plan attached."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_pool_does_not_deadlock_on_dead_worker(self, workers):
        jobs = [
            JobSpec(runner="test.crash" if i == 2 else "test.echo",
                    kwargs={} if i == 2 else {"v": i}, index=i)
            for i in range(N_JOBS)
        ]
        result = execute(jobs, workers=workers, retries=0)
        assert result.failed_count == 1
        assert result.outcomes[2].failure.error_type == "WorkerCrashError"
        assert result.ok_count == N_JOBS - 1


class TestHangFault:
    def test_hang_reclaimed_by_job_timeout(self):
        plan = FaultPlan.single("hang", at=(5,), hang_s=30.0)
        sink = RecordingSink()
        result = execute(
            _jobs(), workers=2, retries=0, timeout_s=0.5,
            faults=plan, events=sink,
        )
        assert result.outcomes[5].failure.error_type == "JobTimeoutError"
        assert result.ok_count == N_JOBS - 1
        assert any(
            e["index"] == 5 for e in sink.of_type("job_timeout")
        )

    def test_hang_retried_then_succeeds(self):
        # times=1: only the first attempt hangs; the retry runs clean.
        plan = FaultPlan.single("hang", at=(5,), hang_s=30.0, times=1)
        result = execute(
            _jobs(), workers=2, retries=1, backoff_s=0.01, timeout_s=0.5,
            faults=plan,
        )
        assert result.failed_count == 0
        assert result.outcomes[5].attempts == 2


class TestWatchdog:
    def test_sigalrm_proof_hang_killed_parent_side(self, monkeypatch):
        import repro.engine.pool as pool

        monkeypatch.setattr(pool, "_WATCHDOG_GRACE_S", 1.0)
        jobs = [
            JobSpec(runner="test.hang" if i == 0 else "test.echo",
                    kwargs={"hang_s": 60.0} if i == 0 else {"v": i}, index=i)
            for i in range(4)
        ]
        result = execute(jobs, workers=2, retries=0, timeout_s=0.3)
        failure = result.outcomes[0].failure
        assert failure.error_type == "WorkerCrashError"
        assert "watchdog" in failure.error
        assert result.ok_count == 3


class TestTransientFault:
    def test_retry_budget_absorbs_transients(self):
        plan = FaultPlan.single("transient", times=1)
        sink = RecordingSink()
        result = execute(
            _jobs(), workers=2, retries=1, backoff_s=0.0,
            faults=plan, events=sink,
        )
        assert result.failed_count == 0
        assert all(o.attempts == 2 for o in result.outcomes)
        assert len(sink.of_type("job_retry")) == N_JOBS
        assert result.values() == _expected_values()

    def test_exhausted_retries_fail_structurally(self):
        plan = FaultPlan.single("transient", times=5)
        result = execute(_jobs(), workers=1, retries=1, backoff_s=0.0, faults=plan)
        assert result.failed_count == N_JOBS
        failure = result.outcomes[0].failure
        assert failure.error_type == "InjectedTransientError"
        assert failure.transient
        assert failure.attempts == 2


class TestCacheCorruptFault:
    def test_corrupt_entries_quarantined_and_recomputed(self, tmp_path):
        cache = engine.ResultCache(tmp_path / "cache")
        clean = execute(_jobs(), workers=1, cache=cache)
        assert clean.ok_count == N_JOBS
        plan = FaultPlan.single("cache_corrupt", at=(2, 6))
        sink = RecordingSink()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = execute(
                _jobs(), workers=1, cache=cache, faults=plan, events=sink
            )
        assert result.cached_count == N_JOBS - 2
        assert result.ok_count == 2  # recomputed, not failed
        assert result.failed_count == 0
        assert result.values() == clean.values()
        quarantined = sorted(cache.quarantine_dir.iterdir())
        assert len(quarantined) == 2
        assert len(sink.of_type("cache_quarantine")) == 2
        assert sum("quarantined" in str(w.message) for w in caught) == 2
        # Recompute repaired the cache: a third sweep is all hits.
        repaired = execute(_jobs(), workers=1, cache=cache)
        assert repaired.cached_count == N_JOBS


class TestCachePutFailFault:
    def test_failed_put_keeps_result_and_is_recorded(self, tmp_path):
        cache = engine.ResultCache(tmp_path / "cache")
        plan = FaultPlan.single("cache_put_fail", at=(4,))
        sink = RecordingSink()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = execute(
                _jobs(), workers=1, cache=cache, faults=plan, events=sink
            )
        assert result.ok_count == N_JOBS
        assert result.values() == _expected_values()
        assert len(sink.of_type("cache_put_error")) == 1
        assert any("cache put failed" in str(w.message) for w in caught)
        # Only the injected entry is missing from disk.
        assert len(cache) == N_JOBS - 1


class TestLedgerTearFault:
    def test_torn_ledger_still_reconciles(self, tmp_path):
        from repro.obs.events import EventLog, read_events

        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        plan = FaultPlan.single("ledger_tear", at=(9,))
        result = execute(_jobs(), workers=1, faults=plan, events=log)
        log.close()
        assert result.ok_count == N_JOBS  # the sweep itself is unharmed
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            events = read_events(path)
        assert any("torn" in str(w.message) for w in caught)
        assert [e["seq"] for e in events] == list(range(1, 9))
        stats = aggregate_events(events)  # partial but well-formed
        assert stats["overall"]["sweeps"] == 1


class TestMaxFailures:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_budget_exhaustion_skips_remaining_jobs(self, workers):
        sink = RecordingSink()
        jobs = [JobSpec(runner="test.fail", index=i) for i in range(N_JOBS)]
        result = execute(
            jobs, workers=workers, retries=0, max_failures=1, events=sink
        )
        assert result.partial
        assert result.failed_count >= 2  # budget is "more than N"
        assert result.skipped_count >= 1
        assert result.failed_count + result.skipped_count == N_JOBS
        skipped = sink.of_type("job_skipped")
        assert len(skipped) == result.skipped_count
        assert all("max_failures" in e["reason"] for e in skipped)
        manifest = build_manifest(result, code_version="v")
        assert manifest["partial"] is True
        assert manifest["counts"]["skipped"] == result.skipped_count

    def test_sweepspec_max_failures_is_honored(self):
        spec = engine.SweepSpec(
            runners=["test.fail"], repetitions=N_JOBS, max_failures=0
        )
        result = execute(spec, workers=1, retries=0)
        assert result.failed_count == 1
        assert result.skipped_count == N_JOBS - 1


class TestInjectionDisabledIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_empty_plan_is_bit_identical_to_no_plan(self, workers):
        jobs = [
            JobSpec(runner="test.echo", kwargs={"v": i}, index=i, seed=i)
            for i in range(N_JOBS)
        ]
        bare = execute(jobs, workers=workers)
        planned = execute(jobs, workers=workers, faults=FaultPlan())
        assert bare.values() == planned.values()
        assert [o.status for o in bare.outcomes] == [
            o.status for o in planned.outcomes
        ]

    def test_zero_rate_plan_never_fires(self):
        from repro.faults import FAULT_KINDS

        plan = FaultPlan(
            specs=tuple(FaultSpec(kind=k, rate=0.0) for k in sorted(FAULT_KINDS))
        )
        result = execute(_jobs(), workers=1, faults=plan)
        assert result.ok_count == N_JOBS
        assert result.values() == _expected_values()


class TestBatchDispatchChaos:
    """The fault matrix replayed through the batch-lease executor."""

    def _array_jobs(self, n=6):
        # Large enough to ride the shared-memory rings, so a crash
        # exercises segment cleanup, not just pipe teardown.
        return [
            JobSpec(
                runner="test.array",
                kwargs={"n": 20_000},
                index=i,
                seed=100 + i,
                label=f"arr{i}",
            )
            for i in range(n)
        ]

    def test_crash_under_batch_is_isolated_and_leak_free(self):
        from repro.engine.shm import active_segments

        plan = FaultPlan.single("crash", at=(3,))
        result = execute(
            self._array_jobs(),
            workers=2,
            dispatch="batch",
            lease_size=3,
            retries=0,
            faults=plan,
        )
        assert result.failed_count == 1 and result.ok_count == 5
        assert (
            result.outcomes[3].failure.error_type == "WorkerCrashError"
        )
        assert active_segments() == ()

    def test_repeated_crashes_drain_without_leaks(self):
        from repro.engine.shm import active_segments

        plan = FaultPlan.single("crash", at=(0, 2, 4))
        result = execute(
            self._array_jobs(),
            workers=2,
            dispatch="batch",
            lease_size=2,
            retries=0,
            faults=plan,
        )
        assert result.failed_count == 3 and result.ok_count == 3
        assert active_segments() == ()

    def test_budget_abort_under_batch_skips_and_cleans_up(self):
        from repro.engine.shm import active_segments

        jobs = [JobSpec(runner="test.fail", index=i) for i in range(8)]
        result = execute(
            jobs,
            workers=2,
            dispatch="batch",
            lease_size=2,
            retries=0,
            max_failures=1,
        )
        assert result.partial
        assert result.failed_count + result.skipped_count == 8
        assert active_segments() == ()

    def test_transient_faults_retry_identically_under_batch(self):
        plan = FaultPlan.single("transient", rate=0.5, seed=3)
        jobs = [
            JobSpec(runner="test.echo", kwargs={"v": i}, index=i, seed=i)
            for i in range(N_JOBS)
        ]
        per_job = execute(
            jobs, workers=2, dispatch="per-job", retries=2, faults=plan
        )
        batched = execute(
            jobs, workers=2, dispatch="batch", retries=2, faults=plan
        )
        assert per_job.values() == batched.values()
        assert per_job.failed_count == batched.failed_count == 0
