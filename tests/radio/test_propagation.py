"""Tests for repro.radio.propagation."""

import numpy as np
import pytest

from repro.radio.bands import BandClass, LTE_1900, NR_N71, NR_N261
from repro.radio.propagation import (
    BlockageModel,
    PathLossModel,
    free_space_path_loss_db,
    los_probability,
)


class TestFreeSpace:
    def test_known_value(self):
        # FSPL(1 km, 1 GHz) = 20*3 + 0 + 32.44 = 92.44 dB.
        assert free_space_path_loss_db(1000.0, 1.0) == pytest.approx(92.44, abs=0.01)

    def test_doubles_distance_adds_6db(self):
        a = free_space_path_loss_db(100.0, 28.0)
        b = free_space_path_loss_db(200.0, 28.0)
        assert b - a == pytest.approx(6.02, abs=0.02)

    def test_higher_frequency_more_loss(self):
        assert free_space_path_loss_db(100.0, 39.0) > free_space_path_loss_db(100.0, 0.6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 1.0)
        with pytest.raises(ValueError):
            free_space_path_loss_db(1.0, -1.0)


class TestLosProbability:
    def test_close_range_certain(self):
        assert los_probability(10.0, BandClass.MMWAVE) == 1.0

    def test_decreases_with_distance(self):
        p = [los_probability(d, BandClass.MMWAVE) for d in (20, 50, 100, 200)]
        assert all(a >= b for a, b in zip(p, p[1:]))

    def test_lowband_always_usable(self):
        assert los_probability(5000.0, BandClass.LOW) == 1.0

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            los_probability(-1.0, BandClass.MMWAVE)


class TestPathLoss:
    def test_monotone_in_distance(self):
        model = PathLossModel(NR_N261)
        losses = [model.path_loss_db(d) for d in (10, 50, 100, 300)]
        assert all(a < b for a, b in zip(losses, losses[1:]))

    def test_nlos_exceeds_los(self):
        model = PathLossModel(NR_N261)
        assert model.path_loss_db(100.0, los=False) > model.path_loss_db(100.0, los=True)

    def test_mmwave_loses_more_than_lowband(self):
        mm = PathLossModel(NR_N261).path_loss_db(200.0)
        lb = PathLossModel(NR_N71).path_loss_db(200.0)
        assert mm > lb

    def test_shadowing_varies_with_rng(self):
        model = PathLossModel(LTE_1900)
        rng = np.random.default_rng(0)
        values = {model.path_loss_db(100.0, rng=rng) for _ in range(5)}
        assert len(values) == 5

    def test_zero_distance_raises(self):
        with pytest.raises(ValueError):
            PathLossModel(NR_N261).path_loss_db(0.0)


class TestBlockage:
    def test_stationary_rarely_blocks(self):
        model = BlockageModel()
        rng = np.random.default_rng(0)
        series = model.simulate(300.0, speed_mps=0.0, rng=rng)
        assert series.mean() < 0.01

    def test_walking_blocks_sometimes(self):
        model = BlockageModel()
        rng = np.random.default_rng(1)
        series = model.simulate(600.0, speed_mps=1.5, rng=rng)
        assert 0.01 < series.mean() < 0.6

    def test_faster_motion_blocks_more(self):
        model = BlockageModel()
        slow = model.simulate(600.0, 0.5, rng=np.random.default_rng(2)).mean()
        fast = model.simulate(600.0, 3.0, rng=np.random.default_rng(2)).mean()
        assert fast > slow

    def test_recovery_happens(self):
        model = BlockageModel(recovery_s=1.0)
        rng = np.random.default_rng(3)
        state = True
        steps_to_clear = 0
        while state and steps_to_clear < 1000:
            state = model.step(state, 0.0, 1.0, rng)
            steps_to_clear += 1
        assert steps_to_clear < 50

    def test_invalid_inputs(self):
        model = BlockageModel()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.step(False, -1.0, 1.0, rng)
        with pytest.raises(ValueError):
            model.step(False, 1.0, 0.0, rng)
        with pytest.raises(ValueError):
            model.simulate(0.0, 1.0)
