"""Tests for repro.radio.signal."""

import numpy as np
import pytest

from repro.radio.bands import LTE_1900, NR_N71, NR_N261
from repro.radio.signal import (
    RSRP_MAX_DBM,
    RSRP_MIN_DBM,
    RsrpProcess,
    rsrp_at_distance,
)


class TestRsrpAtDistance:
    def test_within_clamp_range(self):
        for d in (10.0, 100.0, 1000.0):
            value = rsrp_at_distance(NR_N261, d)
            assert RSRP_MIN_DBM <= value <= RSRP_MAX_DBM

    def test_decreases_with_distance(self):
        near = rsrp_at_distance(NR_N261, 30.0)
        far = rsrp_at_distance(NR_N261, 300.0)
        assert near > far

    def test_field_typical_mmwave_values(self):
        # Fig. 13's x-axis: mmWave RSRP roughly -110..-60 dBm.
        assert -85 <= rsrp_at_distance(NR_N261, 50.0) <= -60
        assert -110 <= rsrp_at_distance(NR_N261, 300.0) <= -80

    def test_lowband_carries_further(self):
        assert rsrp_at_distance(NR_N71, 2000.0) > rsrp_at_distance(NR_N261, 2000.0)


class TestRsrpProcess:
    def test_reproducible_with_seed(self):
        a = RsrpProcess(NR_N261, seed=4).simulate(np.full(50, 100.0), speed_mps=1.0)
        b = RsrpProcess(NR_N261, seed=4).simulate(np.full(50, 100.0), speed_mps=1.0)
        assert np.array_equal(a, b)

    def test_mmwave_more_volatile_than_lte(self):
        distances = np.full(600, 150.0)
        mm = RsrpProcess(NR_N261, seed=1).simulate(distances, speed_mps=1.5)
        lte = RsrpProcess(LTE_1900, seed=1).simulate(distances, speed_mps=1.5)
        assert np.std(mm) > np.std(lte)

    def test_stationary_mmwave_stable(self):
        series = RsrpProcess(NR_N261, seed=2).simulate(np.full(300, 80.0), speed_mps=0.0)
        # Controlled LoS holds (paper's power experiments): no deep fades.
        assert np.percentile(series, 5) > np.median(series) - 15.0

    def test_blockage_produces_deep_fades_when_walking(self):
        series = RsrpProcess(NR_N261, seed=3, dt_s=1.0).simulate(
            np.full(900, 80.0), speed_mps=2.0
        )
        median = np.median(series)
        assert series.min() < median - 15.0

    def test_blockage_ramp_is_gradual(self):
        # Consecutive-sample drops stay well below the full fade depth.
        process = RsrpProcess(NR_N261, seed=5, dt_s=1.0)
        series = process.simulate(np.full(900, 80.0), speed_mps=2.0)
        steps = np.abs(np.diff(series))
        assert np.max(steps) < 35.0

    def test_clamped_to_range(self):
        series = RsrpProcess(NR_N261, seed=6).simulate(np.full(100, 5000.0))
        assert series.min() >= RSRP_MIN_DBM
        assert series.max() <= RSRP_MAX_DBM

    def test_empty_distances_raise(self):
        with pytest.raises(ValueError):
            RsrpProcess(NR_N261).simulate(np.array([]))

    def test_invalid_dt_raises(self):
        with pytest.raises(ValueError):
            RsrpProcess(NR_N261, dt_s=0.0)
