"""Tests for repro.radio.towers."""

import pytest

from repro.radio.bands import LTE_1900, NR_N71, NR_N261
from repro.radio.towers import Tower, TowerGrid


class TestTower:
    def test_distance(self):
        tower = Tower("t0", 0.0, 0.0, NR_N261)
        assert tower.distance_to(3.0, 4.0) == pytest.approx(5.0)

    def test_coverage_from_band(self):
        tower = Tower("t0", 0.0, 0.0, NR_N261)
        assert tower.coverage_m == pytest.approx(350.0)


class TestTowerGrid:
    def test_serving_tower_is_nearest(self):
        grid = TowerGrid()
        grid.add(Tower("a", 0.0, 0.0, NR_N261))
        grid.add(Tower("b", 200.0, 0.0, NR_N261))
        serving = grid.serving_tower(150.0, 0.0, NR_N261)
        assert serving is not None
        assert serving[0].tower_id == "b"
        assert serving[1] == pytest.approx(50.0)

    def test_out_of_coverage_returns_none(self):
        grid = TowerGrid()
        grid.add(Tower("a", 0.0, 0.0, NR_N261))
        assert grid.serving_tower(5000.0, 0.0, NR_N261) is None

    def test_band_filtering(self):
        grid = TowerGrid()
        grid.add(Tower("mm", 0.0, 0.0, NR_N261))
        grid.add(Tower("lb", 10.0, 0.0, NR_N71))
        serving = grid.serving_tower(0.0, 0.0, NR_N71)
        assert serving[0].tower_id == "lb"

    def test_duplicate_id_rejected(self):
        grid = TowerGrid()
        grid.add(Tower("a", 0.0, 0.0, NR_N261))
        with pytest.raises(ValueError):
            grid.add(Tower("a", 1.0, 1.0, NR_N261))

    def test_uniform_grid_count(self):
        grid = TowerGrid.uniform_grid(LTE_1900, extent_m=2000.0, spacing_m=1000.0)
        assert len(grid.towers) == 4

    def test_uniform_grid_covers_center(self):
        grid = TowerGrid.uniform_grid(NR_N71, extent_m=4000.0, spacing_m=2000.0)
        assert grid.serving_tower(2000.0, 2000.0, NR_N71) is not None

    def test_along_route_count_and_spread(self):
        waypoints = [(0.0, 0.0), (10000.0, 0.0)]
        grid = TowerGrid.along_route(NR_N71, waypoints, count=5, seed=1)
        xs = sorted(t.x_m for t in grid.towers)
        assert len(xs) == 5
        # Roughly even spread along the line.
        assert xs[0] < 2000.0 and xs[-1] > 8000.0

    def test_along_route_invalid_inputs(self):
        with pytest.raises(ValueError):
            TowerGrid.along_route(NR_N71, [(0, 0)], count=2)
        with pytest.raises(ValueError):
            TowerGrid.along_route(NR_N71, [(0, 0), (1, 1)], count=0)


class TestCityScaleGrid:
    """Scale-exposed fixes: id-set membership + chunked distances."""

    def test_constructor_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            TowerGrid(
                towers=[
                    Tower("a", 0.0, 0.0, NR_N261),
                    Tower("a", 1.0, 1.0, NR_N261),
                ]
            )

    def test_add_after_constructed_towers_sees_them(self):
        grid = TowerGrid(towers=[Tower("a", 0.0, 0.0, NR_N261)])
        with pytest.raises(ValueError):
            grid.add(Tower("a", 5.0, 5.0, NR_N261))
        grid.add(Tower("b", 5.0, 5.0, NR_N261))
        assert len(grid.towers) == 2

    def test_large_grid_builds(self):
        import time

        start = time.perf_counter()
        grid = TowerGrid.uniform_grid(
            NR_N261, extent_m=12000.0, spacing_m=300.0
        )
        elapsed = time.perf_counter() - start
        assert len(grid.towers) == 1600
        # The old per-add list scan was quadratic; the set build of a
        # city-scale grid must stay well under a second.
        assert elapsed < 1.0

    def test_chunked_serving_distances_bit_identical(self, monkeypatch):
        import numpy as np

        grid = TowerGrid.uniform_grid(NR_N71, extent_m=8000.0, spacing_m=1000.0)
        rng = np.random.default_rng(7)
        x = rng.uniform(-500.0, 8500.0, 5000)
        y = rng.uniform(-500.0, 8500.0, 5000)
        one_chunk = grid.serving_distances(x, y, NR_N71, default_m=123.0)
        monkeypatch.setattr(TowerGrid, "_CHUNK_ELEMS", 257)
        many_chunks = grid.serving_distances(x, y, NR_N71, default_m=123.0)
        assert np.array_equal(one_chunk, many_chunks)

    def test_serving_distances_preserves_input_shape(self):
        import numpy as np

        grid = TowerGrid.uniform_grid(NR_N71, extent_m=4000.0, spacing_m=2000.0)
        x = np.linspace(0.0, 4000.0, 24).reshape(2, 3, 4)
        y = np.linspace(4000.0, 0.0, 24).reshape(2, 3, 4)
        out = grid.serving_distances(x, y, NR_N71, default_m=50.0)
        assert out.shape == (2, 3, 4)
        flat = grid.serving_distances(x.ravel(), y.ravel(), NR_N71, 50.0)
        assert np.array_equal(out.ravel(), flat)

    def test_serving_distances_matches_pointwise(self):
        import numpy as np

        grid = TowerGrid.uniform_grid(NR_N71, extent_m=4000.0, spacing_m=2000.0)
        rng = np.random.default_rng(11)
        x = rng.uniform(-6000.0, 6000.0, 200)
        y = rng.uniform(-6000.0, 6000.0, 200)
        batch = grid.serving_distances(x, y, NR_N71, default_m=777.0)
        for i in range(x.size):
            serving = grid.serving_tower(float(x[i]), float(y[i]), NR_N71)
            expected = 777.0 if serving is None else serving[1]
            assert batch[i] == expected
