"""Tests for repro.radio.towers."""

import pytest

from repro.radio.bands import LTE_1900, NR_N71, NR_N261
from repro.radio.towers import Tower, TowerGrid


class TestTower:
    def test_distance(self):
        tower = Tower("t0", 0.0, 0.0, NR_N261)
        assert tower.distance_to(3.0, 4.0) == pytest.approx(5.0)

    def test_coverage_from_band(self):
        tower = Tower("t0", 0.0, 0.0, NR_N261)
        assert tower.coverage_m == pytest.approx(350.0)


class TestTowerGrid:
    def test_serving_tower_is_nearest(self):
        grid = TowerGrid()
        grid.add(Tower("a", 0.0, 0.0, NR_N261))
        grid.add(Tower("b", 200.0, 0.0, NR_N261))
        serving = grid.serving_tower(150.0, 0.0, NR_N261)
        assert serving is not None
        assert serving[0].tower_id == "b"
        assert serving[1] == pytest.approx(50.0)

    def test_out_of_coverage_returns_none(self):
        grid = TowerGrid()
        grid.add(Tower("a", 0.0, 0.0, NR_N261))
        assert grid.serving_tower(5000.0, 0.0, NR_N261) is None

    def test_band_filtering(self):
        grid = TowerGrid()
        grid.add(Tower("mm", 0.0, 0.0, NR_N261))
        grid.add(Tower("lb", 10.0, 0.0, NR_N71))
        serving = grid.serving_tower(0.0, 0.0, NR_N71)
        assert serving[0].tower_id == "lb"

    def test_duplicate_id_rejected(self):
        grid = TowerGrid()
        grid.add(Tower("a", 0.0, 0.0, NR_N261))
        with pytest.raises(ValueError):
            grid.add(Tower("a", 1.0, 1.0, NR_N261))

    def test_uniform_grid_count(self):
        grid = TowerGrid.uniform_grid(LTE_1900, extent_m=2000.0, spacing_m=1000.0)
        assert len(grid.towers) == 4

    def test_uniform_grid_covers_center(self):
        grid = TowerGrid.uniform_grid(NR_N71, extent_m=4000.0, spacing_m=2000.0)
        assert grid.serving_tower(2000.0, 2000.0, NR_N71) is not None

    def test_along_route_count_and_spread(self):
        waypoints = [(0.0, 0.0), (10000.0, 0.0)]
        grid = TowerGrid.along_route(NR_N71, waypoints, count=5, seed=1)
        xs = sorted(t.x_m for t in grid.towers)
        assert len(xs) == 5
        # Roughly even spread along the line.
        assert xs[0] < 2000.0 and xs[-1] > 8000.0

    def test_along_route_invalid_inputs(self):
        with pytest.raises(ValueError):
            TowerGrid.along_route(NR_N71, [(0, 0)], count=2)
        with pytest.raises(ValueError):
            TowerGrid.along_route(NR_N71, [(0, 0), (1, 1)], count=0)
