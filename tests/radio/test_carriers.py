"""Tests for repro.radio.carriers."""

import pytest

from repro.radio.bands import LTE_1900, NR_N261, NR_N71
from repro.radio.carriers import (
    Carrier,
    CarrierNetwork,
    DeploymentMode,
    NETWORKS,
    get_network,
    list_networks,
)


class TestNetworks:
    def test_six_networks_configured(self):
        assert len(NETWORKS) == 6

    def test_verizon_mmwave_peaks(self):
        net = get_network("verizon-nsa-mmwave")
        # Paper: over 3 Gbps DL, ~220 Mbps UL (section 3.2).
        assert net.peak_dl_mbps > 3000
        assert 200 <= net.peak_ul_mbps <= 250

    def test_sa_half_of_nsa(self):
        # Paper: SA low-band achieves about half of NSA (section 3.2).
        sa = get_network("tmobile-sa-lowband")
        nsa = get_network("tmobile-nsa-lowband")
        assert sa.peak_dl_mbps == pytest.approx(nsa.peak_dl_mbps / 2.0, rel=0.15)
        assert not sa.supports_ca

    def test_rtt_floor_ordering(self):
        # mmWave (~6 ms) < low-band (+6-8 ms) < LTE (+6-15 ms).
        mm = get_network("verizon-nsa-mmwave").rtt_floor_ms
        lb = get_network("verizon-nsa-lowband").rtt_floor_ms
        lte = get_network("verizon-lte").rtt_floor_ms
        assert mm < lb < lte
        assert mm == pytest.approx(6.0)
        assert 6.0 <= lb - mm <= 8.0

    def test_verizon_lowband_uses_dss(self):
        assert get_network("verizon-nsa-lowband").dss

    def test_labels(self):
        assert get_network("verizon-lte").label == "Verizon 4G"
        assert "mmWave" in get_network("verizon-nsa-mmwave").label

    def test_is_5g_flags(self):
        assert get_network("tmobile-sa-lowband").is_5g
        assert not get_network("tmobile-lte").is_5g

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_network("sprint-6g")

    def test_list_filter_by_carrier(self):
        tmobile = list_networks(carrier=Carrier.TMOBILE)
        assert len(tmobile) == 3
        assert all(n.carrier is Carrier.TMOBILE for n in tmobile)

    def test_list_filter_by_mode(self):
        sa = list_networks(mode=DeploymentMode.SA)
        assert [n.key for n in sa] == ["tmobile-sa-lowband"]

    def test_lte_mode_requires_lte_band(self):
        with pytest.raises(ValueError):
            CarrierNetwork(
                key="bad",
                carrier=Carrier.VERIZON,
                mode=DeploymentMode.LTE,
                band=NR_N71,
                peak_dl_mbps=100,
                peak_ul_mbps=10,
                rtt_floor_ms=20,
            )

    def test_valid_custom_network(self):
        net = CarrierNetwork(
            key="custom",
            carrier=Carrier.TMOBILE,
            mode=DeploymentMode.NSA,
            band=NR_N261,
            peak_dl_mbps=1000,
            peak_ul_mbps=100,
            rtt_floor_ms=8,
        )
        assert net.is_mmwave
