"""Tests for repro.radio.bands."""

import pytest

from repro.radio.bands import (
    ALL_BANDS,
    Band,
    BandClass,
    LTE_1900,
    NR_N71,
    NR_N260,
    NR_N261,
    Technology,
    get_band,
)


class TestBandDefinitions:
    def test_mmwave_bands_classified(self):
        assert NR_N261.is_mmwave
        assert NR_N260.is_mmwave
        assert not NR_N71.is_mmwave

    def test_mmwave_frequencies_from_paper(self):
        # n261 is the 28 GHz band, n260 the 39 GHz band (section 2).
        assert NR_N261.center_ghz == pytest.approx(28.0)
        assert NR_N260.center_ghz == pytest.approx(39.0)

    def test_n71_is_600mhz(self):
        assert NR_N71.center_ghz == pytest.approx(0.6)
        assert NR_N71.band_class is BandClass.LOW

    def test_mmwave_symbol_shorter_than_lowband(self):
        # The paper's latency explanation: higher subcarrier spacing ->
        # shorter OFDM symbols on mmWave (section 3.2).
        assert NR_N261.symbol_duration_us < NR_N71.symbol_duration_us

    def test_mmwave_air_latency_lower(self):
        assert NR_N261.air_latency_ms < NR_N71.air_latency_ms

    def test_slot_duration_scaling(self):
        assert NR_N71.slot_duration_ms == pytest.approx(1.0)
        assert NR_N261.slot_duration_ms == pytest.approx(0.125)

    def test_lowband_coverage_far_exceeds_mmwave(self):
        assert NR_N71.coverage_km > 10 * NR_N261.coverage_km

    def test_lte_band_technology(self):
        assert LTE_1900.technology is Technology.LTE

    def test_get_band_case_insensitive(self):
        assert get_band("N261") is NR_N261

    def test_get_band_unknown_raises(self):
        with pytest.raises(KeyError):
            get_band("n999")

    def test_all_bands_unique_names(self):
        names = [b.name for b in ALL_BANDS]
        assert len(names) == len(set(names))

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            Band(
                name="bad",
                technology=Technology.NR,
                band_class=BandClass.LOW,
                center_ghz=-1.0,
                bandwidth_mhz=10.0,
                subcarrier_khz=15.0,
                coverage_km=1.0,
            )
