"""Tests for repro.radio.link."""

import pytest

from repro.radio.carriers import get_network
from repro.radio.link import (
    MODEMS,
    LinkBudget,
    Modem,
    spectral_efficiency,
)


class TestSpectralEfficiency:
    def test_zero_below_floor(self):
        assert spectral_efficiency(-20.0) == 0.0

    def test_monotone(self):
        values = [spectral_efficiency(s) for s in (-5, 0, 10, 20, 30)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_capped(self):
        assert spectral_efficiency(60.0) == pytest.approx(7.2)


class TestModems:
    def test_appendix_a1_cc_counts(self):
        assert MODEMS["X52"].dl_carriers == 4  # PX5
        assert MODEMS["X55"].dl_carriers == 8  # S20U

    def test_invalid_modem(self):
        with pytest.raises(ValueError):
            Modem(name="bad", dl_carriers=0, ul_carriers=1, max_dl_mbps=1, max_ul_mbps=1)


class TestLinkBudget:
    def test_mmwave_peak_at_good_signal(self):
        link = LinkBudget(get_network("verizon-nsa-mmwave"), MODEMS["X55"])
        assert link.capacity_mbps(-72.0) == pytest.approx(3100.0)

    def test_px5_vs_s20u_fig23(self):
        # Fig. 23: S20U (8CC) ~3+ Gbps, PX5 (4CC) ~2.2 Gbps.
        net = get_network("verizon-nsa-mmwave")
        s20u = LinkBudget(net, MODEMS["X55"]).capacity_mbps(-72.0)
        px5 = LinkBudget(net, MODEMS["X52"]).capacity_mbps(-72.0)
        assert s20u > px5
        assert px5 == pytest.approx(2200.0, rel=0.1)

    def test_capacity_degrades_with_rsrp(self):
        link = LinkBudget(get_network("verizon-nsa-mmwave"), MODEMS["X55"])
        caps = [link.capacity_mbps(r) for r in (-75, -90, -100, -110, -120)]
        assert all(a >= b for a, b in zip(caps, caps[1:]))
        assert caps[-1] < caps[0] * 0.05

    def test_uplink_below_downlink(self):
        link = LinkBudget(get_network("verizon-nsa-mmwave"), MODEMS["X55"])
        assert link.capacity_mbps(-75.0, downlink=False) < link.capacity_mbps(-75.0)

    def test_sa_below_nsa(self):
        # Paper: SA reaches ~half of NSA (no carrier aggregation).
        sa = LinkBudget(get_network("tmobile-sa-lowband"), MODEMS["X55"])
        nsa = LinkBudget(get_network("tmobile-nsa-lowband"), MODEMS["X55"])
        assert sa.capacity_mbps(-85.0) < nsa.capacity_mbps(-85.0)

    def test_capacity_never_negative(self):
        link = LinkBudget(get_network("verizon-lte"), MODEMS["X50"])
        assert link.capacity_mbps(-140.0) == 0.0

    def test_series_matches_scalar(self):
        link = LinkBudget(get_network("verizon-nsa-mmwave"), MODEMS["X55"])
        series = link.capacity_series_mbps([-80.0, -100.0])
        assert series[0] == pytest.approx(link.capacity_mbps(-80.0))
        assert series[1] == pytest.approx(link.capacity_mbps(-100.0))
