"""Tests for repro.net.iperf."""

import pytest

from repro.net.iperf import IperfUdp
from repro.power.device import get_device
from repro.radio.carriers import get_network


@pytest.fixture
def iperf():
    return IperfUdp(
        network=get_network("verizon-nsa-mmwave"),
        device=get_device("S20U"),
        seed=5,
    )


class TestIperf:
    def test_target_achieved_when_capacity_allows(self, iperf):
        result = iperf.run(100.0, duration_s=20.0)
        assert result.mean_mbps == pytest.approx(100.0, rel=0.05)

    def test_capacity_caps_excessive_target(self, iperf):
        result = iperf.run(50000.0, duration_s=20.0)
        assert result.mean_mbps < 4000.0

    def test_zero_target(self, iperf):
        result = iperf.run(0.0, duration_s=5.0)
        assert result.mean_mbps == 0.0

    def test_rsrp_recorded(self, iperf):
        result = iperf.run(100.0, duration_s=10.0)
        assert result.rsrp_dbm.shape == result.achieved_mbps.shape
        assert result.rsrp_dbm.max() < -50.0

    def test_duration(self, iperf):
        result = iperf.run(10.0, duration_s=7.0)
        assert result.duration_s == pytest.approx(7.0)

    def test_uplink_lower_capacity(self, iperf):
        dl = iperf.run(10000.0, duration_s=10.0, downlink=True).mean_mbps
        ul = iperf.run(10000.0, duration_s=10.0, downlink=False).mean_mbps
        assert ul < dl

    def test_invalid_args(self, iperf):
        with pytest.raises(ValueError):
            iperf.run(-1.0)
        with pytest.raises(ValueError):
            iperf.run(10.0, duration_s=0.0)
        with pytest.raises(ValueError):
            IperfUdp(
                network=get_network("verizon-lte"),
                device=get_device("S20U"),
                tower_distance_m=0.0,
            )
