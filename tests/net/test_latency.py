"""Tests for repro.net.latency (Fig. 1/2/5 behaviour)."""

import pytest

from repro.net.latency import LatencyModel, WIRED_MS_PER_KM
from repro.radio.carriers import get_network


class TestLatencyModel:
    def test_floor_at_zero_distance(self):
        model = LatencyModel(get_network("verizon-nsa-mmwave"), seed=0)
        assert model.base_rtt_ms(0.0) == pytest.approx(6.0)

    def test_rtt_doubles_near_320km(self):
        # Fig. 2: RTT doubles as distance reaches ~320 km.
        model = LatencyModel(get_network("verizon-nsa-mmwave"), seed=0)
        floor = model.base_rtt_ms(0.0)
        doubling_km = floor / WIRED_MS_PER_KM
        assert doubling_km == pytest.approx(320.0, rel=0.15)

    def test_coast_to_coast_about_60ms(self):
        model = LatencyModel(get_network("verizon-nsa-mmwave"), seed=0)
        assert model.base_rtt_ms(2500.0) == pytest.approx(58.5, rel=0.1)

    def test_lowband_adds_6_to_8ms(self):
        mm = LatencyModel(get_network("verizon-nsa-mmwave"), seed=0)
        lb = LatencyModel(get_network("verizon-nsa-lowband"), seed=0)
        gap = lb.base_rtt_ms(500.0) - mm.base_rtt_ms(500.0)
        assert 6.0 <= gap <= 8.0

    def test_lte_slowest(self):
        lte = LatencyModel(get_network("verizon-lte"), seed=0)
        lb = LatencyModel(get_network("verizon-nsa-lowband"), seed=0)
        assert lte.base_rtt_ms(100.0) > lb.base_rtt_ms(100.0)

    def test_sa_nsa_parity(self):
        # Paper: no significant SA-vs-NSA RTT difference (section 3.2).
        sa = LatencyModel(get_network("tmobile-sa-lowband"), seed=0)
        nsa = LatencyModel(get_network("tmobile-nsa-lowband"), seed=0)
        assert sa.base_rtt_ms(800.0) == pytest.approx(nsa.base_rtt_ms(800.0))

    def test_samples_at_least_base(self):
        model = LatencyModel(get_network("verizon-lte"), seed=1)
        samples = model.sample_rtt_ms(200.0, n=50)
        assert samples.min() >= model.base_rtt_ms(200.0)

    def test_min_rtt_close_to_base(self):
        model = LatencyModel(get_network("verizon-nsa-mmwave"), seed=2)
        assert model.min_rtt_ms(100.0, n=20) == pytest.approx(
            model.base_rtt_ms(100.0), abs=2.0
        )

    def test_invalid_args(self):
        model = LatencyModel(get_network("verizon-lte"))
        with pytest.raises(ValueError):
            model.base_rtt_ms(-1.0)
        with pytest.raises(ValueError):
            model.sample_rtt_ms(10.0, n=0)
        with pytest.raises(ValueError):
            LatencyModel(get_network("verizon-lte"), jitter_ms=-1.0)
