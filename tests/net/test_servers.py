"""Tests for repro.net.servers."""

import pytest

from repro.net.servers import (
    AZURE_REGIONS,
    SpeedtestServer,
    carrier_server_pool,
    minnesota_server_pool,
)


class TestCarrierPool:
    def test_metro_coverage(self):
        pool = carrier_server_pool("Verizon")
        assert len(pool) == 20
        assert all(s.hosted_by == "carrier" for s in pool)

    def test_home_server_is_minneapolis(self):
        pool = carrier_server_pool("Verizon")
        home = pool[0]
        assert home.city == "Minneapolis"
        assert home.distance_km_from(44.9778, -93.2650) == pytest.approx(0.0, abs=1.0)

    def test_distances_span_coasts(self):
        pool = carrier_server_pool("T-Mobile")
        distances = [s.distance_km_from(44.9778, -93.2650) for s in pool]
        assert max(distances) > 2000.0


class TestMinnesotaPool:
    def test_37_servers_like_fig24(self):
        assert len(minnesota_server_pool()) == 37

    def test_carrier_server_uncapped(self):
        pool = minnesota_server_pool()
        assert pool[0].hosted_by == "carrier"
        assert pool[0].capacity_cap_mbps is None

    def test_capacity_tiers_exist(self):
        caps = [s.capacity_cap_mbps for s in minnesota_server_pool()]
        assert caps.count(2000.0) == 4
        assert caps.count(1000.0) == 5
        assert sum(1 for c in caps if c is None) == 24

    def test_all_in_minnesota(self):
        assert all(s.state == "MN" for s in minnesota_server_pool())


class TestAzureRegions:
    def test_eight_us_regions(self):
        assert len(AZURE_REGIONS) == 8

    def test_fig8_distances(self):
        by_name = {r.name: r.distance_km for r in AZURE_REGIONS}
        assert by_name["Central"] == 374.0
        assert by_name["West"] == 2532.0

    def test_sorted_by_distance(self):
        distances = [r.distance_km for r in AZURE_REGIONS]
        assert distances == sorted(distances)


class TestDefaultSelection:
    def test_picks_home_city_server(self):
        from repro.net.servers import choose_default_server

        pool = carrier_server_pool("Verizon")
        chosen = choose_default_server(pool, 44.9778, -93.2650)
        assert chosen.city == "Minneapolis"

    def test_picks_nearest_elsewhere(self):
        from repro.net.servers import choose_default_server

        pool = carrier_server_pool("Verizon")
        chosen = choose_default_server(pool, 34.05, -118.24)  # LA UE
        assert chosen.city == "Los Angeles"

    def test_empty_pool_raises(self):
        import pytest as _pytest

        from repro.net.servers import choose_default_server

        with _pytest.raises(ValueError):
            choose_default_server([], 0.0, 0.0)
