"""Tests for repro.net.speedtest."""

import pytest

from repro.net.servers import carrier_server_pool
from repro.net.speedtest import ConnectionMode, SpeedtestHarness
from repro.power.device import get_device
from repro.radio.carriers import get_network


@pytest.fixture(scope="module")
def harness():
    return SpeedtestHarness(
        network=get_network("verizon-nsa-mmwave"),
        device=get_device("S20U"),
        seed=11,
    )


@pytest.fixture(scope="module")
def pool():
    return carrier_server_pool("Verizon")


class TestSessions:
    def test_multi_conn_near_peak_at_home(self, harness, pool):
        results = harness.run_setting(pool[0], ConnectionMode.MULTIPLE, repetitions=5)
        peak = harness.peak(results)
        assert peak.downlink_mbps > 2700.0
        assert peak.uplink_mbps > 180.0

    def test_multi_conn_flat_across_distance(self, harness, pool):
        near = harness.peak(harness.run_setting(pool[0], ConnectionMode.MULTIPLE, 5))
        far = harness.peak(harness.run_setting(pool[-1], ConnectionMode.MULTIPLE, 5))
        assert far.downlink_mbps > 0.85 * near.downlink_mbps

    def test_single_conn_decays_with_distance(self, harness, pool):
        near = harness.peak(harness.run_setting(pool[0], ConnectionMode.SINGLE, 8))
        far = harness.peak(harness.run_setting(pool[-1], ConnectionMode.SINGLE, 8))
        assert far.downlink_mbps < near.downlink_mbps

    def test_rtt_grows_with_distance(self, harness, pool):
        near = harness.run_session(pool[0], ConnectionMode.SINGLE)
        far = harness.run_session(pool[-1], ConnectionMode.SINGLE)
        assert far.rtt_ms > near.rtt_ms + 20.0

    def test_multi_uses_15_to_25_connections(self, harness, pool):
        result = harness.run_session(pool[0], ConnectionMode.MULTIPLE)
        assert 15 <= result.n_connections <= 25

    def test_server_capacity_cap_respected(self, harness):
        from repro.net.servers import SpeedtestServer

        capped = SpeedtestServer(
            name="capped", city="X", state="MN", lat=44.98, lon=-93.27,
            hosted_by="third-party", capacity_cap_mbps=1000.0,
        )
        peak = harness.peak(harness.run_setting(capped, ConnectionMode.MULTIPLE, 5))
        assert peak.downlink_mbps <= 1000.0

    def test_sa_half_of_nsa_throughput(self):
        device = get_device("S20U")
        pool = carrier_server_pool("T-Mobile")
        sa = SpeedtestHarness(network=get_network("tmobile-sa-lowband"), device=device, seed=2)
        nsa = SpeedtestHarness(network=get_network("tmobile-nsa-lowband"), device=device, seed=2)
        sa_peak = sa.peak(sa.run_setting(pool[0], ConnectionMode.MULTIPLE, 5))
        nsa_peak = nsa.peak(nsa.run_setting(pool[0], ConnectionMode.MULTIPLE, 5))
        assert sa_peak.downlink_mbps < 0.7 * nsa_peak.downlink_mbps

    def test_peak_requires_results(self, harness):
        with pytest.raises(ValueError):
            harness.peak([])

    def test_repetitions_validated(self, harness, pool):
        with pytest.raises(ValueError):
            harness.run_setting(pool[0], ConnectionMode.SINGLE, repetitions=0)
