"""Tests for repro.rrc.parameters (Table 7 fidelity)."""

import pytest

from repro.rrc.parameters import RRC_PARAMETERS, RRCParameters, get_parameters


class TestTable7:
    def test_all_six_configurations_present(self):
        assert len(RRC_PARAMETERS) == 6

    def test_sa_values_verbatim(self):
        sa = get_parameters("tmobile-sa-lowband")
        assert sa.inactivity_ms == 10400.0
        assert sa.long_drx_ms == 40.0
        assert sa.idle_drx_ms == 1250.0
        assert sa.promo_5g_ms == 341.0
        assert sa.promo_4g_ms is None

    def test_verizon_mmwave_values_verbatim(self):
        mm = get_parameters("verizon-nsa-mmwave")
        assert mm.inactivity_ms == 10500.0
        assert mm.long_drx_ms == 320.0
        assert mm.idle_drx_ms == 1280.0
        assert mm.promo_4g_ms == 396.0
        assert mm.promo_5g_ms == 1907.0

    def test_tmobile_4g_short_tail(self):
        # T-Mobile 4G's 5 s tail is the outlier in Table 7.
        assert get_parameters("tmobile-lte").inactivity_ms == 5000.0

    def test_only_sa_has_inactive_state(self):
        for key, params in RRC_PARAMETERS.items():
            if key == "tmobile-sa-lowband":
                assert params.has_inactive_state
            else:
                assert not params.has_inactive_state

    def test_sa_inactive_dwell_is_5s(self):
        assert get_parameters("tmobile-sa-lowband").inactive_duration_ms == 5000.0

    def test_secondary_tails_on_nsa_lowband(self):
        assert get_parameters("tmobile-nsa-lowband").secondary_tail_ms == 12120.0
        assert get_parameters("verizon-nsa-lowband").secondary_tail_ms == 18800.0

    def test_promotion_delay_prefers_5g(self):
        nsa = get_parameters("tmobile-nsa-lowband")
        assert nsa.promotion_delay_ms == 1440.0
        lte = get_parameters("verizon-lte")
        assert lte.promotion_delay_ms == 265.0

    def test_sa_promotion_far_cheaper_than_nsa(self):
        # SA promotes directly to NR; NSA goes through the LTE anchor.
        sa = get_parameters("tmobile-sa-lowband").promotion_delay_ms
        nsa = get_parameters("tmobile-nsa-lowband").promotion_delay_ms
        assert sa < nsa / 3.0

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_parameters("unknown")

    def test_validation(self):
        with pytest.raises(ValueError):
            RRCParameters(
                network_key="x", inactivity_ms=-1.0, long_drx_ms=1.0, idle_drx_ms=1.0, promo_4g_ms=1.0
            )
        with pytest.raises(ValueError):
            RRCParameters(
                network_key="x", inactivity_ms=1.0, long_drx_ms=1.0, idle_drx_ms=1.0
            )
