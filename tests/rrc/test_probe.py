"""Tests for repro.rrc.probe (RRC-Probe inference)."""

import numpy as np
import pytest

from repro.rrc.parameters import get_parameters
from repro.rrc.probe import RRCProbe

SWEEP = np.arange(1.0, 25.0, 1.0)


def infer(key, seed=1, packets=20):
    probe = RRCProbe(get_parameters(key), seed=seed)
    return probe.sweep(SWEEP, packets_per_interval=packets)


class TestInference:
    def test_inactivity_timer_recovered_within_resolution(self):
        # On NSA low-band the LTE anchor leg hides the primary tail, so
        # the probe observes the *secondary* tail (Table 7's brackets).
        for key in ("verizon-nsa-mmwave", "tmobile-nsa-lowband", "tmobile-lte"):
            result = infer(key)
            params = get_parameters(key)
            apparent = params.secondary_tail_ms or params.inactivity_ms
            assert result.inferred["inactivity_ms"] == pytest.approx(apparent, abs=1000.0)

    def test_secondary_tail_observed_on_nsa_lowband(self):
        for key in ("tmobile-nsa-lowband", "verizon-nsa-lowband"):
            result = infer(key)
            true = get_parameters(key).secondary_tail_ms
            assert result.inferred["inactivity_ms"] == pytest.approx(true, abs=1000.0)

    def test_sa_inactive_state_detected(self):
        result = infer("tmobile-sa-lowband")
        assert result.inferred["has_intermediate"] == 1.0
        assert result.inferred["intermediate_duration_ms"] == pytest.approx(5000.0, abs=1500.0)

    def test_no_intermediate_without_secondary_states(self):
        for key in ("verizon-nsa-mmwave", "verizon-lte"):
            assert infer(key).inferred["has_intermediate"] == 0.0

    def test_promotion_delay_recovered(self):
        for key in ("verizon-nsa-mmwave", "tmobile-sa-lowband", "verizon-lte"):
            result = infer(key)
            true = get_parameters(key).promotion_delay_ms
            assert result.inferred["promotion_ms"] == pytest.approx(true, rel=0.25)

    def test_long_drx_recovered(self):
        result = infer("verizon-nsa-mmwave")
        assert result.inferred["long_drx_ms"] == pytest.approx(320.0, rel=0.3)

    def test_idle_drx_recovered(self):
        result = infer("verizon-nsa-mmwave", packets=30)
        assert result.inferred["idle_drx_ms"] == pytest.approx(1280.0, rel=0.3)

    def test_sa_resume_much_cheaper_than_promotion(self):
        result = infer("tmobile-sa-lowband")
        assert result.inferred["intermediate_resume_ms"] < result.inferred["promotion_ms"]


class TestSweepMechanics:
    def test_sample_counts(self):
        result = infer("verizon-lte", packets=10)
        assert len(result.samples) == len(SWEEP) * 10

    def test_rtt_grows_across_tail_boundary(self):
        result = infer("verizon-nsa-mmwave")
        medians = result.median_rtt_by_interval()
        assert medians[18.0] > medians[2.0] + 500.0

    def test_short_sweep_never_leaves_connected(self):
        probe = RRCProbe(get_parameters("verizon-nsa-mmwave"), seed=0)
        result = probe.sweep([1.0, 2.0, 3.0], packets_per_interval=10)
        assert np.isnan(result.inferred["inactivity_ms"])

    def test_invalid_interval_raises(self):
        probe = RRCProbe(get_parameters("verizon-lte"))
        with pytest.raises(ValueError):
            probe.sweep([0.0], packets_per_interval=5)

    def test_too_few_packets_raises(self):
        probe = RRCProbe(get_parameters("verizon-lte"))
        with pytest.raises(ValueError):
            probe.sweep([1.0], packets_per_interval=2)

    def test_invalid_probe_config(self):
        with pytest.raises(ValueError):
            RRCProbe(get_parameters("verizon-lte"), base_rtt_ms=0.0)
        with pytest.raises(ValueError):
            RRCProbe(get_parameters("verizon-lte"), jitter_ms=-1.0)

    def test_true_states_recorded(self):
        result = infer("tmobile-sa-lowband")
        states = {s.state.value for s in result.samples}
        assert "RRC_INACTIVE" in states
