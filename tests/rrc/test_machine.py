"""Tests for repro.rrc.machine."""

import pytest

from repro.rrc.machine import RRCStateMachine
from repro.rrc.parameters import get_parameters
from repro.rrc.states import RRCState


def make_machine(key="verizon-nsa-mmwave", seed=0):
    return RRCStateMachine(get_parameters(key), seed=seed)


class TestStateTimeline:
    def test_initial_state_is_idle(self):
        machine = make_machine()
        assert machine.state_at(0.0) is RRCState.IDLE

    def test_connected_right_after_packet(self):
        machine = make_machine()
        machine.deliver_packet(0.0)
        t = machine.last_activity_ms + 50.0
        assert machine.state_at(t) is RRCState.CONNECTED

    def test_tail_after_cr_window(self):
        machine = make_machine()
        machine.deliver_packet(0.0)
        t = machine.last_activity_ms + 5000.0
        assert machine.state_at(t) is RRCState.CONNECTED_TAIL

    def test_idle_after_tail_nsa(self):
        machine = make_machine()
        machine.deliver_packet(0.0)
        t = machine.last_activity_ms + 11000.0
        assert machine.state_at(t) is RRCState.IDLE

    def test_sa_passes_through_inactive(self):
        machine = make_machine("tmobile-sa-lowband")
        machine.deliver_packet(0.0)
        base = machine.last_activity_ms
        assert machine.state_at(base + 11000.0) is RRCState.INACTIVE
        assert machine.state_at(base + 16000.0) is RRCState.IDLE

    def test_time_backwards_raises(self):
        machine = make_machine()
        machine.deliver_packet(1000.0)
        with pytest.raises(ValueError):
            machine.state_at(0.0)

    def test_reset_returns_to_idle(self):
        machine = make_machine()
        machine.deliver_packet(0.0)
        machine.reset()
        assert machine.state_at(0.0) is RRCState.IDLE


class TestRadioDelays:
    def test_connected_packet_no_delay(self):
        machine = make_machine()
        machine.deliver_packet(0.0)
        delay = machine.deliver_packet(machine.last_activity_ms + 10.0)
        assert delay == 0.0

    def test_tail_packet_bounded_by_drx(self):
        params = get_parameters("verizon-nsa-mmwave")
        machine = make_machine()
        machine.deliver_packet(0.0)
        delay = machine.deliver_packet(machine.last_activity_ms + 5000.0)
        assert 0.0 <= delay <= params.long_drx_ms

    def test_idle_packet_pays_promotion(self):
        params = get_parameters("verizon-nsa-mmwave")
        machine = make_machine()
        machine.deliver_packet(0.0)
        delay = machine.deliver_packet(machine.last_activity_ms + 20000.0)
        assert delay >= params.promo_5g_ms
        assert delay <= params.promo_5g_ms + params.idle_drx_ms

    def test_sa_inactive_resume_cheap(self):
        params = get_parameters("tmobile-sa-lowband")
        machine = make_machine("tmobile-sa-lowband")
        machine.deliver_packet(0.0)
        delay = machine.deliver_packet(machine.last_activity_ms + 12000.0)
        assert delay < params.promo_5g_ms
        assert delay >= params.inactive_resume_ms

    def test_delays_reproducible_with_seed(self):
        delays_a, delays_b = [], []
        for target in (delays_a, delays_b):
            machine = make_machine(seed=42)
            machine.deliver_packet(0.0)
            for _ in range(5):
                target.append(
                    machine.deliver_packet(machine.last_activity_ms + 20000.0)
                )
        assert delays_a == delays_b


class TestSchedule:
    def test_schedule_ordering_nsa(self):
        machine = make_machine()
        schedule = machine.schedule(15000.0)
        states = [s for _, _, s in schedule]
        assert states[0] is RRCState.CONNECTED
        assert RRCState.CONNECTED_TAIL in states
        assert states[-1] is RRCState.IDLE

    def test_schedule_includes_inactive_for_sa(self):
        machine = make_machine("tmobile-sa-lowband")
        states = [s for _, _, s in machine.schedule(20000.0)]
        assert RRCState.INACTIVE in states

    def test_schedule_intervals_contiguous(self):
        machine = make_machine()
        schedule = machine.schedule(12000.0)
        for (s0, e0, _), (s1, _, _) in zip(schedule, schedule[1:]):
            assert e0 == pytest.approx(s1)
        assert schedule[0][0] == 0.0
        assert schedule[-1][1] == pytest.approx(12000.0)

    def test_horizon_clamps(self):
        machine = make_machine()
        schedule = machine.schedule(50.0)
        assert schedule[-1][1] == pytest.approx(50.0)

    def test_invalid_horizon_raises(self):
        with pytest.raises(ValueError):
            make_machine().schedule(0.0)
