"""Tests for the NSA secondary-tail and Short-DRX machine extensions."""

import pytest

from repro.rrc.machine import RRCStateMachine, _CR_WINDOW_MS, _SHORT_DRX_WINDOW_MS
from repro.rrc.parameters import get_parameters
from repro.rrc.states import RRCState


class TestSecondaryTail:
    def test_4g_leg_after_primary_tail(self):
        machine = RRCStateMachine(get_parameters("tmobile-nsa-lowband"), seed=0)
        machine.deliver_packet(0.0)
        base = machine.last_activity_ms
        # 10.4 s < t < 12.12 s: the LTE anchor leg lingers.
        assert machine.state_at(base + 11000.0) is RRCState.CONNECTED_4G_LEG
        assert machine.state_at(base + 13000.0) is RRCState.IDLE

    def test_verizon_lowband_long_secondary(self):
        machine = RRCStateMachine(get_parameters("verizon-nsa-lowband"), seed=0)
        machine.deliver_packet(0.0)
        base = machine.last_activity_ms
        assert machine.state_at(base + 15000.0) is RRCState.CONNECTED_4G_LEG
        assert machine.state_at(base + 19000.0) is RRCState.IDLE

    def test_no_secondary_on_mmwave(self):
        machine = RRCStateMachine(get_parameters("verizon-nsa-mmwave"), seed=0)
        machine.deliver_packet(0.0)
        base = machine.last_activity_ms
        assert machine.state_at(base + 12000.0) is RRCState.IDLE

    def test_4g_leg_delay_connected_scale(self):
        # Anchor-leg delivery pays no idle promotion: far cheaper than
        # idle, slightly above plain tail DRX.
        params = get_parameters("tmobile-nsa-lowband")
        machine = RRCStateMachine(params, seed=1)
        machine.deliver_packet(0.0)
        delay = machine.deliver_packet(machine.last_activity_ms + 11000.0)
        assert delay < params.promotion_delay_ms
        assert delay <= 30.0 + params.long_drx_ms

    def test_schedule_contains_4g_leg(self):
        machine = RRCStateMachine(get_parameters("verizon-nsa-lowband"), seed=0)
        states = [s for _a, _b, s in machine.schedule(20000.0)]
        assert RRCState.CONNECTED_4G_LEG in states
        assert states[-1] is RRCState.IDLE

    def test_4g_leg_is_connected(self):
        assert RRCState.CONNECTED_4G_LEG.is_connected


class TestShortDrx:
    def test_short_drx_delays_small(self):
        machine = RRCStateMachine(get_parameters("verizon-nsa-mmwave"), seed=2)
        machine.deliver_packet(0.0)
        # Packet within the Short DRX window: delay bounded by the short
        # cycle, far below Long DRX.
        t = machine.last_activity_ms + _CR_WINDOW_MS + 200.0
        delay = machine.deliver_packet(t)
        assert delay <= 40.0

    def test_long_drx_after_short_window(self):
        params = get_parameters("verizon-nsa-mmwave")
        machine = RRCStateMachine(params, seed=3)
        machine.deliver_packet(0.0)
        delays = []
        for _ in range(30):
            t = machine.last_activity_ms + _CR_WINDOW_MS + _SHORT_DRX_WINDOW_MS + 2000.0
            delays.append(machine.deliver_packet(t))
        # Long-DRX waits spread across the full cycle.
        assert max(delays) > 100.0
        assert max(delays) <= params.long_drx_ms

    def test_short_drx_invisible_to_probe(self):
        """The paper could not infer Short DRX (Appendix A.3); at
        second-scale probing intervals the machine never exposes it."""
        import numpy as np

        from repro.rrc.probe import RRCProbe

        probe = RRCProbe(get_parameters("verizon-lte"), seed=4)
        result = probe.sweep(np.arange(1.0, 5.0, 1.0), packets_per_interval=20)
        # All sampled delays are Long-DRX-scale or zero, never clustered
        # at the short cycle: the inferred long_drx estimate stays large.
        assert result.inferred.get("inactivity_ms") is not None
