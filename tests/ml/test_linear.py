"""Tests for repro.ml.linear."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression


class TestLinearRegression:
    def test_exact_line_recovered(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = 3.0 * X[:, 0] + 2.0
        model = LinearRegression().fit(X, y)
        assert model.slope_ == pytest.approx(3.0)
        assert model.intercept_ == pytest.approx(2.0)

    def test_table8_style_fit(self):
        # mmWave S20U: slope 1.81 mW/Mbps, intercept ~3182 mW.
        rng = np.random.default_rng(0)
        t = np.linspace(0, 2000, 50)
        p = 3182.0 + 1.81 * t + rng.normal(0, 5.0, size=50)
        model = LinearRegression().fit(t.reshape(-1, 1), p)
        assert model.slope_ == pytest.approx(1.81, rel=0.02)
        assert model.intercept_ == pytest.approx(3182.0, rel=0.02)

    def test_multifeature(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, [2.0, -1.0], atol=1e-8)

    def test_no_intercept(self):
        X = np.arange(1.0, 6.0).reshape(-1, 1)
        y = 4.0 * X[:, 0]
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.slope_ == pytest.approx(4.0)

    def test_predict_shape(self):
        X = np.arange(10.0).reshape(-1, 1)
        model = LinearRegression().fit(X, X[:, 0])
        assert model.predict(X).shape == (10,)

    def test_slope_property_multifeature_raises(self):
        X = np.ones((5, 2))
        model = LinearRegression().fit(X, np.ones(5))
        with pytest.raises(ValueError):
            _ = model.slope_

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict([[1.0]])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((0, 1)), [])
