"""Tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    mean_absolute_error,
    mean_absolute_percentage_error,
    r2_score,
    root_mean_squared_error,
)


class TestMape:
    def test_perfect_prediction_is_zero(self):
        y = [1.0, 2.0, 3.0]
        assert mean_absolute_percentage_error(y, y) == 0.0

    def test_known_value(self):
        # errors: 10% and 20% -> mean 15%
        assert mean_absolute_percentage_error([10.0, 10.0], [11.0, 12.0]) == pytest.approx(15.0)

    def test_zero_targets_excluded(self):
        value = mean_absolute_percentage_error([0.0, 10.0], [5.0, 11.0])
        assert value == pytest.approx(10.0)

    def test_all_zero_targets_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([0.0, 0.0], [1.0, 2.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])

    def test_symmetric_in_error_sign(self):
        up = mean_absolute_percentage_error([10.0], [12.0])
        down = mean_absolute_percentage_error([10.0], [8.0])
        assert up == pytest.approx(down)


class TestOtherMetrics:
    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_rmse(self):
        assert root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_rmse_geq_mae(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=50)
        p = y + rng.normal(size=50)
        assert root_mean_squared_error(y, p) >= mean_absolute_error(y, p)

    def test_r2_perfect(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 3.0, 0.0]) < 0.0

    def test_accuracy(self):
        assert accuracy_score([1, 0, 1, 1], [1, 1, 1, 0]) == pytest.approx(0.5)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])
