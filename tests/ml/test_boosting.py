"""Tests for repro.ml.boosting."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostedRegressor


def _smooth_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3.0, 3.0, size=(n, 1))
    y = np.sin(X[:, 0]) * 5.0 + 0.1 * rng.normal(size=n)
    return X, y


class TestGradientBoosting:
    def test_fits_nonlinear_function(self):
        X, y = _smooth_data()
        model = GradientBoostedRegressor(n_estimators=80, max_depth=3).fit(X, y)
        residual = np.abs(model.predict(X) - y).mean()
        assert residual < 0.5

    def test_more_estimators_reduce_training_error(self):
        X, y = _smooth_data()
        few = GradientBoostedRegressor(n_estimators=5, max_depth=2).fit(X, y)
        many = GradientBoostedRegressor(n_estimators=60, max_depth=2).fit(X, y)
        err_few = np.abs(few.predict(X) - y).mean()
        err_many = np.abs(many.predict(X) - y).mean()
        assert err_many < err_few

    def test_staged_predict_converges_to_final(self):
        X, y = _smooth_data(n=100)
        model = GradientBoostedRegressor(n_estimators=10, max_depth=2).fit(X, y)
        stages = list(model.staged_predict(X))
        assert len(stages) == 10
        assert np.allclose(stages[-1], model.predict(X))

    def test_baseline_is_mean_for_constant_model(self):
        X = np.zeros((20, 1))
        y = np.full(20, 4.2)
        model = GradientBoostedRegressor(n_estimators=3).fit(X, y)
        assert model.predict([[0.0]])[0] == pytest.approx(4.2, abs=1e-6)

    def test_subsample_deterministic_with_seed(self):
        X, y = _smooth_data(n=150)
        a = GradientBoostedRegressor(n_estimators=15, subsample=0.6, random_state=5).fit(X, y)
        b = GradientBoostedRegressor(n_estimators=15, subsample=0.6, random_state=5).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_feature_importances_normalised(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(200, 3))
        y = X[:, 1] * 10.0
        model = GradientBoostedRegressor(n_estimators=20, max_depth=2).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)
        assert np.argmax(model.feature_importances_) == 1

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedRegressor().predict([[1.0]])

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostedRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedRegressor(subsample=1.5)

    def test_feature_mismatch_raises(self):
        X, y = _smooth_data(n=50)
        model = GradientBoostedRegressor(n_estimators=3).fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 4)))
