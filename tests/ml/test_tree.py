"""Tests for repro.ml.tree (CART regressor and classifier)."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def _step_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 10.0, size=(n, 2))
    y = np.where(X[:, 0] > 5.0, 10.0, 1.0)
    return X, y


class TestRegressor:
    def test_fits_step_function_exactly(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert np.abs(tree.predict(X) - y).max() < 1e-9

    def test_split_threshold_near_true_boundary(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree._root.feature == 0
        assert 4.5 < tree._root.threshold < 5.5

    def test_single_value_target_gives_leaf(self):
        X = np.arange(10.0).reshape(-1, 1)
        tree = DecisionTreeRegressor().fit(X, np.full(10, 7.0))
        assert tree.n_leaves_ == 1
        assert tree.predict([[3.0]])[0] == pytest.approx(7.0)

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 3))
        y = rng.normal(size=300)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert tree.depth_ <= 4

    def test_min_samples_leaf_respected(self):
        X, y = _step_data(n=60)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)

        def leaves(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaves(node.left) + leaves(node.right)

        assert min(leaves(tree._root)) >= 10

    def test_prediction_mean_of_training(self):
        X = np.zeros((5, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.predict([[0.0]])[0] == pytest.approx(3.0)

    def test_feature_importances_sum_to_one(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)
        assert tree.feature_importances_[0] > tree.feature_importances_[1]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_feature_count_mismatch_raises(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((3, 5)))

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), [])

    def test_1d_x_reshaped(self):
        X = np.arange(20.0)
        y = np.where(X > 10, 5.0, 1.0)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert tree.predict([15.0])[0] == pytest.approx(5.0)

    def test_describe_contains_feature_names(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y, feature_names=["TH", "SS"])
        assert "TH" in tree.describe()

    def test_min_impurity_decrease_prunes(self):
        X, y = _step_data()
        shallow = DecisionTreeRegressor(min_impurity_decrease=1e9).fit(X, y)
        assert shallow.n_leaves_ == 1

    def test_bad_hyperparameters_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestClassifier:
    def test_separable_classes_learned(self):
        X, y = _step_data()
        labels = (y > 5.0).astype(int)
        clf = DecisionTreeClassifier(max_depth=2).fit(X, labels)
        assert (clf.predict(X) == labels).all()

    def test_string_labels_roundtrip(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array(["lte", "lte", "nr", "nr"])
        clf = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert list(clf.predict([[0.5], [10.5]])) == ["lte", "nr"]

    def test_predict_proba_rows_sum_to_one(self):
        X, y = _step_data()
        labels = (y > 5.0).astype(int)
        clf = DecisionTreeClassifier(max_depth=3).fit(X, labels)
        probs = clf.predict_proba(X[:10])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_single_class_degenerate(self):
        X = np.arange(10.0).reshape(-1, 1)
        clf = DecisionTreeClassifier().fit(X, np.zeros(10, dtype=int))
        assert (clf.predict(X) == 0).all()

    def test_gini_importance_prefers_informative_feature(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(500, 3))
        y = (X[:, 2] > 0.5).astype(int)
        clf = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert np.argmax(clf.feature_importances_) == 2

    def test_three_classes(self):
        X = np.array([[v] for v in np.linspace(0, 30, 90)])
        y = (X[:, 0] // 10).astype(int)
        clf = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95
