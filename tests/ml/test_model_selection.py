"""Tests for repro.ml.model_selection."""

import numpy as np
import pytest

from repro.ml.model_selection import KFold, train_test_split


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100)
        train, test = train_test_split(X, test_size=0.3, random_state=0)
        assert train.shape[0] == 70
        assert test.shape[0] == 30

    def test_disjoint_and_complete(self):
        X = np.arange(50)
        train, test = train_test_split(X, test_size=0.2, random_state=1)
        assert set(train) | set(test) == set(range(50))
        assert set(train) & set(test) == set()

    def test_multiple_arrays_aligned(self):
        X = np.arange(40)
        y = X * 2
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=2)
        assert np.array_equal(y_tr, X_tr * 2)
        assert np.array_equal(y_te, X_te * 2)

    def test_reproducible(self):
        X = np.arange(30)
        a = train_test_split(X, random_state=7)
        b = train_test_split(X, random_state=7)
        assert np.array_equal(a[0], b[0])

    def test_no_shuffle_keeps_order(self):
        X = np.arange(10)
        train, test = train_test_split(X, test_size=0.3, shuffle=False)
        assert np.array_equal(test, [0, 1, 2])
        assert np.array_equal(train, np.arange(3, 10))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), np.arange(6))

    def test_bad_test_size_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), test_size=1.5)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(1))


class TestKFold:
    def test_covers_all_indices_once(self):
        kf = KFold(n_splits=5)
        seen = []
        for _train, test in kf.split(np.arange(23)):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(23))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=4).split(np.arange(20)):
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 20

    def test_shuffle_reproducible(self):
        a = [t.tolist() for _tr, t in KFold(3, shuffle=True, random_state=1).split(np.arange(9))]
        b = [t.tolist() for _tr, t in KFold(3, shuffle=True, random_state=1).split(np.arange(9))]
        assert a == b

    def test_more_folds_than_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.arange(3)))

    def test_min_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
