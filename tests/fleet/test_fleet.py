"""End-to-end tests for repro.fleet: city-scale sweeps, bit for bit.

The load-bearing property: a fleet summary is a pure function of the
:class:`FleetSpec` — shard count, worker count, merge order, and cache
round-trips change nothing (``fleet.shards`` in the summary header is
provenance metadata and is excluded from comparisons).
"""

import json

import numpy as np
import pytest

from repro.engine import ResultCache, execute
from repro.fleet import (
    FleetScenario,
    FleetSpec,
    finalize_summary,
    fleet_jobs,
    merge_partials,
    run_fleet,
    run_shard_job,
    shard_bounds,
)
from repro.fleet.kernels import downlink_matrix, power_matrix, rsrp_matrix
from repro.fleet.scenario import STREAM_BLOCK, STREAM_FADING, STREAM_SEVERITY
from repro.kernels.ctrrng import normals, uniforms
from repro.kernels.scan import ar1_scan, leaky_ramp_scan, markov_binary_scan
from repro.radio.carriers import get_network
from repro.radio.link import LinkBudget
from repro.radio.propagation import BlockageModel, get_path_loss_model
from repro.radio.signal import _BLOCKAGE_FADE_DB, _FADING_SIGMA, _TX_EIRP_DBM


def _small_spec(**overrides):
    kwargs = dict(ues=60, duration_s=30.0)
    kwargs.update(overrides)
    return FleetSpec(**kwargs)


def _canon(summary):
    """Comparable summary: everything except shard-count provenance."""
    out = json.loads(json.dumps(summary))
    out["fleet"].pop("shards")
    return out


class TestFleetSpec:
    def test_dict_round_trip(self):
        spec = _small_spec(key=99, city_extent_m=2500.0)
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_ticks(self):
        assert _small_spec(duration_s=120.0, dt_s=0.5).ticks == 240

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(ues=0)
        with pytest.raises(ValueError):
            _small_spec(dt_s=0.0)
        with pytest.raises(ValueError):
            _small_spec(network_mix={"verizon-nsa-mmwave": 0.5})
        with pytest.raises(ValueError):
            _small_spec(mobility_mix={"teleport": 1.0})
        with pytest.raises(ValueError):
            _small_spec(app_mix={"speedtest": -0.1, "video": 1.1})

    def test_device_without_curves_rejected(self):
        # S10 has no verizon-nsa-lowband / tmobile-sa-lowband curves;
        # the default mix includes both.
        with pytest.raises(ValueError, match="power curve"):
            FleetScenario(_small_spec(device="S10"))


class TestScenario:
    def test_assignments_are_pure_in_ue_index(self):
        scenario = FleetScenario(_small_spec(ues=5000))
        ue = np.arange(5000, dtype=np.int64)
        a = scenario.assignments(ue)
        b = scenario.assignments(ue[2000:3000])
        for field in ("network", "mobility", "app"):
            assert np.array_equal(a[field][2000:3000], b[field])

    def test_mix_shares_roughly_respected(self):
        spec = _small_spec(ues=20000)
        scenario = FleetScenario(spec)
        attrs = scenario.assignments(np.arange(20000, dtype=np.int64))
        walk_share = float((attrs["mobility"] == 0).mean())
        assert walk_share == pytest.approx(0.5, abs=0.02)

    def test_speeds_by_mobility_kind(self):
        spec = _small_spec(
            ues=30,
            mobility_mix={"stationary": 1.0},
        )
        scenario = FleetScenario(spec)
        ue = np.arange(30, dtype=np.int64)
        attrs = scenario.assignments(ue)
        x, y, speed = scenario.positions(ue, attrs["mobility"])
        assert x.shape == (30, spec.ticks)
        assert np.all(speed == 0.0)
        # Stationary UEs do not move.
        assert np.all(x == x[:, :1]) and np.all(y == y[:, :1])


class TestShardInvariance:
    def test_shard_bounds_tile_exactly(self):
        for ues, shards in ((10, 3), (1, 5), (4097, 16), (100, 100)):
            bounds = shard_bounds(ues, shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == ues
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert start == stop

    def test_serial_vs_any_split_bit_identical(self):
        spec = _small_spec(ues=47)
        reference = _canon(run_fleet(spec, shards=1))
        for shards in (2, 5, 47):
            assert _canon(run_fleet(spec, shards=shards)) == reference

    def test_merge_order_does_not_matter(self):
        spec = _small_spec(ues=31)
        parts = [
            run_shard_job(spec.to_dict(), start, stop)
            for start, stop in shard_bounds(31, 4)
        ]
        reference = _canon(finalize_summary(spec, merge_partials(parts)))
        shuffled = [parts[2], parts[0], parts[3], parts[1]]
        assert (
            _canon(finalize_summary(spec, merge_partials(shuffled)))
            == reference
        )

    def test_gap_in_partials_rejected(self):
        spec = _small_spec(ues=20)
        parts = [
            run_shard_job(spec.to_dict(), 0, 5),
            run_shard_job(spec.to_dict(), 10, 20),
        ]
        with pytest.raises(ValueError, match="contiguous"):
            merge_partials(parts)

    def test_partial_coverage_rejected_at_finalize(self):
        spec = _small_spec(ues=20)
        partial = merge_partials([run_shard_job(spec.to_dict(), 0, 10)])
        with pytest.raises(ValueError, match="spec says"):
            finalize_summary(spec, partial)

    def test_out_of_range_shard_rejected(self):
        spec = _small_spec(ues=10)
        with pytest.raises(ValueError):
            run_shard_job(spec.to_dict(), 5, 11)


class TestEnginePath:
    def test_parallel_engine_matches_serial_and_caches(self, tmp_path):
        spec = _small_spec(ues=40)
        serial = _canon(run_fleet(spec, shards=1))
        cache = ResultCache(tmp_path / "cache")
        jobs = fleet_jobs(spec, shards=3)
        result = execute(jobs, workers=2, cache=cache)
        partials = [o.value for o in result.outcomes]
        assert (
            _canon(finalize_summary(spec, merge_partials(partials))) == serial
        )
        rerun = execute(fleet_jobs(spec, shards=3), workers=2, cache=cache)
        assert rerun.cached_count == 3
        cached = [o.value for o in rerun.outcomes]
        assert (
            _canon(finalize_summary(spec, merge_partials(cached))) == serial
        )

    def test_partial_stays_small(self):
        # The whole point of streaming reducers: a shard's partial is
        # O(log range), not O(UEs x ticks).
        spec = _small_spec(ues=200, duration_s=60.0)
        partial = run_shard_job(spec.to_dict(), 0, 200)
        encoded = json.dumps(partial)
        assert len(encoded) < 200_000


class TestSingleUEParity:
    """A 1-UE fleet is the single-UE kernel composition, bit for bit."""

    def _spec(self):
        return FleetSpec(
            ues=1,
            duration_s=60.0,
            network_mix={"verizon-nsa-mmwave": 1.0},
            mobility_mix={"walk": 1.0},
            app_mix={"speedtest": 1.0},
        )

    def _reference_series(self, spec, scenario, network):
        """Re-derive UE 0's series with 1-D scans and a Python severity
        loop — independent of the 2-D batched code under test."""
        ue = np.array([0], dtype=np.int64)
        attrs = scenario.assignments(ue)
        x, y, speed = scenario.positions(ue, attrs["mobility"])
        distances = scenario.serving_distances(
            ue, attrs["mobility"], x, y, network.band
        )[0]
        speed = speed[0]
        band = network.band
        ticks = spec.ticks
        cols = np.arange(ticks, dtype=np.int64)

        rho = float(np.exp(-spec.dt_s / 1.5))
        sigma_eff = float(
            _FADING_SIGMA[band.band_class] * np.sqrt(1.0 - rho**2)
        )
        fading = ar1_scan(
            rho, normals(spec.key, STREAM_FADING, 0, cols) * sigma_eff, 0.0
        )
        loss = get_path_loss_model(band).path_loss_db_series(distances)
        rsrp = _TX_EIRP_DBM[band.band_class] - loss + fading

        draws = uniforms(spec.key, STREAM_BLOCK, 0, cols)
        p_block, p_recover = BlockageModel().transition_probabilities(
            speed, spec.dt_s
        )
        blocked = markov_binary_scan(
            draws >= p_recover, draws < p_block, init=False
        )
        severity_draws = 0.5 + 0.5 * uniforms(
            spec.key, STREAM_SEVERITY, 0, cols
        )
        severity = np.empty(ticks)
        current, seen = 1.0, False
        for t in range(ticks):
            if blocked[t] and (t == 0 or not blocked[t - 1]):
                current, seen = severity_draws[t], True
            severity[t] = current if seen else 1.0
        ramp_alpha = 1.0 - float(np.exp(-spec.dt_s / 1.8))
        depth = leaky_ramp_scan(ramp_alpha, blocked.astype(float), 0.0)
        rsrp = np.clip(
            rsrp - (_BLOCKAGE_FADE_DB + 18.0) * depth * severity,
            -140.0,
            -60.0,
        )
        dl = LinkBudget(network, scenario.device.modem).capacity_series_mbps(
            rsrp
        )
        power = scenario.device.curve(network.key).power_mw_series(
            dl, 0.0, rsrp
        )
        return rsrp, dl, power

    def test_matrices_match_1d_composition(self):
        spec = self._spec()
        scenario = FleetScenario(spec)
        network = get_network("verizon-nsa-mmwave")
        ref_rsrp, ref_dl, ref_power = self._reference_series(
            spec, scenario, network
        )

        ue = np.array([0], dtype=np.int64)
        attrs = scenario.assignments(ue)
        x, y, speed = scenario.positions(ue, attrs["mobility"])
        distances = scenario.serving_distances(
            ue, attrs["mobility"], x, y, network.band
        )
        rsrp = rsrp_matrix(spec, ue, network, distances, speed)
        dl = downlink_matrix(
            spec, ue, network, scenario.device.modem, rsrp, attrs["app"]
        )
        power = power_matrix(scenario, network, dl, rsrp)
        assert np.array_equal(rsrp[0], ref_rsrp)
        assert np.array_equal(dl[0], ref_dl)
        assert np.array_equal(power[0], ref_power)

    def test_fleet_summary_matches_series_stats(self):
        spec = self._spec()
        scenario = FleetScenario(spec)
        network = get_network("verizon-nsa-mmwave")
        ref_rsrp, ref_dl, _ = self._reference_series(spec, scenario, network)
        summary = run_fleet(spec)
        group = summary["groups"]["rsrp_all"]
        assert group["count"] == spec.ticks
        assert group["min"] == float(ref_rsrp.min())
        assert group["max"] == float(ref_rsrp.max())
        assert group["mean"] == pytest.approx(
            float(ref_rsrp.mean()), rel=1e-12
        )
        assert summary["groups"]["dl_all"]["max"] == float(ref_dl.max())


class TestFleetGauges:
    def test_fleet_gauges_pass_at_default_spec(self):
        from repro.obs.calib import PAPER_GAUGES, evaluate_gauges

        summary = run_fleet(FleetSpec(ues=400))
        results = [
            r
            for r in evaluate_gauges({"fleet": summary})
            if r.runner == "fleet"
        ]
        assert {r.name for r in results} == {
            "fleet_walk_rsrp_median",
            "fleet_walk_rsrp_ks",
            "fleet_mmwave_peak_dl",
        }
        assert all(r.status == "pass" for r in results), [
            (r.name, r.status, r.measured) for r in results
        ]

    @pytest.mark.parametrize("shift_db", [0.0, 3.0])
    def test_histogram_ks_agrees_with_empirical_cdf_at_pins(self, shift_db):
        from repro.obs.calib import histogram_ks_to_quantiles
        from repro.obs.reducers import FixedHistogram

        sample = np.random.default_rng(21).normal(-86.0, 9.0, 50000)
        levels = (5.0, 25.0, 50.0, 75.0, 95.0)
        pins = tuple(
            float(np.percentile(sample, level)) + shift_db
            for level in levels
        )
        hist = FixedHistogram(-140.0, -60.0, 160)
        hist.add(sample)
        from_hist = histogram_ks_to_quantiles(hist.to_state(), levels, pins)
        emp = np.searchsorted(np.sort(sample), pins, side="right") / 50000
        expected = float(np.max(np.abs(emp - np.asarray(levels) / 100.0)))
        # 0.5 dB bins reconstruct the CDF to well under a percent.
        assert abs(from_hist - expected) < 0.01


class TestFleetCli:
    def test_sweep_fleet_renders_summary_and_caches(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        args = [
            "sweep", "fleet", "--ues", "60", "--shards", "2",
            "--cache-dir", str(cache_dir), "--quiet",
            "--json", str(tmp_path / "fleet.json"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fleet: 60 UEs" in out
        assert "walk_mmwave_rsrp" in out
        payload = json.loads((tmp_path / "fleet.json").read_text())
        assert payload["fleet"]["ues"] == 60
        assert set(payload["groups"]) == {
            "rsrp_all", "dl_all", "power_mw",
            "walk_mmwave_rsrp", "speedtest_mmwave_dl",
        }
        assert main(args) == 0
        assert "cache hits: 2/2 (100%)" in capsys.readouterr().out

    def test_ues_requires_fleet_artifact(self, capsys):
        from repro.cli import main

        assert main(["sweep", "fig2", "--ues", "10", "--quiet"]) == 2
        assert "fleet" in capsys.readouterr().err

    def test_bad_fleet_spec_exits_2(self, capsys):
        from repro.cli import main

        assert (
            main(["sweep", "fleet", "--ues", "10", "--city", "-5"]) == 2
        )
