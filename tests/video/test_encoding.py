"""Tests for repro.video.encoding."""

import pytest

from repro.video.encoding import (
    BitrateLadder,
    LADDER_4G,
    LADDER_5G,
    VideoManifest,
    build_ladder,
)


class TestLadder:
    def test_paper_tops(self):
        assert LADDER_5G.top_mbps == pytest.approx(160.0)
        assert LADDER_4G.top_mbps == pytest.approx(20.0)

    def test_six_tracks(self):
        assert len(LADDER_5G) == 6

    def test_adjacent_ratio_1_5(self):
        for low, high in zip(LADDER_5G.bitrates_mbps, LADDER_5G.bitrates_mbps[1:]):
            assert high / low == pytest.approx(1.5)

    def test_index_for_rate(self):
        ladder = build_ladder(160.0)
        assert ladder.index_for_rate(1e9) == len(ladder) - 1
        assert ladder.index_for_rate(0.001) == 0
        mid = ladder.bitrates_mbps[3]
        assert ladder.index_for_rate(mid + 0.1) == 3

    def test_normalize(self):
        assert LADDER_5G.normalize(160.0) == pytest.approx(1.0)
        assert LADDER_5G.normalize(80.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_ladder(0.0)
        with pytest.raises(ValueError):
            build_ladder(100.0, n_tracks=1)
        with pytest.raises(ValueError):
            build_ladder(100.0, ratio=1.0)
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_mbps=(2.0, 1.0))
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_mbps=(1.0,))


class TestManifest:
    def test_duration(self):
        manifest = VideoManifest(ladder=LADDER_5G, chunk_s=4.0, n_chunks=75)
        assert manifest.duration_s == 300.0

    def test_chunk_sizes_near_nominal(self):
        manifest = VideoManifest(ladder=LADDER_5G, chunk_s=4.0, n_chunks=30)
        nominal = LADDER_5G.top_mbps * 4.0
        sizes = [manifest.chunk_size_mbit(i, 5) for i in range(30)]
        assert min(sizes) > 0.6 * nominal
        assert max(sizes) < 1.6 * nominal

    def test_sizes_deterministic_by_seed(self):
        a = VideoManifest(ladder=LADDER_5G, n_chunks=10, seed=1)
        b = VideoManifest(ladder=LADDER_5G, n_chunks=10, seed=1)
        assert a.chunk_size_mbit(3, 2) == b.chunk_size_mbit(3, 2)

    def test_higher_track_bigger_chunk(self):
        manifest = VideoManifest(ladder=LADDER_5G, n_chunks=20)
        for i in range(20):
            sizes = manifest.track_sizes_mbit(i)
            assert sizes[0] < sizes[-1]

    def test_out_of_range_raises(self):
        manifest = VideoManifest(ladder=LADDER_5G, n_chunks=5)
        with pytest.raises(IndexError):
            manifest.chunk_size_mbit(5, 0)
        with pytest.raises(IndexError):
            manifest.chunk_size_mbit(0, 6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            VideoManifest(ladder=LADDER_5G, chunk_s=0.0)
        with pytest.raises(ValueError):
            VideoManifest(ladder=LADDER_5G, n_chunks=0)
