"""Tests for the time-aligned playback timeline (docs/video.md).

Pins the contract the energy model depends on:
``timeline.size * DOWNLOAD_TICK_S ~= wall_clock_s``, megabit
conservation, RTT/idle zero-rate ticks, the corrected ``_energy_j``
integral, and a regression showing the old tick accounting mispriced
idle energy.
"""

import numpy as np
import pytest

from repro.power.device import get_device
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import DOWNLOAD_TICK_S, Player
from repro.video.selection import StreamingInterfaceSelector
from repro.video.timeline import (
    TimelineRecorder,
    resample_to_ticks,
    tick_durations,
    timeline_energy_j,
)

from tests.video.test_player import FixedTrack


@pytest.fixture
def manifest():
    return VideoManifest(
        ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=20, vbr_sigma=0.0
    )


class TestResampler:
    def test_conserves_megabits_and_time(self):
        mbits = [3.7, 0.0, 1.21, 0.0, 0.05]
        durations = [0.23, 0.91, 0.1, 0.037, 0.002]
        rates, durs = resample_to_ticks(mbits, durations, 0.1)
        assert durs.sum() == pytest.approx(sum(durations), abs=1e-9)
        assert (rates * durs).sum() == pytest.approx(sum(mbits), abs=1e-9)

    def test_tick_grid_shape(self):
        rates, durs = resample_to_ticks([1.0], [0.25], 0.1)
        assert rates.size == 3
        np.testing.assert_allclose(durs, [0.1, 0.1, 0.05])
        # Constant-rate segment: every tick sees the same mean rate.
        np.testing.assert_allclose(rates, 4.0)

    def test_float_noise_does_not_add_a_tick(self):
        # 30 s + epsilon of zero-rate time is 300 ticks, not 301.
        rates, _ = resample_to_ticks([0.0], [30.0 + 4e-11], 0.1)
        assert rates.size == 300

    def test_empty(self):
        rates, durs = resample_to_ticks([], [], 0.1)
        assert rates.size == 0 and durs.size == 0

    def test_recorder_skips_zero_durations(self):
        recorder = TimelineRecorder(0.1)
        recorder.add(1.0, 0.0)
        recorder.add(1.0, 0.2)
        assert recorder.elapsed_s == pytest.approx(0.2)
        assert recorder.finish().size == 2

    def test_tick_durations_last_partial(self):
        durs = tick_durations(4, 0.37, 0.1)
        np.testing.assert_allclose(durs, [0.1, 0.1, 0.1, 0.07])
        assert tick_durations(0, 0.0).size == 0


class TestTimelineAlignment:
    """The pinned invariant: timeline.size * tick ~= wall clock."""

    @pytest.mark.parametrize("bandwidth", [30.0, 100.0, 2000.0])
    @pytest.mark.parametrize("rtt_s", [0.001, 0.03, 0.4])
    def test_invariant(self, manifest, bandwidth, rtt_s):
        result = Player(manifest).play(
            FixedTrack(3), lambda t: bandwidth, rtt_s=rtt_s
        )
        n = result.download_rate_timeline.size
        assert n * DOWNLOAD_TICK_S == pytest.approx(
            result.wall_clock_s, abs=DOWNLOAD_TICK_S
        )
        assert result.tick_durations_s.sum() == pytest.approx(
            result.wall_clock_s, abs=1e-6
        )

    def test_megabits_conserved(self, manifest):
        result = Player(manifest).play(FixedTrack(2), lambda t: 137.0)
        downloaded = float(
            (result.download_rate_timeline * result.tick_durations_s).sum()
        )
        expected = sum(
            manifest.chunk_size_mbit(i, 2) for i in range(manifest.n_chunks)
        )
        assert downloaded == pytest.approx(expected, rel=1e-6)

    def test_rtt_gaps_have_zero_rate_ticks(self, manifest):
        # 1 s RTT per chunk on a fast link: most of the session is
        # radio-idle, so most ticks must be zero-rate.
        result = Player(manifest).play(
            FixedTrack(0), lambda t: 5000.0, rtt_s=1.0
        )
        timeline = result.download_rate_timeline
        assert (timeline == 0.0).sum() >= 0.5 * timeline.size

    def test_fractional_idle_not_truncated(self, manifest):
        # The old player dropped idle remainders via int(idle / tick);
        # now the timeline covers the full wall clock regardless.
        result = Player(manifest).play(FixedTrack(0), lambda t: 333.3)
        n = result.download_rate_timeline.size
        assert abs(n * DOWNLOAD_TICK_S - result.wall_clock_s) <= DOWNLOAD_TICK_S

    def test_final_drain_on_timeline(self, manifest):
        # After the last chunk the buffer drains at zero rate; the
        # timeline must cover it (wall clock includes the drain).
        result = Player(manifest).play(FixedTrack(0), lambda t: 5000.0)
        tail = result.download_rate_timeline[-20:]
        assert np.all(tail == 0.0)

    def test_chunk_finish_times_recorded(self, manifest):
        result = Player(manifest).play(FixedTrack(1), lambda t: 200.0)
        finishes = result.chunk_finish_times_s
        assert len(finishes) == manifest.n_chunks
        assert all(a < b for a, b in zip(finishes, finishes[1:]))
        assert finishes[-1] <= result.wall_clock_s


class TestSatelliteFixes:
    def test_normalized_bitrate_uses_ladder_top(self, manifest):
        # A playback camped on track 0 must normalize against the
        # ladder top (160), not its own max selected bitrate.
        result = Player(manifest).play(FixedTrack(0), lambda t: 100.0)
        assert result.ladder_top_mbps == pytest.approx(160.0)
        expected = manifest.ladder[0] / manifest.ladder.top_mbps
        assert result.normalized_bitrate == pytest.approx(expected, rel=1e-9)
        assert result.normalized_bitrate < 0.2

    def test_qoe_default_weights_use_ladder_top(self, manifest):
        from repro.video.qoe import default_weights

        result = Player(manifest).play(FixedTrack(0), lambda t: 100.0)
        assert result.qoe() == pytest.approx(
            result.qoe(default_weights(manifest.ladder.top_mbps))
        )

    def test_never_started_reports_true_startup(self):
        # One 2 s chunk with a 4 s startup buffer: the stream ends
        # before the threshold is reached. Startup is then the moment
        # the download completes — never 0.
        manifest = VideoManifest(
            ladder=build_ladder(160.0), chunk_s=2.0, n_chunks=1, vbr_sigma=0.0
        )
        player = Player(manifest, startup_buffer_s=4.0)
        result = player.play(FixedTrack(0), lambda t: 50.0, rtt_s=0.05)
        assert result.startup_s > 0.0
        # Download: rtt + size/rate; startup == the download finish.
        expected = 0.05 + manifest.chunk_size_mbit(0, 0) / 50.0
        assert result.startup_s == pytest.approx(expected, abs=1e-6)
        assert result.wall_clock_s == pytest.approx(
            result.startup_s + manifest.chunk_s, abs=1e-6
        )


class TestEnergyIntegral:
    """_energy_j over true tick durations, exact for linear curves."""

    def _constant_rate_playback(self, rtt_s=0.3, bandwidth=200.0):
        manifest = VideoManifest(
            ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=10, vbr_sigma=0.0
        )
        selector = StreamingInterfaceSelector(manifest)
        player = Player(manifest)
        abr = FixedTrack(2)
        playback = player.play(abr, lambda t: bandwidth, rtt_s=rtt_s)
        return manifest, selector, playback

    def test_energy_matches_closed_form(self):
        # For an all-5G session on a linear DTR curve the integral has
        # a closed form: intercept * wall_clock + slope * total_mbit.
        manifest, selector, playback = self._constant_rate_playback()
        energy = selector._energy_j(playback, ["5G"] * 10)
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        total_mbit = sum(
            manifest.chunk_size_mbit(i, 2) for i in range(manifest.n_chunks)
        )
        closed_form = (
            curve.power_mw(dl_mbps=0.0) * playback.wall_clock_s
            + (curve.power_mw(dl_mbps=1.0) - curve.power_mw(dl_mbps=0.0))
            * total_mbit
        ) / 1000.0
        assert energy == pytest.approx(closed_form, rel=1e-6)

    def test_timeline_energy_helper_agrees(self):
        _, selector, playback = self._constant_rate_playback()
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        helper = timeline_energy_j(
            playback.download_rate_timeline, playback.tick_durations_s, curve
        )
        assert helper == pytest.approx(selector._energy_j(playback, ["5G"] * 10))

    def test_old_tick_accounting_underpriced_idle(self):
        """Regression: replay the pre-fix accounting and show it lost
        connected-radio idle energy (no RTT ticks, truncated idle,
        partial ticks billed a full tick of megabits but priced over a
        nominal grid that no longer matched the wall clock)."""
        manifest, selector, playback = self._constant_rate_playback(rtt_s=0.3)
        new_energy = selector._energy_j(playback, ["5G"] * 10)

        # Reconstruct the old timeline: download ticks only (partials
        # as full entries), idle truncated, RTT and drain absent.
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        old_timeline = []
        tick = DOWNLOAD_TICK_S
        buffer_s, t, started = 0.0, 0.0, False
        player = Player(manifest)
        for i in range(manifest.n_chunks):
            remaining = manifest.chunk_size_mbit(i, 2)
            buffer_s, t, *_ = player._advance(0.3, buffer_s, t, started, False)
            while remaining > 1e-9:
                rate = 200.0
                step = rate * tick
                consumed = min(step, remaining)
                dt = tick * (consumed / step)
                remaining -= consumed
                old_timeline.append(consumed / tick)
                buffer_s, t, *_ = player._advance(dt, buffer_s, t, started, False)
            buffer_s += manifest.chunk_s
            if not started and buffer_s >= player.startup_buffer_s:
                started = True
            if buffer_s > player.max_buffer_s:
                idle = buffer_s - player.max_buffer_s
                buffer_s, t, *_ = player._advance(idle, buffer_s, t, started, False)
                old_timeline.extend([0.0] * int(idle / tick))
        old_energy = (
            sum(curve.power_mw(dl_mbps=r) * tick for r in old_timeline) / 1000.0
        )
        # The old path missed the RTT gaps (0.3 s x 10 chunks) and the
        # final drain entirely: it must underprice the session.
        assert old_energy < 0.95 * new_energy

    def test_interface_attribution_uses_finish_times(self):
        # First half of the chunks on 5G, second half on 4G: pricing
        # the 4G half on the LTE curve must be much cheaper than
        # pricing everything on mmWave.
        _, selector, playback = self._constant_rate_playback()
        mixed = ["5G"] * 5 + ["4G"] * 5
        energy_mixed = selector._energy_j(playback, mixed)
        energy_all_5g = selector._energy_j(playback, ["5G"] * 10)
        assert energy_mixed < energy_all_5g
