"""Tests for repro.video.player."""

import numpy as np
import pytest

from repro.video.abr.base import ABRAlgorithm
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import Player


class FixedTrack(ABRAlgorithm):
    """Always requests the same track."""

    def __init__(self, track: int):
        self.track = track
        self.contexts = []

    def select(self, context):
        self.contexts.append(context)
        return self.track


@pytest.fixture
def manifest():
    return VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=20, vbr_sigma=0.0)


class TestPlayback:
    def test_fast_network_no_stalls(self, manifest):
        player = Player(manifest)
        result = player.play(FixedTrack(5), lambda t: 2000.0)
        assert result.stall_s == 0.0
        assert result.rebuffer_events == 0
        assert len(result.chunk_tracks) == 20

    def test_slow_network_stalls_at_top_track(self, manifest):
        player = Player(manifest)
        # Top track needs 160 Mbps; the link gives 40.
        result = player.play(FixedTrack(5), lambda t: 40.0)
        assert result.stall_s > 10.0
        assert result.rebuffer_events >= 1

    def test_bottom_track_survives_slow_network(self, manifest):
        player = Player(manifest)
        # Bottom track ~21 Mbps over a 40 Mbps link: no stalls.
        result = player.play(FixedTrack(0), lambda t: 40.0)
        assert result.stall_s == 0.0

    def test_playback_duration_fixed(self, manifest):
        player = Player(manifest)
        result = player.play(FixedTrack(0), lambda t: 500.0)
        assert result.playback_s == manifest.duration_s

    def test_wall_clock_at_least_duration(self, manifest):
        player = Player(manifest)
        result = player.play(FixedTrack(3), lambda t: 100.0)
        assert result.wall_clock_s >= manifest.duration_s * 0.5

    def test_startup_recorded(self, manifest):
        player = Player(manifest)
        result = player.play(FixedTrack(0), lambda t: 100.0)
        assert result.startup_s > 0.0

    def test_download_timeline_energy_consistency(self, manifest):
        player = Player(manifest)
        result = player.play(FixedTrack(2), lambda t: 200.0)
        # Total downloaded bits should equal sum of chunk sizes.
        downloaded = result.download_rate_timeline.sum() * 0.1  # Mbit
        expected = sum(
            manifest.chunk_size_mbit(i, 2) for i in range(manifest.n_chunks)
        )
        assert downloaded == pytest.approx(expected, rel=0.05)

    def test_context_fields_progress(self, manifest):
        player = Player(manifest)
        abr = FixedTrack(1)
        player.play(abr, lambda t: 300.0)
        indices = [c.chunk_index for c in abr.contexts]
        assert indices == list(range(20))
        clocks = [c.wall_clock_s for c in abr.contexts]
        assert all(a <= b for a, b in zip(clocks, clocks[1:]))

    def test_buffer_respects_cap(self, manifest):
        player = Player(manifest, max_buffer_s=12.0)
        abr = FixedTrack(0)
        player.play(abr, lambda t: 5000.0)
        buffers = [c.buffer_s for c in abr.contexts]
        assert max(buffers) <= 12.0 + manifest.chunk_s

    def test_invalid_track_raises(self, manifest):
        player = Player(manifest)
        with pytest.raises(ValueError):
            player.play(FixedTrack(99), lambda t: 100.0)

    def test_invalid_player_params(self, manifest):
        with pytest.raises(ValueError):
            Player(manifest, max_buffer_s=0.0)
        with pytest.raises(ValueError):
            Player(manifest, startup_buffer_s=0.0)

    def test_stall_percent_property(self, manifest):
        player = Player(manifest)
        result = player.play(FixedTrack(5), lambda t: 30.0)
        assert result.stall_percent == pytest.approx(
            100.0 * result.stall_s / (result.stall_s + result.playback_s)
        )
