"""Tests for repro.video.predictors."""

import numpy as np
import pytest

from repro.traces.schema import ThroughputTrace
from repro.video.abr.base import ABRContext, harmonic_mean
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.predictors import (
    GBDTPredictor,
    HarmonicMeanPredictor,
    TruthPredictor,
)


def make_context(history, wall_clock_s=0.0):
    manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=30)
    return ABRContext(
        manifest=manifest,
        chunk_index=0,
        buffer_s=10.0,
        last_track=0,
        throughput_history=history,
        wall_clock_s=wall_clock_s,
    )


class TestHarmonicMeanPredictor:
    def test_matches_helper(self):
        history = [100.0, 200.0, 50.0]
        predictor = HarmonicMeanPredictor(window=5)
        assert predictor.predict(make_context(history)) == pytest.approx(
            harmonic_mean(history)
        )

    def test_empty_history_bottom_track(self):
        predictor = HarmonicMeanPredictor()
        context = make_context([])
        assert predictor.predict(context) == context.ladder.bottom_mbps


class TestTruthPredictor:
    def test_reads_future(self):
        trace = ThroughputTrace("t", "5G", np.concatenate([np.full(10, 100.0), np.full(10, 10.0)]))
        predictor = TruthPredictor(trace, chunk_s=4.0)
        # History says 100, but the future (t=10..) says 10.
        early = predictor.predict(make_context([100.0] * 5, wall_clock_s=0.0))
        late = predictor.predict(make_context([100.0] * 5, wall_clock_s=12.0))
        assert early > late
        assert late == pytest.approx(10.0, rel=0.3)

    def test_horizon_sequence(self):
        trace = ThroughputTrace("t", "5G", np.concatenate([np.full(8, 200.0), np.full(20, 20.0)]))
        predictor = TruthPredictor(trace, chunk_s=4.0)
        horizon = predictor.predict_horizon(make_context([], wall_clock_s=0.0), 4)
        assert len(horizon) == 4
        assert horizon[0] > horizon[-1]

    def test_reset_clears_clock(self):
        trace = ThroughputTrace("t", "5G", np.full(10, 50.0))
        predictor = TruthPredictor(trace)
        predictor.attach_clock(8.0)
        predictor.reset()
        assert predictor._clock_s == 0.0

    def test_invalid_clock(self):
        trace = ThroughputTrace("t", "5G", np.full(10, 50.0))
        with pytest.raises(ValueError):
            TruthPredictor(trace).attach_clock(-1.0)


class TestGBDTPredictor:
    @pytest.fixture(scope="class")
    def trained(self, small_corpus):
        traces_5g, _ = small_corpus
        return GBDTPredictor(seed=0).fit_corpus(traces_5g, chunk_s=4.0), traces_5g

    def test_beats_harmonic_mean_offline(self, trained):
        predictor, traces = trained
        errors_hm, errors_gbdt = [], []
        for trace in traces:
            series = trace.throughput_mbps
            n = (len(series) // 4) * 4
            chunked = series[:n].reshape(-1, 4).mean(axis=1)
            predictor.attach_trace(trace)
            for i in range(6, len(chunked)):
                actual = chunked[i]
                if actual < 1.0:
                    continue
                context = make_context(list(chunked[:i]), wall_clock_s=i * 4.0)
                hm = harmonic_mean(list(chunked[i - 5 : i]))
                gbdt = predictor.predict(context)
                errors_hm.append(abs(hm - actual) / actual)
                errors_gbdt.append(abs(gbdt - actual) / actual)
        # The conservative quantile biases GBDT low, yet it still beats
        # harmonic mean on absolute relative error.
        assert np.mean(errors_gbdt) < np.mean(errors_hm)

    def test_conservative_ratio_below_one(self, trained):
        predictor, _ = trained
        assert 0.2 <= predictor._residual_ratio <= 1.0

    def test_prediction_positive(self, trained):
        predictor, traces = trained
        predictor.attach_trace(traces[0])
        assert predictor.predict(make_context([0.1] * 5)) > 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GBDTPredictor().predict(make_context([1.0]))

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            GBDTPredictor().fit_corpus([])
