"""Tests for the seven ABR algorithms."""

import numpy as np
import pytest

from repro.video.abr import ALL_ABR_NAMES, make_abr
from repro.video.abr.base import ABRContext, harmonic_mean
from repro.video.abr.bba import BBA
from repro.video.abr.bola import BOLA
from repro.video.abr.festive import FESTIVE
from repro.video.abr.mpc import FastMPC, RobustMPC
from repro.video.abr.rate import RateBased
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import Player


def make_context(buffer_s=10.0, last_track=0, history=None, chunk_index=0):
    manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=30, vbr_sigma=0.0)
    return ABRContext(
        manifest=manifest,
        chunk_index=chunk_index,
        buffer_s=buffer_s,
        last_track=last_track,
        throughput_history=history or [],
    )


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([2.0, 4.0]) == pytest.approx(8.0 / 3.0)

    def test_below_arithmetic_mean(self):
        values = [10.0, 100.0, 1000.0]
        assert harmonic_mean(values) < np.mean(values)

    def test_ignores_zeros(self):
        assert harmonic_mean([0.0, 4.0]) == 4.0

    def test_empty_is_zero(self):
        assert harmonic_mean([]) == 0.0


class TestFactory:
    def test_all_names_construct(self):
        for name in ("bba", "rb", "bola", "festive", "fastmpc", "robustmpc", "pensieve"):
            abr = make_abr(name)
            assert hasattr(abr, "select")

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_abr("nope")

    def test_seven_names_listed(self):
        assert len(ALL_ABR_NAMES) == 7


class TestBBA:
    def test_low_buffer_lowest_track(self):
        assert BBA().select(make_context(buffer_s=1.0)) == 0

    def test_high_buffer_top_track(self):
        context = make_context(buffer_s=25.0)
        assert BBA().select(context) == context.n_tracks - 1

    def test_monotone_in_buffer(self):
        bba = BBA()
        tracks = [bba.select(make_context(buffer_s=b)) for b in (2, 6, 10, 14, 25)]
        assert all(a <= b for a, b in zip(tracks, tracks[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            BBA(reservoir_s=0.0)


class TestRateBased:
    def test_no_history_lowest(self):
        assert RateBased().select(make_context()) == 0

    def test_picks_sustainable_track(self):
        context = make_context(history=[100.0] * 5)
        track = RateBased().select(context)
        assert context.ladder[track] <= 100.0
        assert context.ladder[min(track + 1, 5)] > 100.0 or track == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RateBased(window=0)
        with pytest.raises(ValueError):
            RateBased(safety=0.0)


class TestBOLA:
    def test_low_buffer_conservative(self):
        bola = BOLA()
        low = bola.select(make_context(buffer_s=2.0))
        bola.reset()
        high = bola.select(make_context(buffer_s=20.0))
        assert low <= high

    def test_high_buffer_reaches_top(self):
        bola = BOLA()
        assert bola.select(make_context(buffer_s=24.0)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            BOLA(min_buffer_s=10.0, max_buffer_s=5.0)


class TestFESTIVE:
    def test_gradual_upswitch(self):
        festive = FESTIVE()
        festive.reset()
        # Plenty of bandwidth, but climbing is at most one step at a time.
        track = 0
        for i in range(3):
            context = make_context(
                history=[400.0] * 10, last_track=track, chunk_index=i
            )
            new_track = festive.select(context)
            assert new_track - track <= 1
            track = new_track

    def test_eventually_reaches_reference(self):
        festive = FESTIVE()
        festive.reset()
        track = 0
        for i in range(30):
            context = make_context(
                history=[400.0] * 10, last_track=track, chunk_index=i % 29
            )
            track = festive.select(context)
        assert track == 5

    def test_downswitch_immediate(self):
        festive = FESTIVE()
        festive.reset()
        context = make_context(history=[5.0] * 10, last_track=4)
        assert festive.select(context) == 3


class TestMPC:
    def test_plans_against_slow_link(self):
        mpc = FastMPC()
        mpc.reset()
        context = make_context(buffer_s=4.0, history=[10.0] * 5, last_track=5)
        # Downloading another 160 Mbps chunk at 10 Mbps would stall badly.
        assert mpc.select(context) < 5

    def test_upgrades_on_fast_link(self):
        mpc = FastMPC()
        mpc.reset()
        context = make_context(buffer_s=10.0, history=[500.0] * 5, last_track=2)
        assert mpc.select(context) > 2

    def test_robust_more_conservative_than_fast(self, small_corpus, manifest_5g):
        traces_5g, _ = small_corpus
        player = Player(manifest_5g)
        fast_rates, robust_rates = [], []
        for trace in traces_5g:
            fast = player.play(FastMPC(), trace.throughput_at)
            robust = player.play(RobustMPC(), trace.throughput_at)
            fast_rates.append(np.mean(fast.chunk_bitrates_mbps))
            robust_rates.append(np.mean(robust.chunk_bitrates_mbps))
        assert np.mean(robust_rates) <= np.mean(fast_rates)

    def test_step_limit_respected(self):
        mpc = FastMPC(step_limit=1)
        mpc.reset()
        context = make_context(buffer_s=12.0, history=[2000.0] * 5, last_track=0)
        assert mpc.select(context) <= 1


class TestPensieve:
    def test_trains_and_selects(self):
        pensieve = make_abr("pensieve")
        context = make_context(buffer_s=10.0, history=[200.0] * 5, last_track=3)
        track = pensieve.select(context)
        assert 0 <= track < context.n_tracks

    def test_aggressive_on_high_throughput(self):
        pensieve = make_abr("pensieve")
        context = make_context(buffer_s=10.0, history=[500.0] * 5, last_track=4)
        assert pensieve.select(context) >= 3

    def test_network_cached_across_instances(self):
        from repro.video.abr.pensieve import Pensieve

        a = Pensieve()
        context = make_context(history=[100.0] * 5)
        a.select(context)
        assert Pensieve._CACHE is not None
        assert (context.n_tracks, a.seed) in Pensieve._CACHE
