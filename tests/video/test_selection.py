"""Tests for repro.video.selection (5G-aware streaming, section 5.4)."""

import pytest

from repro.video.encoding import VideoManifest, build_ladder
from repro.video.selection import (
    StreamingInterfaceSelector,
    _SwitchingBandwidth,
    evaluate_pairs,
)
from repro.traces.schema import ThroughputTrace

import numpy as np


@pytest.fixture(scope="module")
def selector():
    manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=25)
    return StreamingInterfaceSelector(manifest=manifest)


@pytest.fixture(scope="module")
def pair(small_corpus):
    traces_5g, traces_4g = small_corpus
    return traces_5g[0], traces_4g[0]


class TestSwitchingBandwidth:
    def test_follows_active_interface(self):
        t5 = ThroughputTrace("a", "5G", np.full(10, 100.0))
        t4 = ThroughputTrace("b", "4G", np.full(10, 20.0))
        bw = _SwitchingBandwidth(t5, t4, switch_overhead_s=0.0, watchdog=False)
        assert bw(0.0) == 100.0
        bw.switch_to("4G", 1.0)
        assert bw(2.0) == 20.0
        assert bw.switch_count == 1

    def test_switch_overhead_dead_air(self):
        t5 = ThroughputTrace("a", "5G", np.full(30, 100.0))
        t4 = ThroughputTrace("b", "4G", np.full(30, 20.0))
        bw = _SwitchingBandwidth(t5, t4, switch_overhead_s=1.5, watchdog=False)
        bw.switch_to("4G", 5.0)
        # Falling back to 4G is cheap under EN-DC (anchor connected).
        assert bw(5.1) < 1.0
        assert bw(5.5) == 20.0
        # Re-activating the NR leg pays the full gap.
        bw.switch_to("5G", 10.0)
        assert bw(11.0) < 1.0
        assert bw(12.0) == 100.0

    def test_watchdog_bails_and_returns(self):
        # 5G craters between t=10 and t=25; 4G stays at 20.
        series = np.full(60, 200.0)
        series[10:25] = 2.0
        t5 = ThroughputTrace("a", "5G", series)
        t4 = ThroughputTrace("b", "4G", np.full(60, 20.0))
        bw = _SwitchingBandwidth(t5, t4, switch_overhead_s=0.0)
        for t in np.arange(0.0, 40.0, 0.5):
            bw(float(t))
        # Bailed during the crater, returned after it.
        assert bw.switch_count == 2
        assert bw.active == "5G"

    def test_redundant_switch_ignored(self):
        t5 = ThroughputTrace("a", "5G", np.full(10, 100.0))
        t4 = ThroughputTrace("b", "4G", np.full(10, 20.0))
        bw = _SwitchingBandwidth(t5, t4, 0.0, watchdog=False)
        bw.switch_to("5G", 0.0)
        assert bw.switch_count == 0

    def test_unknown_interface_raises(self):
        t5 = ThroughputTrace("a", "5G", np.full(10, 100.0))
        bw = _SwitchingBandwidth(t5, t5, 0.0, watchdog=False)
        with pytest.raises(ValueError):
            bw.switch_to("3G", 0.0)


class TestSchemes:
    def test_5g_only_never_switches(self, selector, pair):
        result = selector.play_5g_only(pair[0])
        assert result.switches == 0
        assert set(result.interface_per_chunk) == {"5G"}
        assert result.energy_j > 0.0

    def test_5g_aware_uses_4g_during_craters(self, selector, pair):
        result = selector.play_5g_aware(pair[0], pair[1])
        # The test corpus has craters, so the scheme should visit 4G.
        assert result.time_on_4g_fraction >= 0.0
        assert result.energy_j > 0.0

    def test_no_overhead_variant_at_least_as_good(self, selector, pair):
        with_oh = selector.play_5g_aware(pair[0], pair[1], with_overhead=True)
        without = selector.play_5g_aware(pair[0], pair[1], with_overhead=False)
        assert without.playback.stall_s <= with_oh.playback.stall_s + 2.0

    def test_evaluate_pairs_summary_shape(self, selector, small_corpus):
        traces_5g, traces_4g = small_corpus
        pairs = list(zip(traces_5g[:3], traces_4g[:3]))
        summary = evaluate_pairs(selector, pairs)
        assert set(summary) == {"5G-only MPC", "5G-aware MPC", "5G-aware MPC NO"}
        for stats in summary.values():
            assert stats["energy_j"] > 0
            assert 0 <= stats["normalized_bitrate"] <= 1.0

    def test_table4_energy_ordering(self, selector, small_corpus):
        # Paper Table 4: 5G-aware consumes less energy than 5G-only.
        traces_5g, traces_4g = small_corpus
        pairs = list(zip(traces_5g, traces_4g))
        summary = evaluate_pairs(selector, pairs)
        assert summary["5G-aware MPC"]["energy_j"] < summary["5G-only MPC"]["energy_j"]

    def test_validation(self):
        manifest = VideoManifest(ladder=build_ladder(160.0), n_chunks=5)
        with pytest.raises(ValueError):
            StreamingInterfaceSelector(manifest=manifest, buffer_return_s=0.0)
        with pytest.raises(ValueError):
            StreamingInterfaceSelector(manifest=manifest, switch_overhead_s=-1.0)
