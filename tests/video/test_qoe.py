"""Tests for repro.video.qoe."""

import pytest

from repro.video.qoe import (
    QoEWeights,
    default_weights,
    mpc_qoe,
    normalized_bitrate,
    stall_percent,
)


class TestMpcQoe:
    def test_utility_only(self):
        weights = QoEWeights(rebuffer_penalty=100.0, smoothness_penalty=0.0)
        assert mpc_qoe([10.0, 10.0], 0.0, weights, first_chunk_prev_mbps=10.0) == 20.0

    def test_rebuffer_penalty(self):
        weights = QoEWeights(rebuffer_penalty=160.0, smoothness_penalty=0.0)
        qoe = mpc_qoe([160.0], 1.0, weights, first_chunk_prev_mbps=160.0)
        assert qoe == pytest.approx(0.0)

    def test_smoothness_penalty(self):
        weights = QoEWeights(rebuffer_penalty=0.0, smoothness_penalty=1.0)
        # 0 -> 10 -> 20: switches cost 10 + 10.
        assert mpc_qoe([10.0, 20.0], 0.0, weights) == pytest.approx(30.0 - 20.0)

    def test_default_weights_anchor(self):
        weights = default_weights(160.0)
        assert weights.rebuffer_penalty == 160.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QoEWeights(rebuffer_penalty=-1.0)
        with pytest.raises(ValueError):
            mpc_qoe([], 0.0, default_weights(10.0))
        with pytest.raises(ValueError):
            mpc_qoe([1.0], -1.0, default_weights(10.0))
        with pytest.raises(ValueError):
            default_weights(0.0)


class TestSimpleMetrics:
    def test_normalized_bitrate(self):
        assert normalized_bitrate([80.0, 160.0], 160.0) == pytest.approx(0.75)

    def test_stall_percent(self):
        assert stall_percent(10.0, 90.0) == pytest.approx(10.0)

    def test_zero_stall(self):
        assert stall_percent(0.0, 100.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_bitrate([], 160.0)
        with pytest.raises(ValueError):
            normalized_bitrate([1.0], 0.0)
        with pytest.raises(ValueError):
            stall_percent(-1.0, 10.0)
        with pytest.raises(ValueError):
            stall_percent(1.0, 0.0)
