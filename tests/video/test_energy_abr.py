"""Tests for the energy-aware ABR (repro.video.abr.energy)."""

import numpy as np
import pytest

from repro.experiments import run_energy_abr
from repro.power.device import get_device
from repro.power.tail import tail_energy_j
from repro.rrc.parameters import get_parameters
from repro.video.abr import make_abr
from repro.video.abr.energy import EnergyAware
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import Player


@pytest.fixture
def manifest():
    return VideoManifest(
        ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=30, vbr_sigma=0.0
    )


class TestEnergyEstimator:
    def test_transfer_energy_matches_curve(self):
        abr = EnergyAware()
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        # 100 Mbit at 200 Mbps: 0.5 s at the 200 Mbps DTR power.
        expected = curve.power_mw(dl_mbps=200.0) * 0.5 / 1000.0
        assert abr.transfer_energy_j(100.0, 200.0) == pytest.approx(expected)

    def test_gap_energy_within_inactivity_timer(self):
        abr = EnergyAware()
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        inactivity_s = get_parameters("verizon-nsa-mmwave").inactivity_ms / 1000.0
        gap = 0.5 * inactivity_s
        # Connected-intercept pricing, linear in the gap.
        intercept_j = curve.power_mw(dl_mbps=0.0) / 1000.0
        assert abr.gap_energy_j(gap) == pytest.approx(intercept_j * gap)
        assert abr.gap_energy_j(0.0) == 0.0
        assert abr.gap_energy_j(-1.0) == 0.0

    def test_gap_energy_beyond_timer_pays_the_tail(self):
        abr = EnergyAware()
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        inactivity_s = get_parameters("verizon-nsa-mmwave").inactivity_ms / 1000.0
        intercept_j = curve.power_mw(dl_mbps=0.0) / 1000.0
        expected = intercept_j * inactivity_s + tail_energy_j("verizon-nsa-mmwave")
        # Beyond the timer the estimate saturates: the radio sleeps.
        assert abr.gap_energy_j(inactivity_s + 10.0) == pytest.approx(expected)
        assert abr.gap_energy_j(inactivity_s + 100.0) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyAware(energy_weight=-1.0)
        with pytest.raises(ValueError):
            EnergyAware(safety=0.0)


class TestSelection:
    def test_factory(self):
        abr = make_abr("energyaware")
        assert isinstance(abr, EnergyAware)
        assert abr.name == "energyaware"

    def test_zero_weight_is_pure_qoe(self, manifest):
        # λ=0 on a fat link climbs the ladder like any QoE maximizer.
        result = Player(manifest).play(
            EnergyAware(energy_weight=0.0), lambda t: 2000.0
        )
        assert result.chunk_tracks[-1] == len(manifest.ladder) - 1
        assert result.stall_s == pytest.approx(0.0)

    def test_large_weight_camps_on_the_bottom(self, manifest):
        result = Player(manifest).play(
            EnergyAware(energy_weight=1e6), lambda t: 2000.0
        )
        assert all(track == 0 for track in result.chunk_tracks)

    def test_bitrate_monotone_in_weight(self, manifest):
        # More λ never buys more bitrate (same deterministic link).
        bitrates = []
        for weight in (0.0, 50.0, 200.0, 1000.0):
            result = Player(manifest).play(
                EnergyAware(energy_weight=weight), lambda t: 400.0
            )
            bitrates.append(result.normalized_bitrate)
        assert all(a >= b - 1e-9 for a, b in zip(bitrates, bitrates[1:]))
        # ... and the trade-off is graduated, not a single cliff: the
        # intermediate weights sit strictly between the extremes.
        assert bitrates[0] > bitrates[1] > bitrates[-1]

    def test_selects_within_ladder(self, manifest):
        rng = np.random.default_rng(4)
        noise = rng.uniform(20.0, 300.0, size=400)
        result = Player(manifest).play(
            EnergyAware(energy_weight=100.0),
            lambda t: noise[int(t) % 400],
        )
        assert all(
            0 <= track < len(manifest.ladder) for track in result.chunk_tracks
        )


class TestEnergyAbrExperiment:
    def test_tradeoff_shape(self):
        result = run_energy_abr(n_traces=3, n_chunks=25, duration_s=120, seed=2)
        rows = result["rows"]
        assert rows[0]["energy_weight"] == 0.0
        # Energy falls from baseline to the largest λ ...
        assert rows[-1]["energy_j"] < rows[0]["energy_j"]
        # ... paid for in bitrate.
        assert rows[-1]["normalized_bitrate"] < rows[0]["normalized_bitrate"]
        assert result["energy_saving_frac"] > 0.0
        assert result["bitrate_cost_frac"] > 0.0

    def test_weights_must_start_at_zero(self):
        with pytest.raises(ValueError, match="baseline"):
            run_energy_abr(n_traces=1, energy_weights=(10.0, 20.0))
