"""Tests for the LL-DASH live player and its controllers."""

import json

import numpy as np
import pytest

from repro.engine import JobSpec, execute
from repro.experiments import run_live_streaming
from repro.experiments.export import to_jsonable
from repro.video.encoding import build_ladder
from repro.video.live import (
    LIVE_CONTROLLER_NAMES,
    LiveManifest,
    LivePlayer,
    LiveQoEWeights,
    default_live_weights,
    make_live_controller,
)
from repro.video.live.controllers import LiveContext, LiveController
from repro.video.timeline import DOWNLOAD_TICK_S


class FixedLiveTrack(LiveController):
    """Always requests the same track."""

    name = "fixed"

    def __init__(self, track: int):
        self.track = track

    def select(self, context):
        return self.track


@pytest.fixture
def manifest():
    return LiveManifest(
        ladder=build_ladder(80.0),
        segment_s=1.0,
        chunks_per_segment=5,
        n_segments=60,
        vbr_sigma=0.0,
    )


class TestManifest:
    def test_validation(self):
        ladder = build_ladder(80.0)
        with pytest.raises(ValueError):
            LiveManifest(ladder=ladder, segment_s=0.0)
        with pytest.raises(ValueError):
            LiveManifest(ladder=ladder, chunks_per_segment=0)
        with pytest.raises(ValueError):
            LiveManifest(ladder=ladder, n_segments=0)

    def test_chunk_availability_schedule(self, manifest):
        # Chunk j of segment k leaves the encoder at
        # k * segment_s + (j + 1) * cmaf_chunk_s.
        assert manifest.cmaf_chunk_s == pytest.approx(0.2)
        assert manifest.chunk_available_at_s(0, 0) == pytest.approx(0.2)
        assert manifest.chunk_available_at_s(0, 4) == pytest.approx(1.0)
        assert manifest.chunk_available_at_s(3, 2) == pytest.approx(3.6)
        with pytest.raises(IndexError):
            manifest.chunk_available_at_s(0, 5)

    def test_sizes_deterministic_and_nominal(self, manifest):
        other = LiveManifest(
            ladder=build_ladder(80.0),
            segment_s=1.0,
            chunks_per_segment=5,
            n_segments=60,
            vbr_sigma=0.0,
        )
        for k in (0, 30, 59):
            assert manifest.track_sizes_mbit(k) == other.track_sizes_mbit(k)
        # vbr_sigma=0: every segment is exactly bitrate * segment_s.
        assert manifest.segment_size_mbit(7, 3) == pytest.approx(
            manifest.ladder[3] * manifest.segment_s
        )


class TestLivePlayer:
    def test_encoder_paced_on_fast_link(self, manifest):
        # A huge link cannot outrun the encoder: the session lasts at
        # least the presentation duration, and the radio is idle for
        # almost all of it (mean timeline rate << link rate).
        player = LivePlayer(manifest)
        result = player.play(FixedLiveTrack(0), lambda t: 5000.0)
        assert result.wall_clock_s >= manifest.duration_s
        timeline = result.download_rate_timeline
        assert float(np.mean(timeline)) < 0.01 * 5000.0
        assert (timeline == 0.0).sum() >= 0.3 * timeline.size

    def test_latency_held_on_constant_bandwidth(self, manifest):
        # Plenty of bandwidth: live latency stays near the target and
        # playback never stalls or jumps.
        player = LivePlayer(manifest, latency_target_s=3.0)
        result = player.play(FixedLiveTrack(2), lambda t: 500.0)
        assert result.stall_s == pytest.approx(0.0)
        assert result.latency_jumps == 0
        assert result.mean_latency_s < 3.0 + 1.0
        assert result.p95_latency_s < 3.0 + 1.5

    def test_timeline_invariant(self, manifest):
        for bandwidth in (30.0, 120.0, 1000.0):
            result = LivePlayer(manifest).play(
                FixedLiveTrack(1), lambda t: bandwidth
            )
            n = result.download_rate_timeline.size
            assert n * DOWNLOAD_TICK_S == pytest.approx(
                result.wall_clock_s, abs=DOWNLOAD_TICK_S
            )
            assert result.tick_durations_s.sum() == pytest.approx(
                result.wall_clock_s, abs=1e-6
            )

    def test_megabits_conserved(self, manifest):
        result = LivePlayer(manifest).play(FixedLiveTrack(2), lambda t: 300.0)
        downloaded = float(
            (result.download_rate_timeline * result.tick_durations_s).sum()
        )
        expected = sum(
            manifest.segment_size_mbit(k, 2)
            for k in range(manifest.n_segments)
        )
        assert downloaded == pytest.approx(expected, rel=1e-6)

    def test_drift_triggers_latency_jump(self, manifest):
        # A link slower than the bottom track: latency runs away and
        # the playhead must jump (skipping media) to re-sync.
        bottom_mbps = manifest.ladder[0]
        player = LivePlayer(manifest, latency_target_s=3.0, max_drift_s=4.0)
        result = player.play(
            FixedLiveTrack(0), lambda t: bottom_mbps * 0.4
        )
        assert result.latency_jumps >= 1
        assert result.skipped_s > 0.0

    def test_rate_control_speeds_up_when_behind(self, manifest):
        player = LivePlayer(manifest, latency_target_s=3.0, catchup_rate=0.3)
        # Behind the target with buffer available: speed up.
        assert player._playback_rate(4.5, 2.0) > 1.0
        # Ahead of the target: slow down.
        assert player._playback_rate(1.5, 2.0) < 1.0
        # Inside the deadband: exactly 1.
        assert player._playback_rate(3.05, 2.0) == 1.0
        # Behind but the buffer is nearly dry: don't speed into a stall.
        assert player._playback_rate(4.5, 0.2) == 1.0
        # Authority is bounded by catchup_rate.
        assert player._playback_rate(30.0, 10.0) == pytest.approx(1.3)

    def test_never_started_stream_shorter_than_startup(self):
        manifest = LiveManifest(
            ladder=build_ladder(80.0),
            segment_s=1.0,
            chunks_per_segment=5,
            n_segments=1,
            vbr_sigma=0.0,
        )
        player = LivePlayer(manifest, startup_buffer_s=5.0)
        result = player.play(FixedLiveTrack(0), lambda t: 500.0)
        assert result.startup_s > 0.0

    def test_invalid_track_rejected(self, manifest):
        player = LivePlayer(manifest)
        with pytest.raises(ValueError, match="invalid track"):
            player.play(FixedLiveTrack(99), lambda t: 100.0)

    def test_player_validation(self, manifest):
        with pytest.raises(ValueError):
            LivePlayer(manifest, latency_target_s=0.0)
        with pytest.raises(ValueError):
            LivePlayer(manifest, catchup_rate=1.0)
        with pytest.raises(ValueError):
            LivePlayer(manifest, max_drift_s=0.0)

    def test_qoe_penalizes_latency_excess(self, manifest):
        result = LivePlayer(manifest).play(FixedLiveTrack(1), lambda t: 40.0)
        top = manifest.ladder.top_mbps
        lenient = LiveQoEWeights(rebuffer_penalty=top)
        strict = LiveQoEWeights(
            rebuffer_penalty=top, latency_penalty=top, rate_penalty=top
        )
        assert result.qoe(strict) <= result.qoe(lenient)
        assert result.qoe() == pytest.approx(
            result.qoe(default_live_weights(top))
        )
        with pytest.raises(ValueError):
            LiveQoEWeights(rebuffer_penalty=-1.0)


class TestControllers:
    def _context(self, manifest, throughput, latency_s=3.0, buffer_s=2.0):
        return LiveContext(
            manifest=manifest,
            segment_index=5,
            buffer_s=buffer_s,
            live_latency_s=latency_s,
            latency_target_s=3.0,
            playback_rate=1.0,
            last_track=2,
            throughput_history=list(throughput),
        )

    def test_factory_names(self):
        made = {
            make_live_controller(n).name
            for n in ("lolp", "lol+", "l2a", "stallion")
        }
        assert made == set(LIVE_CONTROLLER_NAMES)
        with pytest.raises(KeyError):
            make_live_controller("nope")

    @pytest.mark.parametrize("name", ["lolp", "l2a", "stallion"])
    def test_selections_valid_and_deterministic(self, manifest, name):
        first = make_live_controller(name)
        second = make_live_controller(name)
        history = [60.0, 45.0, 80.0, 30.0, 55.0]
        for i in range(1, len(history) + 1):
            ctx = self._context(manifest, history[:i])
            a, b = first.select(ctx), second.select(ctx)
            assert a == b
            assert 0 <= a < len(manifest.ladder)

    @pytest.mark.parametrize("name", ["lolp", "l2a", "stallion"])
    def test_cold_start_is_bottom_track(self, manifest, name):
        controller = make_live_controller(name)
        assert controller.select(self._context(manifest, [])) == 0

    def test_lolp_panics_on_latency(self, manifest):
        controller = make_live_controller("lolp")
        calm = controller.select(self._context(manifest, [200.0] * 4))
        panicked = controller.select(
            self._context(manifest, [200.0] * 4, latency_s=9.0)
        )
        assert calm > 0
        assert panicked == 0

    def test_stallion_steps_down_on_latency(self, manifest):
        controller = make_live_controller("stallion")
        calm = controller.select(self._context(manifest, [60.0] * 6))
        late = controller.select(
            self._context(manifest, [60.0] * 6, latency_s=4.5)
        )
        assert late == calm - 1

    def test_l2a_reset_clears_state(self, manifest):
        controller = make_live_controller("l2a")
        for i in range(4):
            controller.select(self._context(manifest, [50.0] * (i + 1)))
        assert controller._weights is not None
        controller.reset()
        assert controller._weights is None
        assert controller._queue == 0.0


class TestLiveExperiment:
    def test_runner_shape(self):
        result = run_live_streaming(n_traces=2, duration_s=60, seed=1)
        assert [r["controller"] for r in result["rows"]] == list(
            LIVE_CONTROLLER_NAMES
        )
        for row in result["rows"]:
            assert row["energy_j"] > 0.0
            assert row["mean_latency_s"] > 0.0
            assert 0.0 <= row["normalized_bitrate"] <= 1.0
            assert 0.0 <= row["stall_percent"] < 100.0

    def test_live_engine_serial_equals_parallel(self):
        # The ISSUE satellite: a live sweep through the engine is
        # bit-identical serial vs parallel.
        jobs = [JobSpec(runner="live", scale=0.1, label="live")]
        serial = execute(jobs, workers=1)
        parallel = execute(jobs, workers=2)
        serial.raise_if_failed()
        parallel.raise_if_failed()
        canon = lambda r: json.dumps(
            to_jsonable(r.outcomes[0].value), sort_keys=True
        )
        assert canon(serial) == canon(parallel)
