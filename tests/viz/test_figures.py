"""Smoke tests for the per-figure SVG renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.figures import FIGURES, render_figure


class TestRenderFigure:
    @pytest.mark.parametrize("name", ["fig9", "fig12", "fig21"])
    def test_single_figures_render(self, name, tmp_path):
        paths = render_figure(name, tmp_path, scale=0.25)
        assert paths
        for path in paths:
            assert path.exists()
            ET.parse(path)

    def test_fig10_four_panels(self, tmp_path):
        paths = render_figure("fig10", tmp_path, scale=0.25)
        assert len(paths) == 4

    def test_fig11_two_directions(self, tmp_path):
        paths = render_figure("fig11", tmp_path, scale=0.25)
        names = {p.name for p in paths}
        assert names == {"fig11_dl.svg", "fig11_ul.svg"}

    def test_unknown_figure_raises(self, tmp_path):
        with pytest.raises(KeyError):
            render_figure("fig999", tmp_path)

    def test_registry_complete(self):
        assert {"fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig17", "fig20", "fig21"} <= set(FIGURES)


class TestExtendedRenderers:
    @pytest.mark.parametrize("name", ["fig14", "fig15", "fig23"])
    def test_extended_figures_render(self, name, tmp_path):
        paths = render_figure(name, tmp_path, scale=0.25)
        for path in paths:
            assert path.exists()
            ET.parse(path)

    def test_fig18_three_panels(self, tmp_path):
        paths = render_figure("fig18", tmp_path, scale=0.25)
        assert len(paths) == 3

    def test_fig19_two_panels(self, tmp_path):
        paths = render_figure("fig19", tmp_path, scale=0.2)
        assert len(paths) == 2

    def test_full_registry(self):
        expected = {
            "fig1", "fig2", "fig3", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig17", "fig18",
            "fig19", "fig20", "fig21", "fig23", "fig24",
        }
        assert expected <= set(FIGURES)


class TestFig22Trees:
    def test_fig22_two_trees(self, tmp_path):
        paths = render_figure("fig22", tmp_path, scale=0.25)
        assert len(paths) == 2
        for path in paths:
            ET.parse(path)
            text = path.read_text()
            assert "Use 4G" in text or "Use 5G" in text
