"""Tests for repro.viz.svg."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import BarChart, Chart, Series, _log_ticks, _nice_ticks, render_svg


class TestTicks:
    def test_nice_ticks_cover_range(self):
        ticks = _nice_ticks(0.0, 100.0)
        assert ticks[0] >= 0.0
        assert ticks[-1] <= 100.0
        assert 3 <= len(ticks) <= 8

    def test_nice_ticks_round_values(self):
        for tick in _nice_ticks(0.0, 7.3):
            assert tick == round(tick, 6)

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert len(ticks) >= 1

    def test_log_ticks_decades(self):
        assert _log_ticks(1.0, 1000.0) == [1.0, 10.0, 100.0, 1000.0]


class TestSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Series("s", [1.0], [1.0, 2.0])

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Series("s", [1.0], [1.0], kind="area")


class TestChart:
    def _chart(self, **kwargs):
        chart = Chart(title="T", x_label="x", y_label="y", **kwargs)
        chart.add(Series("a", [0.0, 1.0, 2.0], [1.0, 4.0, 2.0]))
        chart.add(Series("b", [0.0, 1.0, 2.0], [2.0, 1.0, 3.0], kind="scatter"))
        return chart

    def test_valid_xml(self):
        ET.fromstring(self._chart().to_svg())

    def test_contains_labels_and_legend(self):
        svg = self._chart().to_svg()
        for token in ("T", ">x<", ">y<", ">a<", ">b<"):
            assert token in svg

    def test_log_axes(self):
        chart = Chart(title="L", x_label="x", y_label="y", x_log=True, y_log=True)
        chart.add(Series("s", [1.0, 10.0, 100.0], [1.0, 100.0, 10000.0]))
        ET.fromstring(chart.to_svg())

    def test_empty_chart_raises(self):
        with pytest.raises(ValueError):
            Chart(title="e", x_label="x", y_label="y").to_svg()

    def test_escaping(self):
        chart = Chart(title="a<b & c", x_label="x", y_label="y")
        chart.add(Series("s", [0.0, 1.0], [0.0, 1.0]))
        svg = chart.to_svg()
        assert "a&lt;b &amp; c" in svg
        ET.fromstring(svg)

    def test_render_writes_file(self, tmp_path):
        path = tmp_path / "sub" / "chart.svg"
        render_svg(self._chart(), path)
        assert path.exists()
        ET.parse(path)


class TestBarChart:
    def _chart(self):
        chart = BarChart(
            title="B", x_label="cat", y_label="val", categories=["a", "b", "c"]
        )
        chart.add_group("g1", [1.0, 2.0, 3.0])
        chart.add_group("g2", [3.0, 2.0, 1.0])
        return chart

    def test_valid_xml(self):
        ET.fromstring(self._chart().to_svg())

    def test_bar_count(self):
        svg = self._chart().to_svg()
        # 6 data bars + frame + 2 legend swatches + background.
        assert svg.count("<rect") == 6 + 1 + 2 + 1

    def test_group_length_mismatch(self):
        chart = BarChart(title="B", x_label="x", y_label="y", categories=["a"])
        with pytest.raises(ValueError):
            chart.add_group("g", [1.0, 2.0])

    def test_empty_raises(self):
        chart = BarChart(title="B", x_label="x", y_label="y", categories=["a"])
        with pytest.raises(ValueError):
            chart.to_svg()
