"""End-to-end tests over the HTTP transport (real sockets, one stack)."""

import json

import pytest

from repro.serve.client import ServeAPIError, ServeClient
from repro.serve.config import ServeConfig
from repro.serve.http import run_in_thread


@pytest.fixture()
def stack(tmp_path):
    config = ServeConfig(
        data_dir=tmp_path / "serve", port=0, max_concurrency=2
    )
    handle = run_in_thread(config)
    yield handle, ServeClient(handle.url)
    handle.stop()


class TestLifecycle:
    def test_health(self, stack):
        _, client = stack
        assert client.health() == {"status": "ok"}

    def test_submit_wait_result(self, stack):
        _, client = stack
        record = client.submit(["test.echo"], seed=7)
        assert record["state"] in ("queued", "running")
        final = client.wait(record["id"], timeout=60)
        assert final["state"] == "done"
        assert final["counts"] == {
            "jobs": 1, "ok": 1, "cached": 0, "failed": 0, "skipped": 0,
        }
        result = client.result(record["id"])
        assert result["values"]["test.echo"]["seed"] is not None
        assert result["statuses"] == {"test.echo": "ok"}

    def test_identical_submissions_share_spec_key_and_cache(self, stack):
        _, client = stack
        first = client.submit(["test.echo"], seed=3)
        client.wait(first["id"], timeout=60)
        second = client.submit(["test.echo"], seed=3)
        final = client.wait(second["id"], timeout=60)
        assert second["spec_key"] == first["spec_key"]
        assert second["deduplicated"] is True
        assert final["counts"]["cached"] == 1
        assert (
            client.result(first["id"])["values"]
            == client.result(second["id"])["values"]
        )

    def test_failed_job_settles_failed(self, stack):
        _, client = stack
        record = client.submit(["test.fail"], retries=0)
        final = client.wait(record["id"], timeout=60)
        assert final["state"] == "failed"
        assert "injected permanent failure" in final["error"]

    def test_job_listing_and_tenant_filter(self, stack):
        _, client = stack
        a = client.submit(["test.echo"], seed=1, tenant="alice")
        b = client.submit(["test.echo"], seed=2, tenant="bob")
        client.wait(a["id"], timeout=60)
        client.wait(b["id"], timeout=60)
        ids = {job["id"] for job in client.jobs(tenant="alice")}
        assert ids == {a["id"]}

    def test_manifest_endpoint(self, stack):
        _, client = stack
        record = client.submit(["test.echo"], seed=4)
        client.wait(record["id"], timeout=60)
        manifest = client.manifest(record["id"])
        assert [j["runner"] for j in manifest["jobs"]] == ["test.echo"]


class TestEvents:
    def test_settled_ledger_fetch(self, stack):
        _, client = stack
        record = client.submit(["test.echo"], seed=5)
        client.wait(record["id"], timeout=60)
        events = client.events(record["id"])
        types = [e["event"] for e in events]
        assert types[0] == "sweep_start"
        assert "job_start" in types
        assert "sweep_end" in types

    def test_follow_streams_until_settled(self, stack):
        _, client = stack
        record = client.submit(["test.sleep"], seed=6)
        streamed = [e["event"] for e in client.stream_events(record["id"])]
        assert streamed[0] == "sweep_start"
        assert "sweep_end" in streamed
        # The stream ended => the job had settled by then.
        assert client.job(record["id"])["state"] == "done"


class TestIntrospection:
    def test_stats_shape(self, stack):
        _, client = stack
        stats = client.stats()
        assert {"uptime_s", "scheduler", "cache", "jobs",
                "artifacts"} <= set(stats)

    def test_metrics_exposition(self, stack):
        _, client = stack
        record = client.submit(["test.echo"], seed=8)
        client.wait(record["id"], timeout=60)
        text = client.metrics()
        assert 'repro_serve_jobs{state="done"}' in text
        assert "repro_serve_cache_bytes" in text


class TestErrorMapping:
    def test_bad_request_is_400(self, stack):
        _, client = stack
        with pytest.raises(ServeAPIError) as info:
            client.submit(["no.such.artifact"])
        assert info.value.status == 400
        assert "no.such.artifact" in info.value.message

    def test_malformed_json_is_400(self, stack):
        handle, client = stack
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", handle.port)
        try:
            conn.request("POST", "/v1/jobs", body=b"{nope")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_job_is_404(self, stack):
        _, client = stack
        with pytest.raises(ServeAPIError) as info:
            client.job("j999999-deadbeef")
        assert info.value.status == 404

    def test_unknown_route_is_404(self, stack):
        _, client = stack
        with pytest.raises(ServeAPIError) as info:
            client._request("GET", "/v1/nope")
        assert info.value.status == 404

    def test_result_before_settled_is_409(self, tmp_path):
        config = ServeConfig(
            data_dir=tmp_path / "serve409", port=0, max_concurrency=1
        )
        handle = run_in_thread(config)
        try:
            client = ServeClient(handle.url)
            slow = client.submit(["test.sleep"], seed=1)
            with pytest.raises(ServeAPIError) as info:
                client.result(slow["id"])
            assert info.value.status == 409
            client.wait(slow["id"], timeout=60)
        finally:
            handle.stop()

    def test_queue_full_is_429(self, tmp_path):
        config = ServeConfig(
            data_dir=tmp_path / "serve429",
            port=0,
            max_concurrency=1,
            queue_limit=1,
        )
        handle = run_in_thread(config)
        try:
            client = ServeClient(handle.url)
            ids = []
            saw_429 = False
            for seed in range(12):
                try:
                    ids.append(client.submit(["test.sleep"], seed=seed)["id"])
                except ServeAPIError as exc:
                    assert exc.status == 429
                    saw_429 = True
            assert saw_429
            for job_id in ids:
                client.wait(job_id, timeout=120)
        finally:
            handle.stop()

    def test_draining_is_503(self, stack):
        handle, client = stack
        client.drain()
        with pytest.raises(ServeAPIError) as info:
            client.submit(["test.echo"], seed=1)
        assert info.value.status == 503
        assert client.health() == {"status": "draining"}
