"""Graceful drain, restart replay, and ledger reconciliation.

The ISSUE's drain contract: a drained server settles every in-flight
job (no orphans), its ledger passes ``repro stats``, and a restarted
server replays the submission journal into 100% cache hits.
"""

import json

import pytest

from repro.obs.stats import aggregate_events_file
from repro.serve.client import ServeClient
from repro.serve.config import ServeConfig
from repro.serve.http import run_in_thread
from repro.serve.jobs import (
    TERMINAL_STATES,
    JobRecord,
    JobRequest,
)
from repro.serve.server import ServeServer


def _config(tmp_path, **overrides):
    defaults = dict(
        data_dir=tmp_path / "serve", port=0, max_concurrency=2
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestDrainMidSweep:
    def test_drain_settles_everything(self, tmp_path):
        config = _config(tmp_path)
        handle = run_in_thread(config)
        client = ServeClient(handle.url)
        submitted = [
            client.submit(["test.sleep"], seed=seed)["id"]
            for seed in range(6)
        ]
        # Stop immediately: most jobs are still queued or running.
        handle.stop()
        records = handle.core.jobs.list()
        assert {r.job_id for r in records} == set(submitted)
        assert all(r.state in TERMINAL_STATES for r in records)
        assert all(r.state == "done" for r in records)

    def test_drained_ledger_passes_repro_stats(self, tmp_path):
        config = _config(tmp_path)
        handle = run_in_thread(config)
        client = ServeClient(handle.url)
        for seed in range(4):
            client.submit(["test.echo"], seed=seed)
        handle.stop()
        aggregate = aggregate_events_file(config.ledger_path)
        assert aggregate["overall"]["sweeps"] == 4
        assert aggregate["overall"]["ok"] == 4
        assert aggregate["overall"]["failed"] == 0
        assert "test.echo" in aggregate["runners"]

    def test_drain_is_idempotent_and_rejects_late_submissions(
        self, tmp_path
    ):
        core = ServeServer(_config(tmp_path))
        core.start()
        core.submit({"artifacts": ["test.echo"], "seed": 1})
        assert core.drain(timeout=30) is True
        assert core.drain(timeout=30) is True  # second call is a no-op
        from repro.serve.scheduler import Draining

        with pytest.raises(Draining):
            core.submit({"artifacts": ["test.echo"], "seed": 2})
        core.close()
        # Exactly one drain_begin/end pair in the ledger.
        events = [
            json.loads(line)["event"]
            for line in core.config.ledger_path.read_text().splitlines()
        ]
        assert events.count("serve_drain_begin") == 1
        assert events.count("serve_drain_end") == 1
        assert events[-1] == "serve_stop"


class TestRestartReplay:
    def test_restart_replays_journal_to_cache_hits(self, tmp_path):
        config = _config(tmp_path)
        handle = run_in_thread(config)
        client = ServeClient(handle.url)
        for seed in (1, 2, 3):
            record = client.submit(["test.echo", "test.sleep"], seed=seed)
            client.wait(record["id"], timeout=60)
        handle.stop()

        reborn = run_in_thread(_config(tmp_path, port=0))
        try:
            assert reborn.core.scheduler.admitted == 3
            reborn.core.scheduler.drain(timeout=60)
            records = reborn.core.jobs.list()
            assert len(records) == 3
            cached = sum(r.counts.get("cached", 0) for r in records)
            total = sum(r.counts.get("jobs", 0) for r in records)
            assert cached == total == 6  # 100% cache hits
        finally:
            reborn.stop()

    def test_replay_runs_interrupted_submissions(self, tmp_path):
        """A submission journaled but never executed still runs."""
        config = _config(tmp_path)
        core = ServeServer(config)
        # Journal a submission without ever starting the scheduler —
        # the "killed right after admission" shape.
        core.jobs.add(
            JobRecord(
                job_id="j000001-dead0000",
                request=JobRequest.from_payload(
                    {"artifacts": ["test.echo"], "seed": 42}
                ),
            )
        )
        core.jobs.close()
        core.ledger.close()

        reborn = run_in_thread(_config(tmp_path, port=0))
        try:
            reborn.core.scheduler.drain(timeout=60)
            records = reborn.core.jobs.list()
            assert len(records) == 1
            assert records[0].state == "done"
            assert records[0].counts["ok"] == 1  # actually executed
        finally:
            reborn.stop()

    def test_no_replay_flag(self, tmp_path):
        config = _config(tmp_path)
        handle = run_in_thread(config)
        client = ServeClient(handle.url)
        record = client.submit(["test.echo"], seed=1)
        client.wait(record["id"], timeout=60)
        handle.stop()

        reborn = run_in_thread(
            _config(tmp_path, port=0, replay_journal=False)
        )
        try:
            assert reborn.core.jobs.list() == []
        finally:
            reborn.stop()
