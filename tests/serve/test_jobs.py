"""Tests for repro.serve.jobs: validation, spec keys, the journal."""

import json

import pytest

from repro.engine.spec import artifact_jobs
from repro.serve.jobs import (
    BadRequest,
    JobRecord,
    JobRequest,
    JobStore,
    TERMINAL_STATES,
)


class TestJobRequestValidation:
    def test_minimal_payload(self):
        request = JobRequest.from_payload({"artifacts": ["test.echo"]})
        assert request.artifacts == ("test.echo",)
        assert request.tenant == "anonymous"
        assert request.scale == 1.0

    def test_full_payload(self):
        request = JobRequest.from_payload(
            {
                "artifacts": ["test.echo", "test.sleep"],
                "seed": 7,
                "scale": 0.5,
                "workers": 2,
                "timeout_s": 3.5,
                "retries": 0,
                "tenant": "alice",
            }
        )
        assert request.seed == 7
        assert request.timeout_s == 3.5
        assert request.retries == 0
        assert request.tenant == "alice"

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            "text",
            {},
            {"artifacts": []},
            {"artifacts": "test.echo"},
            {"artifacts": [1, 2]},
            {"artifacts": ["no.such.artifact"]},
            {"artifacts": ["test.echo"], "seed": "seven"},
            {"artifacts": ["test.echo"], "scale": 0},
            {"artifacts": ["test.echo"], "scale": -1.0},
            {"artifacts": ["test.echo"], "workers": 0},
            {"artifacts": ["test.echo"], "timeout_s": -1},
            {"artifacts": ["test.echo"], "retries": -1},
            {"artifacts": ["test.echo"], "tenant": ""},
            {"artifacts": ["test.echo"], "bogus": True},
        ],
    )
    def test_rejects_bad_payloads(self, payload):
        with pytest.raises(BadRequest):
            JobRequest.from_payload(payload)

    def test_to_specs_matches_sweep_cli(self):
        """The contract behind cross-transport determinism."""
        request = JobRequest.from_payload(
            {"artifacts": ["test.echo", "test.sleep"], "seed": 9,
             "scale": 0.5}
        )
        via_server = request.to_specs()
        via_cli = artifact_jobs(
            ["test.echo", "test.sleep"], base_seed=9, scale=0.5
        )
        assert via_server == via_cli


class TestSpecKey:
    def test_stable_and_content_based(self):
        a = JobRequest.from_payload({"artifacts": ["test.echo"], "seed": 1})
        b = JobRequest.from_payload({"artifacts": ["test.echo"], "seed": 1})
        assert a.spec_key() == b.spec_key()

    def test_execution_knobs_do_not_fork_the_key(self):
        base = JobRequest.from_payload({"artifacts": ["test.echo"], "seed": 1})
        tuned = JobRequest.from_payload(
            {
                "artifacts": ["test.echo"],
                "seed": 1,
                "workers": 4,
                "timeout_s": 9.0,
                "retries": 3,
                "tenant": "bob",
            }
        )
        assert base.spec_key() == tuned.spec_key()

    def test_work_changes_fork_the_key(self):
        base = JobRequest.from_payload({"artifacts": ["test.echo"], "seed": 1})
        keys = {
            base.spec_key(),
            JobRequest.from_payload(
                {"artifacts": ["test.sleep"], "seed": 1}
            ).spec_key(),
            JobRequest.from_payload(
                {"artifacts": ["test.echo"], "seed": 2}
            ).spec_key(),
            JobRequest.from_payload(
                {"artifacts": ["test.echo"], "seed": 1, "scale": 0.5}
            ).spec_key(),
        }
        assert len(keys) == 4


class TestJobRecord:
    def test_public_dict_shape(self):
        request = JobRequest.from_payload({"artifacts": ["test.echo"]})
        record = JobRecord(job_id="j1", request=request, submitted_t=1.0)
        public = record.as_public_dict()
        assert public["id"] == "j1"
        assert public["state"] == "queued"
        assert "latency_s" not in public
        record.state = "done"
        record.finished_t = 3.5
        assert record.terminal
        assert record.as_public_dict()["latency_s"] == pytest.approx(2.5)

    def test_terminal_states(self):
        assert TERMINAL_STATES == {"done", "failed", "cancelled"}


class TestJobStore:
    def _request(self, seed=1):
        return JobRequest.from_payload(
            {"artifacts": ["test.echo"], "seed": seed}
        )

    def test_ids_are_unique_and_keyed(self, tmp_path):
        store = JobStore(tmp_path / "jobs.jsonl")
        request = self._request()
        first = store.new_job_id(request)
        second = store.new_job_id(request)
        assert first != second
        assert first.endswith(request.spec_key()[:8])

    def test_journal_roundtrip(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        for seed in (1, 2, 3):
            request = self._request(seed)
            store.add(JobRecord(store.new_job_id(request), request))
        store.close()
        entries = JobStore.read_journal(path)
        assert len(entries) == 3
        replayed = JobRequest.from_payload(entries[0]["request"])
        assert replayed.spec_key() == entries[0]["spec_key"]

    def test_journal_skips_replayed_adds(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        request = self._request()
        store.add(JobRecord("j1", request), journal=False)
        store.close()
        assert not path.exists()

    def test_journal_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        request = self._request()
        store.add(JobRecord("j1", request))
        store.close()
        with path.open("a") as handle:
            handle.write('{"job_id": "j2", "spec')  # killed mid-append
        entries = JobStore.read_journal(path)
        assert [e["job_id"] for e in entries] == ["j1"]

    def test_journal_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('not json\n{"job_id": "j2"}\n')
        with pytest.raises(ValueError):
            JobStore.read_journal(path)

    def test_list_filters(self, tmp_path):
        store = JobStore(tmp_path / "jobs.jsonl")
        alice = JobRequest.from_payload(
            {"artifacts": ["test.echo"], "tenant": "alice"}
        )
        bob = JobRequest.from_payload(
            {"artifacts": ["test.echo"], "tenant": "bob"}
        )
        store.add(JobRecord("j1", alice))
        record = JobRecord("j2", bob)
        record.state = "done"
        store.add(record)
        assert [r.job_id for r in store.list(tenant="alice")] == ["j1"]
        assert [r.job_id for r in store.list(state="done")] == ["j2"]
        assert store.counts_by_state()["queued"] == 1
        assert [r.job_id for r in store.unsettled()] == ["j1"]


class TestBackendField:
    def test_backend_accepted_and_threaded_to_specs(self):
        request = JobRequest.from_payload(
            {"artifacts": ["test.echo"], "backend": "numpy32"}
        )
        assert request.backend == "numpy32"
        specs = request.to_specs()
        assert all(spec.backend == "numpy32" for spec in specs)
        assert request.as_payload()["backend"] == "numpy32"

    def test_unknown_backend_is_bad_request(self):
        with pytest.raises(BadRequest, match="unknown backend"):
            JobRequest.from_payload(
                {"artifacts": ["test.echo"], "backend": "fortran77"}
            )

    def test_unavailable_backend_is_bad_request(self):
        from repro.kernels.backend import get_backend

        if get_backend("numba").available:  # pragma: no cover
            pytest.skip("numba importable here")
        with pytest.raises(BadRequest, match="not available"):
            JobRequest.from_payload(
                {"artifacts": ["test.echo"], "backend": "numba"}
            )

    def test_empty_backend_is_bad_request(self):
        with pytest.raises(BadRequest, match="backend"):
            JobRequest.from_payload(
                {"artifacts": ["test.echo"], "backend": ""}
            )

    def test_default_backend_does_not_fork_the_key(self):
        # Pre-backend journal entries must replay to the same keys.
        bare = JobRequest.from_payload({"artifacts": ["test.echo"]})
        explicit = JobRequest.from_payload(
            {"artifacts": ["test.echo"], "backend": "numpy64"}
        )
        assert bare.spec_key() == explicit.spec_key()

    def test_non_default_backend_forks_the_key(self):
        bare = JobRequest.from_payload({"artifacts": ["test.echo"]})
        alt = JobRequest.from_payload(
            {"artifacts": ["test.echo"], "backend": "numpy32"}
        )
        assert bare.spec_key() != alt.spec_key()
