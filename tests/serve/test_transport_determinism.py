"""Cross-transport determinism: HTTP submission == ``sweep`` CLI.

The same sweep submitted over HTTP and run through ``repro sweep``
must produce bit-identical result values and the same ledger event
sequence modulo timing/identity fields — the guarantee that lets a
client move between the two transports (or verify one against the
other) without re-deriving anything.
"""

import json

from repro.cli import main as cli_main
from repro.serve.client import ServeClient
from repro.serve.config import ServeConfig
from repro.serve.http import run_in_thread

ARTIFACTS = ["test.echo", "test.sleep"]
SEED = 5
SCALE = 0.5

#: Fields that legitimately differ between runs: wall/monotonic times,
#: durations, and trace identity. Everything else must match exactly.
VOLATILE_FIELDS = {
    "t",
    "seq",
    "t_rel",
    "duration_s",
    "elapsed_s",
    "trace_id",
    "span_id",
    "parent_id",
}


def _normalize(events):
    normalized = []
    for event in events:
        scrubbed = {
            k: v for k, v in event.items() if k not in VOLATILE_FIELDS
        }
        if event.get("event") == "run_summary":
            # The summary nests per-runner wall-clock timers and a
            # throughput figure; counts must still match. code_version
            # is transport identity: serve pins a code hash, the CLI
            # only carries one when asked to.
            scrubbed.pop("runners", None)
            scrubbed.pop("jobs_per_s", None)
            scrubbed.pop("code_version", None)
        normalized.append(scrubbed)
    return normalized


def _run_cli_sweep(tmp_path):
    json_path = tmp_path / "cli-values.json"
    events_path = tmp_path / "cli-events.jsonl"
    rc = cli_main(
        [
            "sweep",
            *ARTIFACTS,
            "--seed",
            str(SEED),
            "--scale",
            str(SCALE),
            "--quiet",
            "--json",
            str(json_path),
            "--events",
            str(events_path),
            "--cache-dir",
            str(tmp_path / "cli-cache"),
        ]
    )
    assert rc == 0
    values = json.loads(json_path.read_text())
    events = [
        json.loads(line)
        for line in events_path.read_text().splitlines()
        if line.strip()
    ]
    return values, events


def _run_http_sweep(tmp_path):
    config = ServeConfig(
        data_dir=tmp_path / "serve", port=0, max_concurrency=1
    )
    handle = run_in_thread(config)
    try:
        client = ServeClient(handle.url)
        record = client.submit(ARTIFACTS, seed=SEED, scale=SCALE)
        final = client.wait(record["id"], timeout=120)
        assert final["state"] == "done"
        values = client.result(record["id"])["values"]
        events = client.events(record["id"])
    finally:
        handle.stop()
    return values, events


def test_http_and_cli_sweeps_are_bit_identical(tmp_path):
    cli_values, cli_events = _run_cli_sweep(tmp_path)
    http_values, http_events = _run_http_sweep(tmp_path)

    # Result values: bit-identical, including serialized form.
    assert json.dumps(cli_values, sort_keys=True) == json.dumps(
        http_values, sort_keys=True
    )

    # Ledgers: same event sequence modulo timing/identity fields.
    assert _normalize(cli_events) == _normalize(http_events)


def test_repeated_http_submissions_are_self_identical(tmp_path):
    config = ServeConfig(
        data_dir=tmp_path / "serve2", port=0, max_concurrency=1
    )
    handle = run_in_thread(config)
    try:
        client = ServeClient(handle.url)
        first = client.submit(ARTIFACTS, seed=SEED, scale=SCALE)
        client.wait(first["id"], timeout=120)
        second = client.submit(ARTIFACTS, seed=SEED, scale=SCALE)
        client.wait(second["id"], timeout=120)
        assert (
            client.result(first["id"])["values"]
            == client.result(second["id"])["values"]
        )
        # The rerun was served from cache, not recomputed.
        assert client.job(second["id"])["counts"]["cached"] == 2
    finally:
        handle.stop()
