"""Tests for repro.serve.scheduler: fairness, bounds, drain."""

import threading
import time

import pytest

from repro.serve.jobs import JobRecord, JobRequest
from repro.serve.scheduler import Draining, FairScheduler, QueueFull


def _record(tenant="t", seed=0):
    request = JobRequest.from_payload(
        {"artifacts": ["test.echo"], "seed": seed, "tenant": tenant}
    )
    return JobRecord(job_id=f"{tenant}-{seed}", request=request)


class TestFairness:
    def test_round_robin_across_tenants(self):
        """A flooding tenant cannot starve a later, smaller one."""
        order = []
        done = threading.Event()

        def run(record):
            order.append(record.job_id)
            if len(order) >= 7:
                done.set()

        scheduler = FairScheduler(run, max_concurrency=1)
        for seed in range(6):
            scheduler.submit(_record("flood", seed))
        scheduler.submit(_record("small", 0))
        scheduler.start()
        assert done.wait(timeout=10)
        scheduler.stop()
        # The single "small" job ran long before flood's backlog spent.
        assert order.index("small-0") <= 2

    def test_concurrency_bound_is_respected(self):
        lock = threading.Lock()
        running = [0]
        peak = [0]
        done = threading.Event()
        total = 12

        def run(record):
            with lock:
                running[0] += 1
                peak[0] = max(peak[0], running[0])
            time.sleep(0.02)
            with lock:
                running[0] -= 1
                if scheduler.completed + 1 >= total:
                    done.set()

        scheduler = FairScheduler(run, max_concurrency=3)
        scheduler.start()
        for seed in range(total):
            scheduler.submit(_record("t", seed))
        scheduler.drain()
        assert peak[0] <= 3
        assert scheduler.completed == total


class TestBounds:
    def test_queue_limit_is_per_tenant(self):
        scheduler = FairScheduler(lambda r: None, queue_limit=2)
        scheduler.submit(_record("a", 0))
        scheduler.submit(_record("a", 1))
        with pytest.raises(QueueFull):
            scheduler.submit(_record("a", 2))
        scheduler.submit(_record("b", 0))  # other tenants unaffected
        assert scheduler.rejected == 1

    def test_stats_shape(self):
        scheduler = FairScheduler(lambda r: None, queue_limit=8)
        scheduler.submit(_record("a", 0))
        stats = scheduler.stats()
        assert stats["queued"] == 1
        assert stats["queued_by_tenant"] == {"a": 1}
        assert stats["admitted"] == 1
        assert not stats["draining"]


class TestDrain:
    def test_drain_settles_backlog_and_blocks_admission(self):
        ran = []
        scheduler = FairScheduler(
            lambda r: ran.append(r.job_id), max_concurrency=2
        )
        scheduler.start()
        for seed in range(5):
            scheduler.submit(_record("t", seed))
        assert scheduler.drain(timeout=10)
        assert len(ran) == 5
        with pytest.raises(Draining):
            scheduler.submit(_record("t", 99))

    def test_drain_waits_for_in_flight_jobs(self):
        release = threading.Event()
        started = threading.Event()

        def run(record):
            started.set()
            release.wait(timeout=10)

        scheduler = FairScheduler(run, max_concurrency=1)
        scheduler.start()
        scheduler.submit(_record("t", 0))
        assert started.wait(timeout=10)
        assert scheduler.drain(timeout=0.05) is False  # still in flight
        release.set()
        assert scheduler.drain(timeout=10) is True
        scheduler.stop()

    def test_stop_joins_workers(self):
        scheduler = FairScheduler(lambda r: None, max_concurrency=2)
        scheduler.start()
        scheduler.submit(_record("t", 0))
        assert scheduler.stop(timeout=10)
        assert scheduler._threads == []

    def test_worker_survives_job_exception(self):
        done = threading.Event()

        def run(record):
            if record.job_id == "t-0":
                raise RuntimeError("boom")
            done.set()

        scheduler = FairScheduler(run, max_concurrency=1)
        scheduler.start()
        scheduler.submit(_record("t", 0))
        scheduler.submit(_record("t", 1))
        assert done.wait(timeout=10)
        scheduler.stop()
        assert scheduler.completed == 2
