"""Tests for repro.serve.store: bounded cache and artifact store."""

import json
import os
import threading
import time

import pytest

from repro.engine import JobSpec
from repro.serve.store import ArtifactStore, BoundedResultCache


def _fill(cache, count, payload_bytes=200, code_version="v"):
    """Put ``count`` entries of roughly ``payload_bytes`` each."""
    for i in range(count):
        spec = JobSpec(runner="test.echo", seed=i, label=f"e{i}")
        key = cache.key_for(spec, code_version)
        cache.put(spec, key, {"blob": "x" * payload_bytes, "i": i})
        # Distinct mtimes so LRU order is well-defined on coarse clocks.
        entry = cache.path_for(spec, key)
        os.utime(entry, ns=(i, i))


class TestBoundedResultCache:
    def test_put_enforces_budget(self, tmp_path):
        cache = BoundedResultCache(tmp_path, max_bytes=1200)
        _fill(cache, 10)
        assert cache.size_bytes() <= 1200
        assert cache.approx_bytes == cache.size_bytes()
        assert cache.evictions > 0
        assert len(cache) < 10

    def test_never_exceeds_budget_during_fill(self, tmp_path):
        cache = BoundedResultCache(tmp_path, max_bytes=1500)
        for i in range(30):
            spec = JobSpec(runner="test.echo", seed=i)
            cache.put(spec, cache.key_for(spec, "v"), {"blob": "y" * 300})
            assert cache.size_bytes() <= 1500

    def test_eviction_is_lru(self, tmp_path):
        cache = BoundedResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, 6)
        # Use entry 0 so it becomes most-recent despite oldest insert.
        spec0 = JobSpec(runner="test.echo", seed=0, label="e0")
        key0 = cache.key_for(spec0, "v")
        hit, _ = cache.get(spec0, key0)
        assert hit
        cache.max_bytes = 600  # roughly two entries
        cache.enforce_budget()
        assert cache.path_for(spec0, key0).exists()

    def test_initial_scan_counts_existing_entries(self, tmp_path):
        seed_cache = BoundedResultCache(tmp_path, max_bytes=10**9)
        _fill(seed_cache, 4)
        reopened = BoundedResultCache(tmp_path, max_bytes=10**9)
        assert reopened.approx_bytes == reopened.size_bytes() > 0

    def test_stats_shape(self, tmp_path):
        cache = BoundedResultCache(tmp_path, max_bytes=4096)
        stats = cache.stats()
        assert set(stats) == {
            "max_bytes", "approx_bytes", "entries", "evictions",
            "evicted_bytes",
        }


class TestArtifactStore:
    def test_roundtrip_and_dedup(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_bytes(b"hello world")
        assert store.get_bytes(digest) == b"hello world"
        assert store.put_bytes(b"hello world") == digest
        assert len(store) == 1
        assert digest in store

    def test_json_roundtrip_is_canonical(self, tmp_path):
        store = ArtifactStore(tmp_path)
        d1 = store.put_json({"b": 2, "a": 1})
        d2 = store.put_json({"a": 1, "b": 2})
        assert d1 == d2  # key order cannot fork the address
        assert store.get_json(d1) == {"a": 1, "b": 2}

    def test_missing_digest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get_bytes("ff" * 32) is None
        assert ("ff" * 32) not in store

    def test_sharded_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_bytes(b"data", suffix=".json")
        path = store.find(digest)
        assert path is not None
        assert path.parent.name == digest[:2]
        assert path.name == digest + ".json"

    def test_gc_evicts_lru(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = []
        for i in range(5):
            digest = store.put_bytes(f"blob-{i}".encode() * 50)
            os.utime(store.find(digest), ns=(i, i))
            digests.append(digest)
        summary = store.gc(max_bytes=store.size_bytes() - 1)
        assert summary["evicted"] >= 1
        assert digests[0] not in store  # oldest went first
        assert digests[-1] in store

    def test_concurrent_writers_same_content(self, tmp_path):
        store = ArtifactStore(tmp_path)
        results = []

        def _put():
            results.append(store.put_bytes(b"shared payload"))

        threads = [threading.Thread(target=_put) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == 1
        assert len(store) == 1
        assert not list(tmp_path.rglob(".tmp-*"))
