"""Tests for repro.obs.report: the data model, the HTML artifact, and
``repro report``'s gauge-driven exit semantics end to end."""

import json

import pytest

from repro.engine import JobSpec, execute
from repro.obs.events import EventLog, read_events
from repro.obs.report import build_report, render_html, write_report


def _synthetic_events():
    return [
        {"event": "sweep_start", "t": 100.0, "jobs": 2, "workers": 1},
        {"event": "span_start", "name": "sweep", "trace_id": "t",
         "span_id": "s1", "parent_id": None, "t_rel": 0.0, "t": 100.0},
        {"event": "job_start", "t": 100.1, "index": 0, "runner": "fig2",
         "label": "fig2"},
        {"event": "span_end", "name": "job", "trace_id": "t",
         "span_id": "j0.1", "parent_id": "s1", "t_rel": 0.0,
         "duration_s": 0.5, "index": 0, "runner": "fig2", "label": "fig2"},
        {"event": "span_end", "name": "kernel.rsrp.simulate",
         "trace_id": "t", "span_id": "j0.2", "parent_id": "j0.1",
         "t_rel": 0.1, "duration_s": 0.2, "index": 0, "runner": "fig2",
         "label": "fig2"},
        {"event": "job_end", "t": 100.6, "index": 0, "runner": "fig2",
         "label": "fig2", "status": "ok", "duration_s": 0.5,
         "profile_path": "/tmp/p.pstats"},
        {"event": "gauge", "name": "rtt_floor", "runner": "fig2",
         "paper_ref": "Fig. 2", "description": "floor", "unit": "ms",
         "target": 10.0, "warn": 0.1, "fail": 0.5, "mode": "rel",
         "measured": 10.2, "err": 0.02, "status": "pass"},
        {"event": "sweep_end", "t": 100.7, "jobs": 1, "ok": 1,
         "cached": 0, "failed": 0, "elapsed_s": 0.7},
    ]


class TestBuildReport:
    def test_model_shape(self):
        model = build_report(_synthetic_events())
        (job,) = model["jobs"]
        assert job["offset_s"] == pytest.approx(0.1)
        assert job["status"] == "ok"
        assert job["profile_path"] == "/tmp/p.pstats"
        spans = model["spans_by_job"][str(("fig2", 0))]
        assert [s["name"] for s in spans] == ["job", "kernel.rsrp.simulate"]
        (gauge,) = model["gauges"]
        assert gauge["status"] == "pass"
        assert model["aggregate"]["overall"]["ok"] == 1

    def test_overrides_rescore_recorded_gauges(self):
        model = build_report(
            _synthetic_events(),
            overrides={"rtt_floor": {"target": 100.0, "warn": 0.01,
                                     "fail": 0.02}},
        )
        (gauge,) = model["gauges"]
        assert gauge["status"] == "fail"
        assert model["aggregate"]["gauges"]["fail"] == 1

    def test_manifest_carried_through(self):
        model = build_report(
            _synthetic_events(), manifest={"seed": 7, "argv": ["sweep"]}
        )
        assert model["manifest"]["seed"] == 7


class TestRenderHtml:
    def test_self_contained_html(self):
        html = render_html(build_report(_synthetic_events()), title="t")
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html            # charts are inline
        assert "src=" not in html        # no external references
        assert "href=" not in html
        assert "rtt_floor" in html
        assert "kernel.rsrp.simulate" in html

    def test_worst_status_badge(self):
        events = _synthetic_events()
        events[-2]["status"] = "fail"
        html = render_html(build_report(events), title="t")
        assert "fail" in html.lower()

    def test_empty_ledger_still_renders(self):
        html = render_html(build_report([]), title="t")
        assert html.lstrip().startswith("<!DOCTYPE html>")


class TestEndToEnd:
    def test_real_sweep_report_has_worker_spans(self, tmp_path):
        ledger = tmp_path / "L.jsonl"
        sink = EventLog(ledger)
        specs = [
            JobSpec(runner="test.echo", kwargs={"value": i}, index=i,
                    label=f"echo-{i}")
            for i in range(3)
        ]
        try:
            execute(specs, workers=2, events=sink)
        finally:
            sink.close()
        out = tmp_path / "r.html"
        model = write_report(ledger, out)
        assert out.exists()
        assert len(model["jobs"]) == 3
        assert model["spans_by_job"]  # worker spans replayed + keyed
        html = out.read_text()
        assert "Spans:" in html

    def test_write_report_gauges_path(self, tmp_path):
        ledger = tmp_path / "L.jsonl"
        ledger.write_text(
            "\n".join(json.dumps(e) for e in _synthetic_events()) + "\n"
        )
        fixture = tmp_path / "bad.json"
        fixture.write_text(json.dumps(
            {"rtt_floor": {"target": 100.0, "warn": 0.01, "fail": 0.02}}
        ))
        model = write_report(ledger, tmp_path / "r.html",
                             gauges_path=fixture)
        assert model["gauges"][0]["status"] == "fail"


class TestCli:
    def _ledger(self, tmp_path):
        ledger = tmp_path / "L.jsonl"
        ledger.write_text(
            "\n".join(json.dumps(e) for e in _synthetic_events()) + "\n"
        )
        return ledger

    def test_report_exit_zero_when_gauges_pass(self, tmp_path, capsys):
        from repro.cli import main

        ledger = self._ledger(tmp_path)
        out = tmp_path / "r.html"
        assert main(["report", str(ledger), "--out", str(out)]) == 0
        assert out.exists()
        assert "1 pass" in capsys.readouterr().out

    def test_report_exit_one_on_gauge_fail(self, tmp_path, capsys):
        from repro.cli import main

        ledger = self._ledger(tmp_path)
        fixture = tmp_path / "bad.json"
        fixture.write_text(json.dumps(
            {"rtt_floor": {"target": 100.0, "warn": 0.01, "fail": 0.02}}
        ))
        code = main([
            "report", str(ledger), "--out", str(tmp_path / "r.html"),
            "--gauges", str(fixture),
        ])
        assert code == 1
        assert "1 fail" in capsys.readouterr().out

    def test_report_exit_two_on_unreadable_ledger(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "report", str(tmp_path / "missing.jsonl"),
            "--out", str(tmp_path / "r.html"),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_report_exit_two_on_bad_gauges_file(self, tmp_path, capsys):
        from repro.cli import main

        ledger = self._ledger(tmp_path)
        fixture = tmp_path / "bad.json"
        fixture.write_text("[]")
        code = main([
            "report", str(ledger), "--out", str(tmp_path / "r.html"),
            "--gauges", str(fixture),
        ])
        assert code == 2
        assert "--gauges" in capsys.readouterr().err

    def test_report_metrics_export(self, tmp_path):
        from repro.cli import main
        from repro.obs.openmetrics import parse_openmetrics

        ledger = self._ledger(tmp_path)
        metrics = tmp_path / "om.txt"
        assert main([
            "report", str(ledger), "--out", str(tmp_path / "r.html"),
            "--metrics", str(metrics),
        ]) == 0
        samples = parse_openmetrics(metrics.read_text())
        assert any(n == "repro_calibration_status" for n, _, _ in samples)
