"""Tests for repro.obs.watch: the live ledger tail and status panel.

Satellite 4 from ISSUE 10 lives here: concurrent/follow-mode ledger
reads. The tailer must never surface a half-written line while a
writer is racing it, and a torn final line must warn exactly once
without killing the tail.
"""

import io
import json
import threading
import time

import pytest

from repro.engine import JobSpec, execute
from repro.obs.events import EventLog
from repro.obs.watch import (
    WatchView,
    _LineAssembler,
    follow_events,
    watch,
)


class TestLineAssembler:
    def test_holds_partial_lines_until_complete(self):
        assembler = _LineAssembler("t")
        assert list(assembler.push('{"event":"job_')) == []
        assert list(assembler.push('end","seq":1}\n')) == [
            {"event": "job_end", "seq": 1}
        ]

    def test_byte_at_a_time_never_yields_fragments(self):
        payload = '{"event":"sweep_start","jobs":3}\n{"event":"sweep_end"}\n'
        assembler = _LineAssembler("t")
        events = []
        for ch in payload:
            events.extend(assembler.push(ch))
        assert [e["event"] for e in events] == ["sweep_start", "sweep_end"]

    def test_malformed_completed_line_warns_once_and_continues(self):
        assembler = _LineAssembler("t")
        with pytest.warns(RuntimeWarning, match="malformed"):
            events = list(
                assembler.push('not json\nalso bad\n{"event":"gauge"}\n')
            )
        assert events == [{"event": "gauge"}]

    def test_finish_warns_once_on_torn_trailing_fragment(self):
        assembler = _LineAssembler("t")
        list(assembler.push('{"event":"job_end"}\n{"event":"jo'))
        with pytest.warns(RuntimeWarning, match="torn trailing"):
            assembler.finish()
        assembler.finish()  # second call: fragment consumed, no warning

    def test_clean_finish_does_not_warn(self):
        assembler = _LineAssembler("t")
        list(assembler.push('{"event":"job_end"}\n'))
        assembler.finish()


class TestFollowEvents:
    def test_tail_racing_a_writer_sees_only_whole_events(self, tmp_path):
        """A writer appending in tiny unaligned chunks never tears."""
        path = tmp_path / "live.jsonl"
        payload = "".join(
            json.dumps({"event": "job_end", "seq": i, "runner": "fig2"})
            + "\n"
            for i in range(40)
        )

        def _write() -> None:
            with path.open("a") as handle:
                for start in range(0, len(payload), 7):
                    handle.write(payload[start:start + 7])
                    handle.flush()
                    time.sleep(0.001)

        writer = threading.Thread(target=_write)
        writer.start()
        seen = []
        # Stop only after one full read pass past the writer's death,
        # so the final flushed lines are always drained.
        dead_polls = [0]

        def _done() -> bool:
            if not writer.is_alive():
                dead_polls[0] += 1
            return dead_polls[0] >= 2

        for event in follow_events(path, poll_s=0.005, stop=_done):
            if event is not None:
                seen.append(event)
        writer.join()
        assert [e["seq"] for e in seen] == list(range(40))

    def test_waits_for_a_file_that_does_not_exist_yet(self, tmp_path):
        path = tmp_path / "later.jsonl"

        def _create() -> None:
            time.sleep(0.05)
            path.write_text('{"event":"sweep_start","jobs":1}\n')

        creator = threading.Thread(target=_create)
        creator.start()
        events = []
        stop = lambda: bool(events)  # noqa: E731
        for event in follow_events(path, poll_s=0.005, stop=stop):
            if event is not None:
                events.append(event)
        creator.join()
        assert events == [{"event": "sweep_start", "jobs": 1}]

    def test_torn_final_line_warns_once_and_keeps_earlier_events(
        self, tmp_path
    ):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"event":"job_end","seq":1}\n{"event":"jo')
        seen = []
        with pytest.warns(RuntimeWarning, match="torn trailing"):
            for event in follow_events(path, stop=lambda: True):
                if event is not None:
                    seen.append(event)
        assert seen == [{"event": "job_end", "seq": 1}]

    def test_yields_none_heartbeats_while_idle(self, tmp_path):
        path = tmp_path / "quiet.jsonl"
        path.write_text("")
        polls = []
        stream = follow_events(
            path, poll_s=0.001, stop=lambda: len(polls) >= 3
        )
        for event in stream:
            polls.append(event)
        assert polls and all(event is None for event in polls)


class TestWatchView:
    def _feed_all(self, view, events):
        for event in events:
            view.feed(event)

    def test_progress_counters_and_finish(self):
        view = WatchView(source="x.jsonl")
        self._feed_all(view, [
            {"event": "sweep_start", "jobs": 3, "workers": 2, "t": 0.0},
            {"event": "job_start", "index": 0, "label": "a", "t": 0.1},
            {"event": "job_end", "index": 0, "label": "a", "runner": "fig2",
             "status": "ok", "duration_s": 0.1, "t": 0.2},
            {"event": "cache_hit", "index": 1, "runner": "fig2", "t": 0.2},
        ])
        assert view.done == 2 and view.total == 3
        assert not view.finished
        assert view.eta_s() is not None
        view.feed({"event": "job_end", "index": 2, "runner": "fig2",
                   "status": "failed", "duration_s": 0.3, "t": 0.5})
        view.feed({"event": "sweep_end", "jobs": 3, "t": 0.6})
        assert view.finished  # matched sweep_start/sweep_end
        assert view.failed == 1

    def test_run_summary_is_authoritative_even_mid_sweep(self):
        view = WatchView()
        view.feed({"event": "sweep_start", "jobs": 9})
        assert not view.finished
        view.feed({"event": "run_summary", "jobs": 9, "elapsed_s": 1.0,
                   "workers": 2, "dispatch": "batch"})
        assert view.finished
        assert "run summary: 9 jobs" in view.render()

    def test_render_shows_bar_runners_and_faults(self):
        view = WatchView(source="demo")
        self._feed_all(view, [
            {"event": "sweep_start", "jobs": 2, "workers": 1, "t": 0.0},
            {"event": "job_retry", "index": 0, "runner": "fig2", "t": 0.1},
            {"event": "job_end", "index": 0, "runner": "fig2",
             "status": "ok", "duration_s": 0.25, "t": 0.4},
            {"event": "gauge", "name": "g", "status": "pass", "t": 0.4},
        ])
        panel = view.render()
        assert "repro watch — demo" in panel
        assert "1/2 jobs" in panel
        assert "1 retries" in panel
        assert "fig2" in panel and "p50 0.250s" in panel
        assert "gauges: 1 pass" in panel

    def test_render_fleet_quantiles_from_reducer_snapshot(self):
        view = WatchView()
        view.feed({
            "event": "reducer_snapshot", "shards_done": 2,
            "shards_total": 4, "ues": 600,
            "groups": {"rsrp_all": {"count": 1200, "p5": -110.0,
                                    "p50": -95.5, "p95": -80.2}},
        })
        panel = view.render()
        assert "fleet quantiles (2/4 shards, 600 UEs):" in panel
        assert "rsrp_all: p5 -110.00  p50 -95.50  p95 -80.20" in panel
        assert "(n=1200)" in panel


class TestWatchDriver:
    def test_once_mode_renders_a_finished_ledger(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = EventLog(path)
        execute(
            [JobSpec(runner="test.echo", kwargs={"x": 1}, index=0)],
            events=log,
        )
        log.close()
        out = io.StringIO()
        assert watch(str(path), out=out, once=True) == 0
        panel = out.getvalue()
        assert "1/1 jobs" in panel and "1 ok" in panel
        assert "done" in panel
        assert "run summary: 1 jobs" in panel

    def test_duration_bound_returns_on_a_silent_ledger(self, tmp_path):
        path = tmp_path / "silent.jsonl"
        path.write_text('{"event":"sweep_start","jobs":5}\n')
        out = io.StringIO()
        started = time.monotonic()
        assert watch(
            str(path), out=out, interval_s=0.01, duration_s=0.05
        ) == 0
        assert time.monotonic() - started < 5.0
        assert "0/5 jobs" in out.getvalue()


class TestLiveSweepEndToEnd:
    """ISSUE 10 acceptance: watch a real in-flight fleet sweep."""

    def test_tail_sees_live_progress_and_fleet_snapshots(self, tmp_path):
        from repro.fleet import FleetSnapshotTracker, fleet_jobs
        from repro.fleet.spec import FleetSpec

        path = tmp_path / "fleet.jsonl"
        spec = FleetSpec(ues=40, duration_s=5.0, dt_s=0.5)
        jobs = fleet_jobs(spec, shards=4)

        def _sweep() -> None:
            log = EventLog(path)
            tracker = FleetSnapshotTracker(
                shards_total=len(jobs), stream=None
            )
            try:
                execute(jobs, events=log, progress=tracker)
            finally:
                log.close()

        sweeper = threading.Thread(target=_sweep)
        view = WatchView(source=str(path))
        mid_flight_panels = []
        sweeper.start()
        try:
            deadline = time.monotonic() + 120.0
            # Drain one full read pass after the sweep thread closes
            # the ledger, so the tail ends cleanly (no torn fragment).
            dead_polls = [0]

            def _done() -> bool:
                if not sweeper.is_alive():
                    dead_polls[0] += 1
                return dead_polls[0] >= 2 or time.monotonic() > deadline

            for event in follow_events(path, poll_s=0.01, stop=_done):
                if event is not None:
                    view.feed(event)
                    if 0 < view.done < len(jobs):
                        mid_flight_panels.append(view.render())
        finally:
            sweeper.join()
        # The run landed and every shard was watched as it settled.
        assert view.run_summary is not None
        assert view.done == len(jobs) == 4
        # Converging fleet quantiles were rendered from the
        # reducer_snapshot events the tracker emitted mid-sweep.
        assert view.snapshot is not None
        assert view.snapshot["shards_done"] == 4
        groups = view.snapshot["groups"]
        assert "rsrp_all" in groups and groups["rsrp_all"]["count"] > 0
        final_panel = view.render()
        assert "fleet quantiles (4/4 shards, 40 UEs):" in final_panel
        # Live progress: at least one redraw happened strictly
        # mid-flight, with a partially filled bar.
        assert mid_flight_panels
        assert any("/4 jobs" in panel for panel in mid_flight_panels)


class TestServeFollowEndToEnd:
    """Watch a live serve ledger over GET /v1/events?follow=1."""

    def test_follow_stream_covers_a_job_and_the_shutdown(self, tmp_path):
        from repro.obs.history import RunArchive
        from repro.obs.watch import follow_url
        from repro.serve.client import ServeClient
        from repro.serve.config import ServeConfig
        from repro.serve.http import run_in_thread

        config = ServeConfig(
            data_dir=tmp_path / "serve", port=0, max_concurrency=1
        )
        handle = run_in_thread(config)
        view = WatchView(source="serve")
        events = []

        def _tail() -> None:
            for event in follow_url(
                f"{handle.url}/v1/events?follow=1", poll_s=0.05
            ):
                if event is not None:
                    events.append(event)
                    view.feed(event)

        tailer = threading.Thread(target=_tail)
        tailer.start()
        try:
            client = ServeClient(handle.url)
            record = client.submit(["test.echo"], seed=5)
            final = client.wait(record["id"], timeout=60)
            assert final["state"] == "done"
        finally:
            handle.stop()
            tailer.join(timeout=30)
        assert not tailer.is_alive()
        kinds = {e["event"] for e in events}
        # The stream carried the sweep itself and the server lifecycle,
        # through to the terminal serve_stop that ends the follow.
        assert {"serve_start", "job_end", "sweep_end", "serve_stop"} <= kinds
        assert view.finished
        assert view.ok >= 1
        assert "serve:" in view.render()
        # Drain archived the run in the serve-local archive.
        archive = RunArchive(config.archive_dir)
        (entry,) = archive.index()
        assert archive.load(entry["run_id"])["kind"] == "serve"
