"""Tests for repro.obs.compare: the cross-run regression sentinel."""

import copy

import pytest

from repro.obs.compare import (
    CompareThresholds,
    _bootstrap_ratio_ci,
    compare_records,
    render_comparison,
)
from repro.obs.history import ARCHIVE_SCHEMA


def _record(p50=0.1, samples=None, gauges=(), cache_hit=0.0, failed=0):
    samples = samples if samples is not None else [p50] * 8
    return {
        "schema": ARCHIVE_SCHEMA,
        "run_id": "r",
        "label": "sweep",
        "overall": {
            "jobs": 10,
            "ok": 10 - failed,
            "cached": 0,
            "failed": failed,
            "skipped": 0,
            "retries": 0,
            "timeouts": 0,
            "elapsed_s": 1.0,
            "cache_hit_rate": cache_hit,
        },
        "runners": {
            "fig2": {
                "jobs": 10,
                "ok": 10,
                "cached": 0,
                "failed": 0,
                "skipped": 0,
                "p50_s": p50,
                "p95_s": p50 * 1.2,
                "max_s": p50 * 1.5,
                "cache_hit_rate": 0.0,
                "samples": samples,
            }
        },
        "gauges": [dict(g) for g in gauges],
    }


class TestIdentity:
    def test_identical_records_compare_clean(self):
        record = _record()
        comparison = compare_records(record, copy.deepcopy(record))
        assert comparison["ok"] is True
        assert comparison["regressions"] == []
        assert comparison["runners"]["fig2"]["ratio"] == pytest.approx(1.0)
        assert "no regressions" in render_comparison(comparison)

    def test_comparison_is_deterministic(self):
        a = _record(samples=[0.1, 0.11, 0.09, 0.1, 0.12, 0.1, 0.1, 0.13])
        b = _record(samples=[0.2, 0.21, 0.19, 0.2, 0.22, 0.2, 0.2, 0.23])
        first = compare_records(a, b)
        second = compare_records(
            copy.deepcopy(a), copy.deepcopy(b)
        )
        assert first == second  # bootstrap CIs are seed-pinned


class TestLatencyGate:
    def test_p50_regression_past_2x_trips(self):
        comparison = compare_records(_record(p50=0.1), _record(p50=0.25))
        assert comparison["ok"] is False
        assert any("ratio" in r for r in comparison["regressions"])
        assert "<< REGRESSION" in render_comparison(comparison)

    def test_p50_within_2x_passes(self):
        comparison = compare_records(_record(p50=0.1), _record(p50=0.15))
        assert comparison["ok"] is True

    def test_threshold_is_tunable(self):
        thresholds = CompareThresholds(p50_ratio=1.2)
        comparison = compare_records(
            _record(p50=0.1), _record(p50=0.15), thresholds
        )
        assert comparison["ok"] is False

    def test_ci_confirms_a_clear_regression(self):
        a = _record(p50=0.1, samples=[0.1 + 0.001 * i for i in range(20)])
        b = _record(p50=0.3, samples=[0.3 + 0.001 * i for i in range(20)])
        comparison = compare_records(a, b)
        diff = comparison["runners"]["fig2"]
        assert diff["regression"] is True
        assert diff["confirmed"] is True
        assert diff["ci"]["low"] > 1.0

    def test_underpowered_samples_have_no_ci(self):
        a = _record(samples=[0.1, 0.1])
        b = _record(p50=0.5, samples=[0.5, 0.5])
        diff = compare_records(a, b)["runners"]["fig2"]
        assert "ci" not in diff
        assert diff["regression"] is True  # point ratio still gates

    def test_bootstrap_ci_brackets_the_true_ratio(self):
        ci = _bootstrap_ratio_ci(
            [0.1 + 0.002 * i for i in range(30)],
            [0.2 + 0.002 * i for i in range(30)],
            seed="fig2",
        )
        assert ci is not None
        assert ci["low"] <= 2.0 / 1.05
        assert ci["high"] >= 2.0 / 1.3


class TestGaugeGate:
    def test_gauge_flip_to_fail_trips(self):
        a = _record(gauges=[{"name": "g", "status": "pass", "measured": 1.0}])
        b = _record(gauges=[{"name": "g", "status": "fail", "measured": 9.0}])
        comparison = compare_records(a, b)
        assert comparison["ok"] is False
        assert comparison["gauges"]["g"]["flipped_to_fail"] is True
        assert comparison["gauges"]["g"]["drift"] == pytest.approx(8.0)

    def test_gauge_already_failing_does_not_trip(self):
        a = _record(gauges=[{"name": "g", "status": "fail", "measured": 9.0}])
        b = _record(gauges=[{"name": "g", "status": "fail", "measured": 9.0}])
        assert compare_records(a, b)["ok"] is True

    def test_gauge_gate_can_be_disabled(self):
        a = _record(gauges=[{"name": "g", "status": "pass", "measured": 1.0}])
        b = _record(gauges=[{"name": "g", "status": "fail", "measured": 9.0}])
        thresholds = CompareThresholds(gauge_fail=False)
        assert compare_records(a, b, thresholds)["ok"] is True


class TestCacheAndCounts:
    def test_cache_hit_rate_drop_trips(self):
        comparison = compare_records(
            _record(cache_hit=0.8), _record(cache_hit=0.2)
        )
        assert comparison["ok"] is False
        assert any("cache hit" in r for r in comparison["regressions"])

    def test_new_failures_from_clean_baseline_trip(self):
        comparison = compare_records(_record(), _record(failed=2))
        assert comparison["ok"] is False
        assert any("failed" in r for r in comparison["regressions"])

    def test_existing_failures_do_not_trip(self):
        assert compare_records(_record(failed=1), _record(failed=2))["ok"]


class TestSchemaTolerance:
    def test_newer_schema_warns_but_compares(self):
        newer = dict(_record(), schema=ARCHIVE_SCHEMA + 1)
        with pytest.warns(RuntimeWarning, match="schema"):
            comparison = compare_records(newer, _record())
        assert comparison["ok"] is True

    def test_newer_stats_schema_warns(self):
        newer = dict(_record(), stats_schema=99)
        with pytest.warns(RuntimeWarning, match="stats schema"):
            compare_records(_record(), newer)


class TestCompareCli:
    def test_cli_exits_0_identical_and_1_on_regression(
        self, tmp_path, capsys
    ):
        import json

        from repro.cli import main

        base = tmp_path / "a.json"
        base.write_text(json.dumps(_record()))
        same = tmp_path / "b.json"
        same.write_text(json.dumps(_record()))
        slow = tmp_path / "c.json"
        slow.write_text(json.dumps(_record(p50=0.5)))
        archive = str(tmp_path / "arch")
        assert main(
            ["compare", str(base), str(same), "--archive", archive]
        ) == 0
        assert main(
            ["compare", str(base), str(slow), "--archive", archive]
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_cli_bad_reference_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["compare", "last", "last",
             "--archive", str(tmp_path / "empty")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_cli_json_output(self, tmp_path, capsys):
        import json

        from repro.cli import main

        record = tmp_path / "r.json"
        record.write_text(json.dumps(_record()))
        assert main(
            ["compare", str(record), str(record), "--json",
             "--archive", str(tmp_path / "arch")]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
