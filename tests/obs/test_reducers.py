"""Property tests for the streaming reducers (repro.obs.reducers).

The fleet contract these pin down (docs/fleet.md):

* split invariance — folding a leaf sequence through any contiguous
  shard split and merging reproduces the serial accumulator bit for
  bit (``PairwiseSum`` / ``StreamMoments``), and is exactly
  order-independent for the integer-count reducers;
* accuracy — sketch quantiles stay within the documented relative
  error of ``numpy.percentile(method="lower")`` ground truth;
* JSON state round-trips preserve every bit.
"""

import json
import math
import random

import numpy as np
import pytest

from repro.obs.reducers import (
    FixedHistogram,
    PairwiseSum,
    QuantileSketch,
    StreamMoments,
)


def _random_splits(rng, n, pieces):
    cuts = sorted(rng.sample(range(1, n), min(pieces - 1, n - 1)))
    bounds = [0] + cuts + [n]
    return list(zip(bounds[:-1], bounds[1:]))


def _serial(values, origin=0):
    acc = PairwiseSum(origin)
    acc.add(values)
    return acc


class TestPairwiseSum:
    def test_split_points_do_not_change_a_single_bit(self):
        rng = random.Random(4)
        values = np.random.default_rng(4).normal(0.0, 37.0, 4097)
        serial = _serial(values)
        for pieces in (2, 3, 7, 16, 64):
            acc = PairwiseSum(0)
            for start, stop in _random_splits(rng, values.shape[0], pieces):
                shard = PairwiseSum(start)
                shard.add(values[start:stop])
                acc.merge(shard)
            assert acc.total() == serial.total()
            assert acc.to_state() == serial.to_state()

    def test_incremental_adds_match_one_shot(self):
        values = np.random.default_rng(9).normal(size=1000)
        acc = PairwiseSum(0)
        i = 0
        rng = random.Random(9)
        while i < 1000:
            step = rng.randint(1, 97)
            acc.add(values[i : i + step])
            i += step
        assert acc.to_state() == _serial(values).to_state()

    def test_nonzero_origin_splits(self):
        # A group whose first member appears mid-population anchors at
        # a non-zero global leaf origin; splits must still agree.
        values = np.random.default_rng(2).normal(size=777)
        serial = _serial(values, origin=12345)
        left = PairwiseSum(12345)
        left.add(values[:130])
        right = PairwiseSum(12345 + 130)
        right.add(values[130:])
        left.merge(right)
        assert left.to_state() == serial.to_state()

    def test_non_adjacent_merge_rejected(self):
        left = _serial(np.ones(10))
        gap = PairwiseSum(11)
        gap.add(np.ones(5))
        with pytest.raises(ValueError):
            left.merge(gap)

    def test_total_accuracy_vs_fsum(self):
        values = np.random.default_rng(1).normal(0.0, 1e6, 100001)
        total = _serial(values).total()
        exact = math.fsum(values.tolist())
        assert abs(total - exact) <= 1e-9 * abs(exact) + 1e-6

    def test_json_round_trip_preserves_bits(self):
        acc = _serial(np.random.default_rng(6).normal(size=333), origin=7)
        state = json.loads(json.dumps(acc.to_state()))
        back = PairwiseSum.from_state(state)
        assert back.total() == acc.total()
        assert back.to_state() == acc.to_state()

    def test_empty(self):
        assert PairwiseSum(0).total() == 0.0
        assert PairwiseSum(0).count == 0


class TestStreamMoments:
    def test_summary_matches_numpy(self):
        values = np.random.default_rng(3).normal(-85.0, 6.0, 20000)
        acc = StreamMoments(0)
        acc.add(values)
        s = acc.summary()
        assert s["count"] == values.shape[0]
        assert s["mean"] == pytest.approx(float(values.mean()), rel=1e-12)
        assert s["var"] == pytest.approx(float(values.var()), rel=1e-9)
        assert s["min"] == float(values.min())
        assert s["max"] == float(values.max())

    def test_split_merge_bit_identical(self):
        values = np.random.default_rng(8).normal(size=5000)
        serial = StreamMoments(0)
        serial.add(values)
        merged = StreamMoments(0)
        for start, stop in ((0, 1), (1, 1024), (1024, 2000), (2000, 5000)):
            shard = StreamMoments(start)
            shard.add(values[start:stop])
            merged.merge(shard)
        assert merged.summary() == serial.summary()

    def test_empty_summary_is_none(self):
        assert StreamMoments(0).summary() == {
            "count": 0, "mean": None, "var": None, "min": None, "max": None,
        }

    def test_json_round_trip(self):
        acc = StreamMoments(5)
        acc.add(np.random.default_rng(7).normal(size=100))
        back = StreamMoments.from_state(json.loads(json.dumps(acc.to_state())))
        assert back.summary() == acc.summary()


class TestFixedHistogram:
    def test_counts_match_numpy_histogram(self):
        values = np.random.default_rng(5).normal(-85.0, 10.0, 30000)
        hist = FixedHistogram(-140.0, -60.0, 160)
        hist.add(values)
        inside = values[(values >= -140.0) & (values < -60.0)]
        expected, _ = np.histogram(inside, bins=160, range=(-140.0, -60.0))
        # np.histogram closes the last bin on the right; our overflow
        # rule puts values == hi in the tail, and none of the samples
        # here sit exactly on an interior edge.
        assert np.array_equal(hist.counts, expected)
        assert hist.underflow == int((values < -140.0).sum())
        assert hist.overflow == int((values >= -60.0).sum())
        assert hist.count == values.shape[0]

    def test_merge_is_addition_in_any_order(self):
        rng = np.random.default_rng(10)
        chunks = [rng.normal(-85.0, 10.0, 500) for _ in range(6)]
        ordered = FixedHistogram(-140.0, -60.0, 160)
        for chunk in chunks:
            ordered.add(chunk)
        shuffled = FixedHistogram(-140.0, -60.0, 160)
        for i in [3, 0, 5, 1, 4, 2]:
            part = FixedHistogram(-140.0, -60.0, 160)
            part.add(chunks[i])
            shuffled.merge(part)
        assert shuffled.to_state() == ordered.to_state()

    def test_mismatched_bins_rejected(self):
        with pytest.raises(ValueError):
            FixedHistogram(0.0, 1.0, 10).merge(FixedHistogram(0.0, 1.0, 20))

    def test_json_round_trip(self):
        hist = FixedHistogram(0.0, 10.0, 5)
        hist.add([0.5, 2.5, 9.9, -1.0, 11.0])
        back = FixedHistogram.from_state(json.loads(json.dumps(hist.to_state())))
        assert back.to_state() == hist.to_state()


class TestQuantileSketch:
    LEVELS = (0.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0)

    def _assert_within_bound(self, sample, sketch):
        for level in self.LEVELS:
            exact = float(np.percentile(sample, level, method="lower"))
            estimate = sketch.quantile(level)
            if abs(exact) < sketch.min_value:
                assert abs(estimate - exact) <= sketch.min_value
            else:
                assert abs(estimate - exact) <= sketch.alpha * abs(exact), (
                    f"p{level}: estimate {estimate} vs exact {exact}"
                )

    @pytest.mark.parametrize(
        "sample",
        [
            np.random.default_rng(1).normal(-85.0, 8.0, 20000),
            np.random.default_rng(2).lognormal(3.0, 2.0, 20000),
            -np.random.default_rng(3).lognormal(0.0, 3.0, 20000),
            np.concatenate([
                np.random.default_rng(4).normal(-1000.0, 10.0, 5000),
                np.random.default_rng(5).normal(1e-6, 1e-5, 5000),
                np.zeros(100),
            ]),
            np.full(1000, 3100.0),
        ],
        ids=["normal", "lognormal", "neg-lognormal", "mixed-sign", "constant"],
    )
    def test_error_bound_vs_numpy_lower(self, sample):
        sketch = QuantileSketch()
        sketch.add(sample)
        self._assert_within_bound(sample, sketch)

    def test_merge_order_invariant(self):
        rng = np.random.default_rng(12)
        chunks = [rng.normal(0.0, 100.0, 700) for _ in range(5)]
        ordered = QuantileSketch()
        for chunk in chunks:
            ordered.add(chunk)
        shuffled = QuantileSketch()
        for i in [4, 1, 3, 0, 2]:
            part = QuantileSketch()
            part.add(chunks[i])
            shuffled.merge(part)
        assert shuffled.to_state() == ordered.to_state()
        self._assert_within_bound(np.concatenate(chunks), shuffled)

    def test_empty_returns_none(self):
        assert QuantileSketch().quantile(50.0) is None

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            QuantileSketch().add([1.0, np.nan])

    def test_json_round_trip(self):
        sketch = QuantileSketch()
        sketch.add(np.random.default_rng(13).normal(size=500))
        back = QuantileSketch.from_state(
            json.loads(json.dumps(sketch.to_state()))
        )
        assert back.to_state() == sketch.to_state()
        assert back.quantile(50.0) == sketch.quantile(50.0)
