"""Tests for repro.obs.calib: scoring, KS distance, the gauge registry,
and the mis-calibration (override) fixture mechanism."""

import json

import numpy as np
import pytest

from repro.obs.calib import (
    PAPER_GAUGES,
    GaugeSpec,
    apply_overrides,
    evaluate_gauges,
    ks_distance_to_quantiles,
    load_overrides,
    rescore,
    score_value,
    summarize_gauges,
)


class TestScoreValue:
    def test_rel_thresholds(self):
        assert score_value(10.5, 10.0, 0.1, 0.5)["status"] == "pass"
        assert score_value(13.0, 10.0, 0.1, 0.5)["status"] == "warn"
        assert score_value(20.0, 10.0, 0.1, 0.5)["status"] == "fail"

    def test_rel_err_value(self):
        assert score_value(12.0, 10.0, 0.1, 0.5)["err"] == pytest.approx(0.2)

    def test_abs_mode(self):
        result = score_value(0.08, 0.0, 0.12, 0.25, mode="abs")
        assert result == {"err": pytest.approx(0.08), "status": "pass"}

    def test_nonfinite_measurement_fails(self):
        assert score_value(float("nan"), 10.0, 0.1, 0.5)["status"] == "fail"
        assert score_value(float("inf"), 10.0, 0.1, 0.5)["status"] == "fail"

    def test_rel_zero_target_rejected(self):
        with pytest.raises(ValueError, match="nonzero target"):
            score_value(1.0, 0.0, 0.1, 0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown gauge mode"):
            score_value(1.0, 1.0, 0.1, 0.5, mode="chi2")


class TestKsDistance:
    def test_sample_from_reference_is_close(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(0.0, 1.0, 4000)
        levels = (5, 25, 50, 75, 95)
        values = tuple(float(np.quantile(sample, q / 100)) for q in levels)
        assert ks_distance_to_quantiles(sample, levels, values) < 0.08

    def test_shifted_sample_is_far(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(0.0, 1.0, 4000)
        levels = (5, 25, 50, 75, 95)
        values = tuple(
            float(np.quantile(sample, q / 100)) + 3.0 for q in levels
        )
        assert ks_distance_to_quantiles(sample, levels, values) > 0.5

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ks_distance_to_quantiles([], (5, 95), (0.0, 1.0))

    def test_mismatched_quantiles_rejected(self):
        with pytest.raises(ValueError, match="matching quantile"):
            ks_distance_to_quantiles([1.0], (5, 50, 95), (0.0, 1.0))


def _gauge(name="g", runner="r", **kw):
    defaults = dict(
        paper_ref="Fig. 0",
        description="test gauge",
        unit="ms",
        target=10.0,
        warn=0.1,
        fail=0.5,
        extract=lambda value: float(value),
        mode="rel",
    )
    defaults.update(kw)
    return GaugeSpec(name=name, runner=runner, **defaults)


class TestEvaluate:
    def test_pass_warn_skip(self):
        gauges = [
            _gauge("ok", "a"),
            _gauge("drift", "b"),
            _gauge("absent", "missing"),
        ]
        results = evaluate_gauges({"a": 10.2, "b": 13.0}, gauges)
        by_name = {r.name: r for r in results}
        assert by_name["ok"].status == "pass"
        assert by_name["drift"].status == "warn"
        assert by_name["absent"].status == "skipped"
        assert by_name["absent"].measured is None

    def test_extractor_exception_is_a_fail(self):
        def broken(value):
            raise KeyError("gone")

        (result,) = evaluate_gauges({"a": {}}, [_gauge(extract=broken, runner="a")])
        assert result.status == "fail"
        assert "KeyError" in result.detail

    def test_event_fields_are_jsonable(self):
        (result,) = evaluate_gauges({"r": 10.0}, [_gauge()])
        fields = result.event_fields()
        json.dumps(fields)
        assert fields["name"] == "g"
        assert fields["status"] == "pass"
        assert fields["measured"] == pytest.approx(10.0)

    def test_summarize_counts(self):
        gauges = [_gauge("a", "x"), _gauge("b", "missing")]
        counts = summarize_gauges(evaluate_gauges({"x": 10.0}, gauges))
        assert counts == {"pass": 1, "warn": 0, "fail": 0, "skipped": 1}


class TestPaperGauges:
    def test_registry_shape(self):
        assert len(PAPER_GAUGES) >= 6
        names = [g.name for g in PAPER_GAUGES]
        assert len(names) == len(set(names))
        for gauge in PAPER_GAUGES:
            assert gauge.mode in ("rel", "abs")
            assert 0 < gauge.warn < gauge.fail

    def test_fig2_fig13_cover_six_gauges(self):
        covered = [g for g in PAPER_GAUGES if g.runner in ("fig2", "fig13")]
        assert len(covered) >= 6

    def test_gauges_pass_on_real_runner_outputs(self):
        from repro.engine.registry import call

        runners = sorted({g.runner for g in PAPER_GAUGES})
        values = {name: call(name, seed=42) for name in runners}
        results = evaluate_gauges(values, PAPER_GAUGES)
        bad = [r.name for r in results if r.status == "fail"]
        assert bad == []
        assert all(r.status != "skipped" for r in results)


class TestOverrides:
    def test_load_and_apply(self, tmp_path):
        path = tmp_path / "overrides.json"
        path.write_text(json.dumps({"g": {"target": 99.0, "warn": 0.01}}))
        overrides = load_overrides(path)
        (spec,) = apply_overrides([_gauge()], overrides)
        assert spec.target == 99.0
        assert spec.warn == 0.01
        assert spec.fail == 0.5  # untouched fields survive

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_overrides(path)

    def test_load_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"g": {"threshold": 1}}))
        with pytest.raises(ValueError, match="keys from"):
            load_overrides(path)

    def test_apply_rejects_unknown_gauges(self):
        with pytest.raises(ValueError, match="unknown gauges"):
            apply_overrides([_gauge()], {"nope": {"target": 1.0}})

    def test_override_flips_gauge_to_fail(self):
        gauges = apply_overrides(
            [_gauge()], {"g": {"target": 100.0, "warn": 0.05, "fail": 0.1}}
        )
        (result,) = evaluate_gauges({"r": 10.0}, gauges)
        assert result.status == "fail"

    def test_rescore_rejudges_recorded_event(self):
        (result,) = evaluate_gauges({"r": 10.0}, [_gauge()])
        event = result.event_fields()
        assert event["status"] == "pass"
        rescored = rescore(
            event, {"g": {"target": 100.0, "warn": 0.05, "fail": 0.1}}
        )
        assert rescored["status"] == "fail"
        assert rescored["target"] == 100.0
        assert rescored["measured"] == event["measured"]

    def test_rescore_passes_through_unmeasured(self):
        event = {"name": "g", "status": "skipped"}
        assert rescore(event, {"g": {"target": 1.0}}) == event
