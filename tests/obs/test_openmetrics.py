"""Tests for repro.obs.openmetrics: render + the minimal parser."""

import pytest

from repro.obs.calib import GaugeSpec, evaluate_gauges
from repro.obs.openmetrics import parse_openmetrics, render_openmetrics


def _results(measured=10.2):
    gauge = GaugeSpec(
        name="rtt_floor",
        runner="fig2",
        paper_ref="Fig. 2",
        description="RTT floor",
        unit="ms",
        target=10.0,
        warn=0.1,
        fail=0.5,
        extract=float,
    )
    return evaluate_gauges({"fig2": measured}, [gauge])


class TestRender:
    def test_round_trips_through_parser(self):
        text = render_openmetrics(_results(), {"ok": 3, "failed": 1})
        samples = parse_openmetrics(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        (labels, value) = by_name["repro_calibration_measured"][0]
        assert labels == {
            "gauge": "rtt_floor", "paper_ref": "Fig. 2", "unit": "ms",
        }
        assert value == pytest.approx(10.2)
        (labels, value) = by_name["repro_calibration_status"][0]
        assert labels["status"] == "pass"
        assert value == 0
        jobs = {
            labels["status"]: value
            for labels, value in by_name["repro_jobs_total"]
        }
        assert jobs == {"ok": 3, "failed": 1}

    def test_status_codes(self):
        for measured, code in ((10.2, 0), (13.0, 1), (99.0, 2)):
            text = render_openmetrics(_results(measured))
            statuses = [
                value
                for name, labels, value in parse_openmetrics(text)
                if name == "repro_calibration_status"
            ]
            assert statuses == [code]

    def test_skipped_gauges_omitted(self):
        gauge = GaugeSpec(
            name="absent", runner="missing", paper_ref="Fig. 9",
            description="", unit="", target=1.0, warn=0.1, fail=0.5,
            extract=float,
        )
        text = render_openmetrics(evaluate_gauges({}, [gauge]))
        assert "absent" not in text
        assert text.rstrip().endswith("# EOF")

    def test_accepts_recorded_event_dicts(self):
        events = [r.event_fields() for r in _results()]
        text = render_openmetrics(events)
        assert parse_openmetrics(text)

    def test_label_escaping_round_trips(self):
        gauge = GaugeSpec(
            name='we"ird\\name', runner="r", paper_ref="Fig\n1",
            description="", unit="ms", target=1.0, warn=0.5, fail=0.9,
            extract=float,
        )
        text = render_openmetrics(evaluate_gauges({"r": 1.0}, [gauge]))
        samples = parse_openmetrics(text)
        names = {
            labels["gauge"]
            for name, labels, _ in samples
            if name == "repro_calibration_measured"
        }
        assert names == {'we"ird\\name'}


class TestParse:
    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("repro_x{a=\"b\"} 1\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_openmetrics("this is not a metric line\n# EOF\n")
