"""Tests for repro.obs.metrics: counters, timers, spans, stats block."""

import pytest

from repro.obs.metrics import Counter, MetricsRegistry, Timer, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_single_value(self):
        assert percentile([3.0], 95.0) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_matches_numpy_default(self):
        import numpy as np

        values = [0.3, 1.7, 0.9, 4.2, 2.8, 0.1]
        for q in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestCounterTimer:
    def test_counter_increments(self):
        counter = Counter("jobs")
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert counter.value == 5

    def test_timer_aggregates(self):
        timer = Timer("job.fig2")
        for s in (0.1, 0.3, 0.2):
            timer.observe(s)
        assert timer.count == 3
        assert timer.total_s == pytest.approx(0.6)
        assert timer.mean_s == pytest.approx(0.2)
        assert timer.percentile_s(50.0) == pytest.approx(0.2)

    def test_empty_timer_stats(self):
        stats = Timer("idle").as_dict()
        assert stats == {
            "count": 0,
            "total_s": 0.0,
            "mean_s": 0.0,
            "p50_s": 0.0,
            "p95_s": 0.0,
            "max_s": 0.0,
        }


class TestMetricsRegistry:
    def test_names_are_stable_handles(self):
        registry = MetricsRegistry()
        registry.counter("retries").inc()
        registry.counter("retries").inc()
        assert registry.counter("retries").value == 2

    def test_span_times_block(self):
        registry = MetricsRegistry()
        with registry.span("phase"):
            pass
        timer = registry.timer("phase")
        assert timer.count == 1 and timer.total_s >= 0.0

    def test_span_records_on_error(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("phase"):
                raise RuntimeError("boom")
        assert registry.timer("phase").count == 1

    def test_span_observes_elapsed_time_on_error(self):
        # Regression: the observation must happen in a finally block,
        # so the elapsed time (not just the count) survives a raise.
        import time

        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("phase"):
                time.sleep(0.01)
                raise RuntimeError("boom")
        timer = registry.timer("phase")
        assert timer.count == 1
        assert timer.total_s >= 0.01

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs_ok").inc(3)
        registry.timer("job.fig2").observe(0.5)
        block = registry.as_dict()
        assert block["counters"] == {"jobs_ok": 3}
        assert block["timers"]["job.fig2"]["count"] == 1
        assert block["timers"]["job.fig2"]["p95_s"] == pytest.approx(0.5)
