"""Tests for repro.obs.history: the RunArchive and trend analysis."""

import json

import pytest

from repro.engine import JobSpec, execute
from repro.obs.events import EventLog
from repro.obs.history import (
    ARCHIVE_SCHEMA,
    RunArchive,
    SampleReservoir,
    build_history,
    flag_change_points,
    record_from_bench,
    record_from_ledger,
    record_from_result,
    render_history_html,
    render_history_text,
    sparkline,
)


def _sweep_record(tmp_path, label="echo", n=3):
    result = execute(
        [
            JobSpec(runner="test.echo", kwargs={"x": i}, index=i)
            for i in range(n)
        ]
    )
    return record_from_result(result, label=label)


class TestSampleReservoir:
    def test_keeps_everything_under_cap(self):
        res = SampleReservoir(cap=16)
        for i in range(10):
            res.add(float(i))
        assert res.samples() == [float(i) for i in range(10)]

    def test_decimates_deterministically_past_cap(self):
        res = SampleReservoir(cap=8)
        for i in range(100):
            res.add(float(i))
        kept = res.samples()
        assert len(kept) < 2 * 8
        assert res.count == 100
        # Survivors are an evenly strided subsample — same stream,
        # same survivors, no RNG anywhere.
        rerun = SampleReservoir(cap=8)
        for i in range(100):
            rerun.add(float(i))
        assert rerun.samples() == kept


class TestRecordBuilders:
    def test_record_from_result_shape(self, tmp_path):
        record = _sweep_record(tmp_path)
        assert record["schema"] == ARCHIVE_SCHEMA
        assert record["kind"] == "sweep"
        assert record["overall"]["jobs"] == 3
        assert record["overall"]["ok"] == 3
        entry = record["runners"]["test.echo"]
        assert entry["jobs"] == 3
        assert entry["p50_s"] is not None
        assert len(entry["samples"]) == 3

    def test_record_from_ledger_matches_result_counts(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path)
        execute(
            [JobSpec(runner="test.echo", kwargs={"x": 1}, index=0)],
            events=log,
            code_version="v1",
        )
        log.close()
        record = record_from_ledger(path, label="ledgered")
        assert record["overall"]["jobs"] == 1
        assert record["overall"]["ok"] == 1
        assert record["runners"]["test.echo"]["p50_s"] is not None
        # The engine's run_summary carries provenance into the record.
        assert record["code_version"] == "v1"
        assert record["workers"] == 1

    def test_record_from_bench_lifts_numeric_results(self):
        record = record_from_bench(
            "BENCH_video",
            {"results": {"sessions_per_s": 10.0, "note": "text"}, "x": 1},
        )
        assert record["kind"] == "bench"
        assert record["results"] == {"sessions_per_s": 10.0}
        assert record["bench"]["x"] == 1


class TestRunArchive:
    def test_append_and_load_round_trip(self, tmp_path):
        archive = RunArchive(tmp_path / "arch")
        record = _sweep_record(tmp_path)
        run_id = archive.append(record)
        assert len(archive) == 1
        loaded = archive.load(run_id)
        assert loaded["run_id"] == run_id
        assert loaded["overall"] == record["overall"]

    def test_index_line_mirrors_summary_fields(self, tmp_path):
        archive = RunArchive(tmp_path / "arch")
        archive.append(_sweep_record(tmp_path, label="idx"))
        (entry,) = archive.index()
        assert entry["label"] == "idx"
        assert entry["jobs"] == 3
        assert entry["schema"] == ARCHIVE_SCHEMA

    def test_resolve_last_and_relative(self, tmp_path):
        archive = RunArchive(tmp_path / "arch")
        first = archive.append(_sweep_record(tmp_path, label="one"))
        second = archive.append(_sweep_record(tmp_path, label="two"))
        assert archive.resolve("last")["run_id"] == second
        assert archive.resolve("last~1")["run_id"] == first
        with pytest.raises(KeyError):
            archive.resolve("last~2")

    def test_resolve_unique_prefix_and_ambiguity(self, tmp_path):
        archive = RunArchive(tmp_path / "arch")
        run_id = archive.append(_sweep_record(tmp_path))
        assert archive.resolve(run_id[:12])["run_id"] == run_id
        archive.append(_sweep_record(tmp_path))
        with pytest.raises(KeyError, match="ambiguous|no run"):
            archive.resolve(run_id[:4])

    def test_resolve_record_json_path_directly(self, tmp_path):
        record = _sweep_record(tmp_path)
        path = tmp_path / "rec.json"
        path.write_text(json.dumps(record))
        archive = RunArchive(tmp_path / "arch")
        assert archive.resolve(str(path))["overall"] == record["overall"]

    def test_append_survives_id_collisions(self, tmp_path):
        archive = RunArchive(tmp_path / "arch")
        record = _sweep_record(tmp_path)
        a = archive.append(dict(record, run_id="fixed", created="2026"))
        b = archive.append(dict(record, run_id="fixed", created="2026"))
        assert a == "fixed" and b == "fixedx"
        assert len(archive) == 2

    def test_torn_final_index_line_is_tolerated(self, tmp_path):
        archive = RunArchive(tmp_path / "arch")
        archive.append(_sweep_record(tmp_path))
        with archive.index_path.open("a") as handle:
            handle.write('{"run_id":"half')
        with pytest.warns(RuntimeWarning, match="torn final"):
            assert len(archive.index()) == 1


class TestTrends:
    def test_flag_change_points_on_a_jump(self):
        values = [1.0, 1.1, 0.9, 1.0, 5.0, 5.1]
        flagged = flag_change_points(values, ratio=1.5)
        assert 4 in flagged
        # 5.1 vs trailing median (which now includes 5.0) — depends on
        # the window, but the initial jump must always be flagged.

    def test_flat_series_has_no_change_points(self):
        assert flag_change_points([2.0] * 10) == []

    def test_sparkline_marks_missing_values(self):
        spark = sparkline([1.0, None, 3.0])
        assert len(spark) == 3 and spark[1] == "·"

    def test_build_history_and_renderings(self, tmp_path):
        archive = RunArchive(tmp_path / "arch")
        archive.append(_sweep_record(tmp_path))
        archive.append(_sweep_record(tmp_path))
        archive.append(
            record_from_bench("BENCH_x", {"results": {"ops": 12.5}})
        )
        model = build_history(archive)
        assert model["n_runs"] == 3
        assert model["n_sweeps"] == 2
        assert model["n_benches"] == 1
        names = [t["name"] for t in model["trends"]]
        assert "elapsed_s" in names
        assert "test.echo p50" in names
        assert "BENCH_x:ops" in names
        text = render_history_text(model)
        assert "3 run(s)" in text
        html = render_history_html(model)
        assert html.startswith("<!DOCTYPE html>")
        assert "elapsed_s" in html
