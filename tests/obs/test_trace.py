"""Tests for repro.obs.trace: spans, nesting, activation, export."""

import threading

import pytest

from repro.obs.events import RecordingSink
from repro.obs.trace import (
    MAX_SPANS,
    Span,
    Tracer,
    activate,
    current_tracer,
    new_trace_id,
    span,
)


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


class TestTracer:
    def test_span_ids_and_parents_nest(self):
        tracer = Tracer(trace_id="t1")
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.depth == 2
        outer, inner = sorted(tracer.spans, key=lambda s: s.span_id)
        assert outer.span_id == "s1"
        assert inner.span_id == "s2"
        assert outer.parent_id is None
        assert inner.parent_id == "s1"
        assert {s.trace_id for s in tracer.spans} == {"t1"}

    def test_durations_from_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        record = tracer.start("work")
        clock.tick(0.25)
        tracer.finish(record)
        assert record.t_rel == 0.0
        assert record.duration_s == pytest.approx(0.25)

    def test_sink_sees_start_and_end(self):
        sink = RecordingSink()
        tracer = Tracer(sink=sink)
        with tracer.span("a", n=3):
            pass
        kinds = [e["event"] for e in sink.events]
        assert kinds == ["span_start", "span_end"]
        assert sink.events[0]["name"] == "a"
        assert sink.events[0]["attrs"] == {"n": 3}
        assert sink.events[1]["duration_s"] >= 0.0

    def test_exception_recorded_not_swallowed(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.spans
        assert record.attrs["error"] == "RuntimeError"
        assert record.duration_s is not None

    def test_mispaired_finish_pops_through(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        tracer.finish(outer)  # inner never finished
        assert tracer.depth == 0

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_export_is_jsonable_and_sorted(self):
        import json

        clock = FakeClock()
        tracer = Tracer(clock=clock)
        a = tracer.start("a")
        clock.tick(0.1)
        b = tracer.start("b")
        clock.tick(0.1)
        tracer.finish(b)
        tracer.finish(a)
        exported = tracer.export()
        json.dumps(exported)
        assert [e["name"] for e in exported] == ["a", "b"]
        assert exported[0]["t_rel"] <= exported[1]["t_rel"]


class TestProcessBoundary:
    def test_context_round_trips_through_for_payload(self):
        parent = Tracer(trace_id="abcd")
        ctx = parent.context(parent_id="s7")
        worker = Tracer.for_payload(ctx, index=3)
        with worker.span("job"):
            pass
        (record,) = worker.spans
        assert record.trace_id == "abcd"
        assert record.parent_id == "s7"
        assert record.span_id == "j3.1"

    def test_new_trace_ids_are_distinct(self):
        assert new_trace_id() != new_trace_id()
        assert len(new_trace_id()) == 16


class TestActivation:
    def test_module_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        handle = span("anything", n=1)
        with handle:
            pass
        # The shared no-op: same object every time, no allocation.
        assert span("other") is handle

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            with span("inside"):
                pass
        assert current_tracer() is None
        assert [s.name for s in tracer.spans] == ["inside"]

    def test_activate_none_disables_within_active_trace(self):
        tracer = Tracer()
        with activate(tracer):
            with activate(None):
                assert current_tracer() is None
                with span("lost"):
                    pass
            assert current_tracer() is tracer
        assert tracer.spans == []

    def test_tracer_is_thread_local(self):
        tracer = Tracer()
        seen = {}

        def peek():
            seen["other_thread"] = current_tracer()

        with activate(tracer):
            thread = threading.Thread(target=peek)
            thread.start()
            thread.join()
        assert seen["other_thread"] is None


class TestSpanDataclass:
    def test_as_dict_omits_empty_attrs(self):
        record = Span(
            name="n", trace_id="t", span_id="s", parent_id=None, t_rel=0.0
        )
        assert "attrs" not in record.as_dict()

    def test_default_cap_is_sane(self):
        assert MAX_SPANS >= 1000
