"""Tests for repro.obs.events: sinks, the JSONL ledger, read-back."""

import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    EventLog,
    EventSink,
    RecordingSink,
    iter_events,
    read_events,
)


class TestEventSink:
    def test_base_sink_discards(self):
        sink = EventSink()
        sink.emit("job_end", index=0)  # must not raise
        sink.close()

    def test_recording_sink_keeps_order_and_fields(self):
        sink = RecordingSink()
        sink.emit("job_start", index=1, runner="fig2")
        sink.emit("job_end", index=1, status="ok")
        assert [e["event"] for e in sink.events] == ["job_start", "job_end"]
        assert sink.of_type("job_end") == [
            {"event": "job_end", "index": 1, "status": "ok"}
        ]

    def test_event_types_cover_the_documented_set(self):
        assert EVENT_TYPES == {
            "sweep_start",
            "sweep_end",
            "job_start",
            "job_retry",
            "job_timeout",
            "job_timeout_unenforced",
            "job_end",
            "job_skipped",
            "cache_hit",
            "cache_put",
            "cache_quarantine",
            "cache_put_error",
            "cache_evict",
            "span_start",
            "span_end",
            "gauge",
            "run_summary",
            "reducer_snapshot",
        }


class TestEventLog:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("sweep_start", jobs=2)
            log.emit("sweep_end", jobs=2, ok=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "sweep_start" and first["jobs"] == 2

    def test_seq_and_monotonic_timestamps(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        for i in range(5):
            log.emit("job_end", index=i)
        events = log.events()
        log.close()
        assert [e["seq"] for e in events] == [1, 2, 3, 4, 5]
        stamps = [e["t"] for e in events]
        assert stamps == sorted(stamps)

    def test_append_mode_across_logs(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        with EventLog(path) as log:
            log.emit("sweep_start", jobs=1)
        with EventLog(path) as log:
            log.emit("sweep_start", jobs=9)
        events = read_events(path)
        assert [e["jobs"] for e in events] == [1, 9]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "e.jsonl"
        with EventLog(path) as log:
            log.emit("sweep_start", jobs=0)
        assert path.exists()

    def test_close_is_idempotent(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        log.emit("sweep_start", jobs=0)
        log.close()
        log.close()

    def test_injected_clock(self, tmp_path):
        ticks = iter([1.5, 2.5])
        log = EventLog(tmp_path / "e.jsonl", clock=lambda: next(ticks))
        log.emit("job_start", index=0)
        log.emit("job_end", index=0)
        assert [e["t"] for e in log.events()] == [1.5, 2.5]
        log.close()


class TestReadEvents:
    def test_trailing_partial_line_is_dropped_with_warning(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"event":"job_end","seq":1}\n{"event":"job_e')
        with pytest.warns(RuntimeWarning, match="torn final event"):
            events = read_events(path)
        assert len(events) == 1 and events[0]["seq"] == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('not json\n{"event":"job_end"}\n')
        with pytest.raises(ValueError, match="line 1"):
            read_events(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"event":"sweep_start"}\n\n{"event":"sweep_end"}\n')
        assert len(read_events(path)) == 2


class TestIterEvents:
    """The streaming reader: same semantics as read_events, lazily."""

    def test_is_a_lazy_generator(self, tmp_path):
        path = tmp_path / "big.jsonl"
        path.write_text(
            "".join(f'{{"event":"job_end","seq":{i}}}\n' for i in range(100))
        )
        stream = iter_events(path)
        assert next(stream)["seq"] == 0
        assert next(stream)["seq"] == 1
        stream.close()  # early close must not warn or raise

    def test_torn_final_line_warns_after_yielding_prefix(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"event":"job_end","seq":1}\n{"event":"job_e')
        stream = iter_events(path)
        assert next(stream)["seq"] == 1
        with pytest.warns(RuntimeWarning, match="torn final event"):
            assert list(stream) == []

    def test_mid_file_corruption_raises_at_the_bad_line(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"event":"job_end","seq":1}\nnot json\n{"event":"job_end"}\n'
        )
        stream = iter_events(path)
        assert next(stream)["seq"] == 1
        with pytest.raises(ValueError, match="line 2"):
            next(stream)

    def test_read_events_matches_iter_events(self, tmp_path):
        path = tmp_path / "both.jsonl"
        path.write_text('{"event":"sweep_start"}\n{"event":"sweep_end"}\n')
        assert read_events(path) == list(iter_events(path))
