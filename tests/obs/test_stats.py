"""Tests for repro.obs.stats and the ledger's reconciliation contract."""

import pytest

from repro.engine import JobSpec, ResultCache, SweepSpec, execute
from repro.obs.events import EventLog, RecordingSink
from repro.obs.stats import aggregate_events, aggregate_events_file, render_stats


def _synthetic_events():
    return [
        {"event": "sweep_start", "jobs": 3, "workers": 1},
        {"event": "job_start", "index": 0, "runner": "fig2"},
        {"event": "job_end", "index": 0, "runner": "fig2", "status": "ok",
         "duration_s": 0.2},
        {"event": "job_start", "index": 1, "runner": "fig9"},
        {"event": "job_timeout", "index": 1, "runner": "fig9", "attempt": 1},
        {"event": "job_retry", "index": 1, "runner": "fig9", "attempt": 1},
        {"event": "job_end", "index": 1, "runner": "fig9", "status": "failed",
         "duration_s": 1.0},
        {"event": "cache_hit", "index": 2, "runner": "fig2", "key": "k"},
        {"event": "sweep_end", "jobs": 3, "ok": 1, "cached": 1, "failed": 1,
         "elapsed_s": 1.5},
    ]


class TestAggregate:
    def test_overall_rollup(self):
        overall = aggregate_events(_synthetic_events())["overall"]
        assert overall["sweeps"] == 1
        assert overall["jobs"] == 3
        assert overall["ok"] == 1
        assert overall["failed"] == 1
        assert overall["cached"] == 1
        assert overall["retries"] == 1
        assert overall["timeouts"] == 1
        assert overall["elapsed_s"] == pytest.approx(1.5)
        assert overall["cache_hit_rate"] == pytest.approx(1 / 3)

    def test_per_runner_buckets(self):
        runners = aggregate_events(_synthetic_events())["runners"]
        assert runners["fig2"]["total"] == 2
        assert runners["fig2"]["cache_hit_rate"] == pytest.approx(0.5)
        assert runners["fig9"]["failed"] == 1
        assert runners["fig9"]["retries"] == 1
        assert runners["fig9"]["timeouts"] == 1
        assert runners["fig9"]["p50_s"] == pytest.approx(1.0)
        assert runners["fig9"]["p95_s"] == pytest.approx(1.0)

    def test_empty_ledger(self):
        aggregate = aggregate_events([])
        assert aggregate["overall"]["jobs"] == 0
        assert aggregate["runners"] == {}

    def test_aggregate_carries_schema_version(self):
        from repro.obs.stats import STATS_SCHEMA

        assert aggregate_events(_synthetic_events())["schema"] == STATS_SCHEMA
        assert aggregate_events([])["schema"] == STATS_SCHEMA

    def test_accepts_any_iterable_not_just_lists(self):
        streamed = aggregate_events(iter(_synthetic_events()))
        assert streamed == aggregate_events(_synthetic_events())


class TestRender:
    def test_render_mentions_latency_and_hit_rate(self):
        text = render_stats(aggregate_events(_synthetic_events()))
        assert "retries: 1" in text and "timeouts: 1" in text
        assert "p50" in text and "p95" in text
        assert "fig9" in text and "1.000s" in text

    def test_render_empty(self):
        text = render_stats(aggregate_events([]))
        assert "0 jobs" in text


class TestLedgerReconciliation:
    """Events written by a real sweep must match SweepResult exactly."""

    def test_counts_reconcile_with_sweep_result(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = SweepSpec(
            runners=["test.echo"], grid={"x": [1, 2, 3]}, base_seed=2
        ).expand()
        log = EventLog(tmp_path / "events.jsonl")
        execute(jobs, cache=cache, code_version="v", events=log)
        second = execute(
            jobs + [JobSpec(runner="test.fail", index=3)],
            cache=cache,
            code_version="v",
            retries=0,
            events=log,
        )
        log.close()
        aggregate = aggregate_events_file(tmp_path / "events.jsonl")
        overall = aggregate["overall"]
        assert overall["sweeps"] == 2
        # First sweep: 3 ok; second: 3 cached + 1 failed.
        assert overall["ok"] == 3
        assert overall["cached"] == second.cached_count == 3
        assert overall["failed"] == second.failed_count == 1
        assert overall["cache_puts"] == 3
        assert overall["jobs"] == 7

    def test_sweep_end_counters_match_result(self):
        sink = RecordingSink()
        result = execute(
            [
                JobSpec(runner="test.echo", kwargs={"x": 1}, index=0),
                JobSpec(runner="test.fail", index=1),
            ],
            retries=0,
            events=sink,
        )
        (end,) = sink.of_type("sweep_end")
        assert end["ok"] == result.ok_count == 1
        assert end["failed"] == result.failed_count == 1
        assert end["jobs"] == len(result) == 2
        assert len(sink.of_type("job_end")) == 2
        assert len(sink.of_type("job_start")) == 2

    def test_stats_block_reconciles_with_events(self):
        sink = RecordingSink()
        result = execute(
            SweepSpec(runners=["test.echo"], grid={"x": [1, 2]}).expand(),
            events=sink,
        )
        counters = result.stats["counters"]
        assert counters["jobs_ok"] == len(sink.of_type("job_end")) == 2
        assert result.stats["timers"]["job.test.echo"]["count"] == 2
        assert result.stats["timers"]["sweep"]["count"] == 1


class TestCliStats:
    def test_stats_subcommand_renders(self, tmp_path, capsys):
        from repro.cli import main

        log = EventLog(tmp_path / "e.jsonl")
        execute([JobSpec(runner="test.echo", kwargs={"x": 1})], events=log)
        log.close()
        assert main(["stats", str(tmp_path / "e.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "1 sweep(s), 1 jobs: 1 ok" in out
        assert "test.echo" in out

    def test_stats_missing_file_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_json_output_is_versioned(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.obs.stats import STATS_SCHEMA

        log = EventLog(tmp_path / "e.jsonl")
        execute([JobSpec(runner="test.echo", kwargs={"x": 1})], events=log)
        log.close()
        assert main(["stats", str(tmp_path / "e.jsonl"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == STATS_SCHEMA


class TestTornLedgerReconciliation:
    """job_start without job_end is an interrupted job, never dropped."""

    def _torn(self):
        return [
            {"event": "sweep_start", "jobs": 3, "workers": 2},
            {"event": "job_start", "index": 0, "runner": "fig2",
             "label": "fig2"},
            {"event": "job_end", "index": 0, "runner": "fig2",
             "label": "fig2", "status": "ok", "duration_s": 0.2},
            {"event": "job_start", "index": 1, "runner": "fig9",
             "label": "fig9"},
            {"event": "job_start", "index": 2, "runner": "fig9",
             "label": "fig9#2"},
            # Lease worker (or the whole parent) died here: no job_end
            # for indices 1 and 2, no sweep_end.
        ]

    def test_open_starts_counted_as_interrupted_failures(self):
        aggregate = aggregate_events(self._torn())
        overall = aggregate["overall"]
        assert overall["interrupted"] == 2
        assert overall["failed"] == 2
        assert overall["jobs"] == 3  # 1 ok + 2 interrupted
        fig9 = aggregate["runners"]["fig9"]
        assert fig9["interrupted"] == 2 and fig9["failed"] == 2

    def test_render_shows_interrupted_only_when_torn(self):
        torn = render_stats(aggregate_events(self._torn()))
        assert "(2 interrupted)" in torn
        healthy = render_stats(aggregate_events(_synthetic_events()))
        assert "interrupted" not in healthy

    def test_healthy_first_line_is_byte_stable(self):
        # CI greps for this exact phrasing; the interrupted counter
        # must not perturb healthy-run output.
        line = render_stats(
            aggregate_events(_synthetic_events())
        ).splitlines()[0]
        assert line == (
            "1 sweep(s), 3 jobs: 1 ok, 1 cached, 1 failed in 1.50s"
        )

    def test_repeated_starts_pair_with_ends(self):
        # A retried job re-enters through the same (runner, label,
        # index) key; matched starts/ends must cancel exactly.
        events = [
            {"event": "job_start", "index": 0, "runner": "r", "label": "a"},
            {"event": "job_end", "index": 0, "runner": "r", "label": "a",
             "status": "ok", "duration_s": 0.1},
            {"event": "job_start", "index": 0, "runner": "r", "label": "a"},
        ]
        overall = aggregate_events(events)["overall"]
        assert overall["interrupted"] == 1
        assert overall["jobs"] == 2

    def test_real_torn_parallel_ledger_reconciles(self):
        # Drop the tail of a real batched sweep's ledger mid-lease and
        # the aggregate must still account for every started job.
        sink = RecordingSink()
        jobs = [
            JobSpec(runner="test.echo", kwargs={"v": i}, index=i)
            for i in range(6)
        ]
        execute(jobs, workers=2, dispatch="batch", lease_size=3,
                events=sink)
        events = list(sink.events)
        end_indices = [
            i for i, e in enumerate(events) if e["event"] == "job_end"
        ]
        torn = [
            e for i, e in enumerate(events)
            if i not in end_indices[-2:] and e["event"] != "sweep_end"
        ]
        overall = aggregate_events(torn)["overall"]
        assert overall["interrupted"] == 2
        assert overall["ok"] + overall["interrupted"] == 6


class TestAllCachedRunner:
    """A runner with zero duration samples renders n/a, not 0.000s."""

    def _cached_only(self):
        return [
            {"event": "sweep_start", "jobs": 2, "workers": 1},
            {"event": "cache_hit", "index": 0, "runner": "fig13", "key": "a"},
            {"event": "cache_hit", "index": 1, "runner": "fig13", "key": "b"},
            {"event": "sweep_end", "jobs": 2, "ok": 0, "cached": 2,
             "failed": 0, "elapsed_s": 0.01},
        ]

    def test_percentiles_are_none_not_zero(self):
        stats = aggregate_events(self._cached_only())["runners"]["fig13"]
        assert stats["p50_s"] is None
        assert stats["p95_s"] is None
        assert stats["max_s"] is None
        assert stats["cache_hit_rate"] == 1.0

    def test_render_shows_na(self):
        text = render_stats(aggregate_events(self._cached_only()))
        assert "n/a" in text
        assert "0.000s" not in text

    def test_timed_runner_still_renders_seconds(self):
        text = render_stats(aggregate_events(_synthetic_events()))
        assert "0.200s" in text
