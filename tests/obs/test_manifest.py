"""Tests for repro.obs.manifest: build, persist, and replay."""

import json

import pytest

from repro.engine import JobSpec, ResultCache, SweepSpec, execute
from repro.obs.manifest import (
    build_manifest,
    load_manifest,
    manifest_path_for,
    specs_from_manifest,
    write_manifest,
)


def _sweep(cache=None, code_version="v"):
    jobs = SweepSpec(
        runners=["test.echo"], grid={"x": [1, 2]}, base_seed=11
    ).expand()
    return execute(jobs, cache=cache, code_version=code_version)


class TestBuild:
    def test_records_specs_and_counters(self):
        result = _sweep()
        manifest = build_manifest(result, base_seed=11, code_version="v")
        assert manifest["manifest_version"] == 1
        assert manifest["code_version"] == "v"
        assert manifest["base_seed"] == 11
        assert manifest["counts"] == {
            "jobs": 2,
            "ok": 2,
            "cached": 0,
            "failed": 0,
            "skipped": 0,
        }
        assert manifest["partial"] is False
        jobs = manifest["jobs"]
        assert [j["index"] for j in jobs] == [0, 1]
        assert jobs[0]["runner"] == "test.echo"
        assert jobs[0]["kwargs"] == {"x": 1}
        assert jobs[0]["seed"] is not None
        assert jobs[0]["status"] == "ok"
        assert jobs[0]["attempts"] == 1

    def test_records_failures(self):
        result = execute([JobSpec(runner="test.fail", label="boom")], retries=0)
        manifest = build_manifest(result, code_version="v")
        failure = manifest["jobs"][0]["failure"]
        assert failure["error_type"] == "RuntimeError"
        assert failure["transient"] is False

    def test_embeds_sweep_stats_block(self):
        manifest = build_manifest(_sweep(), code_version="v")
        assert manifest["stats"]["counters"]["jobs_ok"] == 2
        assert "job.test.echo" in manifest["stats"]["timers"]

    def test_code_version_defaults_to_results(self, tmp_path):
        result = _sweep(cache=ResultCache(tmp_path), code_version="tag7")
        manifest = build_manifest(result)
        assert manifest["code_version"] == "tag7"


class TestPersistence:
    def test_write_and_load_roundtrip(self, tmp_path):
        manifest = build_manifest(_sweep(), code_version="v")
        path = write_manifest(manifest, tmp_path / "run.manifest.json")
        assert load_manifest(path) == json.loads(path.read_text())
        assert load_manifest(path)["counts"]["jobs"] == 2

    def test_written_file_is_strict_json(self, tmp_path):
        path = write_manifest(
            build_manifest(_sweep(), code_version="v"), tmp_path / "m.json"
        )
        json.loads(
            path.read_text(),
            parse_constant=lambda c: (_ for _ in ()).throw(ValueError(c)),
        )

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_manifest(path)

    def test_manifest_path_for_json_exports(self):
        assert str(manifest_path_for("out/fig2.json")).endswith(
            "out/fig2.manifest.json"
        )
        assert str(manifest_path_for("ledger.dat")).endswith(
            "ledger.dat.manifest.json"
        )


class TestReplay:
    def test_specs_roundtrip(self):
        result = _sweep()
        manifest = build_manifest(result, code_version="v")
        specs = specs_from_manifest(manifest)
        assert specs == [o.spec for o in result.outcomes]

    def test_replay_hits_the_cache(self, tmp_path):
        # The acceptance property: same runner/kwargs/seed/scale/code
        # version recorded in the manifest -> all cache hits on re-run.
        cache = ResultCache(tmp_path)
        first = _sweep(cache=cache, code_version="v")
        manifest = load_manifest(
            write_manifest(
                build_manifest(first, code_version="v"), tmp_path / "m.json"
            )
        )
        replay = execute(
            specs_from_manifest(manifest),
            cache=cache,
            code_version=manifest["code_version"],
        )
        assert replay.cached_count == len(replay) == 2
        assert replay.values() == first.values()
