"""Regression tests for repro.kernels.sampling error handling.

``sample_series`` used to swallow *every* exception from the
vectorized call and silently fall back to the per-element loop — so a
genuinely buggy callable (KeyError in a trace lookup, ZeroDivision in
a model) either blew up confusingly one element at a time or, worse,
produced different data on the fallback path. Only the two signatures
of "scalar-only callable handed an array" may trigger the fallback.
"""

import numpy as np
import pytest

from repro.kernels.sampling import sample_series


class TestScalarOnlyFallback:
    def test_typeerror_falls_back_to_scalar_loop(self):
        def scalar_only(t):
            # float() on an ndarray of size > 1 raises TypeError.
            return float(t) + 1.0

        times = np.arange(4.0)
        np.testing.assert_array_equal(
            sample_series(scalar_only, times), times + 1.0
        )

    def test_valueerror_falls_back_to_scalar_loop(self):
        def branchy(t):
            # Array truthiness raises ValueError ("ambiguous").
            return 1.0 if t > 1.5 else 0.0

        times = np.arange(4.0)
        np.testing.assert_array_equal(
            sample_series(branchy, times), np.array([0.0, 0.0, 1.0, 1.0])
        )


class TestRealBugsSurface:
    def test_keyerror_propagates(self):
        lookup = {}

        def buggy(t):
            return lookup["missing"]

        with pytest.raises(KeyError):
            sample_series(buggy, np.arange(4.0))

    def test_zerodivision_propagates(self):
        def buggy(t):
            return 1.0 / 0.0

        with pytest.raises(ZeroDivisionError):
            sample_series(buggy, np.arange(4.0))

    def test_attributeerror_propagates(self):
        def buggy(t):
            return t.no_such_attribute_anywhere

        with pytest.raises(AttributeError):
            sample_series(buggy, np.arange(4.0))

    def test_bug_on_scalar_path_also_propagates(self):
        # The fallback loop must not add its own swallowing either.
        def buggy(t):
            if isinstance(t, float) and t >= 2.0:
                raise ZeroDivisionError("late element bug")
            return float(t)

        with pytest.raises((ZeroDivisionError, TypeError)):
            sample_series(buggy, np.arange(4.0))
