"""Tests for repro.kernels.backend: registry, scoping, gating, contract."""

import json
import threading

import numpy as np
import pytest

from repro.engine import JobSpec, ResultCache, execute
from repro.experiments.export import to_jsonable
from repro.kernels.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    BackendUnavailableError,
    UnknownBackendError,
    active_backend,
    active_dtype,
    available_backends,
    default_backend_name,
    get_backend,
    use_backend,
    validate_backend,
)
from repro.kernels.scan import ar1_scan


class TestRegistry:
    def test_builtins_registered(self):
        assert {"numpy64", "numpy32", "numba"} <= set(available_backends())

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError, match="choose from"):
            get_backend("fortran77")

    def test_default_is_numpy64_and_exact(self):
        backend = get_backend(DEFAULT_BACKEND)
        assert backend.exact
        assert backend.dtype is np.float64

    def test_numpy32_is_tolerance_matched(self):
        assert not get_backend("numpy32").exact

    def test_numba_is_gated_not_hidden(self):
        # numba is not installed in this repository's environments: the
        # backend must stay listed but refuse selection with the reason.
        backend = get_backend("numba")
        if backend.available:  # pragma: no cover - numba present
            pytest.skip("numba importable here; gate not exercisable")
        with pytest.raises(BackendUnavailableError, match="numba"):
            validate_backend("numba")


class TestScoping:
    def test_default_active_backend(self):
        assert active_backend().name == default_backend_name()

    def test_use_backend_nests_and_restores(self):
        base = active_backend().name
        with use_backend("numpy32"):
            assert active_backend().name == "numpy32"
            assert active_dtype() is np.float32
            with use_backend("numpy64"):
                assert active_backend().name == "numpy64"
                assert active_dtype() is np.float64
            assert active_backend().name == "numpy32"
        assert active_backend().name == base == default_backend_name()

    def test_use_backend_is_thread_local(self):
        seen = {}
        ready = threading.Event()

        def _other():
            ready.wait(5)
            seen["other"] = active_backend().name

        thread = threading.Thread(target=_other)
        thread.start()
        with use_backend("numpy32"):
            ready.set()
            thread.join(5)
        assert seen["other"] == default_backend_name()

    def test_env_var_sets_process_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy32")
        assert default_backend_name() == "numpy32"
        assert active_backend().name == "numpy32"

    def test_bad_env_var_raises_on_use(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-backend")
        with pytest.raises(UnknownBackendError):
            active_backend()

    def test_unavailable_selection_raises(self):
        if get_backend("numba").available:  # pragma: no cover
            pytest.skip("numba importable here")
        with pytest.raises(BackendUnavailableError):
            with use_backend("numba"):
                pass


class TestKernelContract:
    def test_numpy64_kernels_are_float64(self):
        x = np.random.default_rng(0).standard_normal(256)
        with use_backend("numpy64"):
            out = ar1_scan(0.9, x, 0.0)
        assert out.dtype == np.float64

    def test_numpy32_kernels_are_float32_and_close(self):
        x = np.random.default_rng(0).standard_normal(256)
        with use_backend("numpy64"):
            exact = ar1_scan(0.9, x, 0.0)
        with use_backend("numpy32"):
            approx = ar1_scan(0.9, x.astype(np.float32), 0.0)
        assert approx.dtype == np.float32
        np.testing.assert_allclose(approx, exact, rtol=1e-3, atol=1e-3)


class TestEngineIntegration:
    def test_sweep_backend_changes_kernel_artifacts(self):
        # fig13 runs through the backend-aware AR(1)/sampling kernels.
        base = JobSpec(runner="fig13", seed=5, scale=0.05)
        ref = execute([base], workers=1, backend="numpy64")
        alt = execute([base], workers=1, backend="numpy32")
        canon = [
            json.dumps(to_jsonable(r.values()), sort_keys=True)
            for r in (ref, alt)
        ]
        assert canon[0] != canon[1]

    def test_backend_rides_into_batch_workers(self):
        jobs = [JobSpec(runner="fig13", seed=5, scale=0.05, index=i)
                for i in range(3)]
        serial = execute(jobs, workers=1, backend="numpy32")
        batched = execute(
            jobs, workers=2, dispatch="batch", backend="numpy32"
        )
        canon = [
            json.dumps(to_jsonable(r.values()), sort_keys=True)
            for r in (serial, batched)
        ]
        assert canon[0] == canon[1]

    def test_unknown_backend_rejected_before_any_job_runs(self):
        with pytest.raises(UnknownBackendError):
            execute([JobSpec(runner="test.echo")], workers=1,
                    backend="no-such-backend")

    def test_explicit_spec_backend_wins_over_sweep_backend(self):
        spec = JobSpec(runner="fig13", seed=5, scale=0.05,
                       backend="numpy64")
        ref = execute([spec], workers=1)
        overridden = execute([spec], workers=1, backend="numpy32")
        canon = [
            json.dumps(to_jsonable(r.values()), sort_keys=True)
            for r in (ref, overridden)
        ]
        assert canon[0] == canon[1]

    def test_cache_key_includes_non_default_backend(self):
        cache = ResultCache.__new__(ResultCache)
        spec = JobSpec(runner="fig13", seed=5)
        default_key = cache.key_for(spec, "v1")
        assert cache.key_for(spec.replace(backend="numpy32"), "v1") != (
            default_key
        )
        # The default backend is omitted from the key, so every
        # pre-backend cache entry stays valid.
        assert cache.key_for(spec.replace(backend=DEFAULT_BACKEND), "v1") == (
            default_key
        )

    def test_backends_do_not_share_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = JobSpec(runner="fig13", seed=5, scale=0.05)
        execute([spec], workers=1, cache=cache)
        first = execute(
            [spec], workers=1, cache=cache, backend="numpy32"
        )
        assert first.cached_count == 0  # different key: a miss
        second = execute(
            [spec], workers=1, cache=cache, backend="numpy32"
        )
        assert second.cached_count == 1
