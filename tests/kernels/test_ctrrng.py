"""Unit tests for the counter-based RNG (repro.kernels.ctrrng).

The fleet contract: every draw is a pure function of
``(key, stream, row, col)``, so any shard regenerates exactly its own
numbers and serial vs sharded sweeps are bit-identical by construction.
"""

import numpy as np

from repro.kernels.ctrrng import hash_u64, normals, uniforms

KEY = 20210823


class TestPurity:
    def test_same_coordinates_same_values(self):
        rows = np.arange(100)[:, None]
        cols = np.arange(40)[None, :]
        a = uniforms(KEY, 3, rows, cols)
        b = uniforms(KEY, 3, rows, cols)
        assert np.array_equal(a, b)

    def test_shard_slices_match_full_matrix(self):
        # The whole point: row r's draws do not depend on which shard
        # computes them.
        cols = np.arange(64)[None, :]
        full = uniforms(KEY, 7, np.arange(50)[:, None], cols)
        lo = uniforms(KEY, 7, np.arange(0, 23)[:, None], cols)
        hi = uniforms(KEY, 7, np.arange(23, 50)[:, None], cols)
        assert np.array_equal(full, np.concatenate([lo, hi], axis=0))

    def test_scalar_and_broadcast_agree(self):
        grid = uniforms(KEY, 1, np.arange(5)[:, None], np.arange(4)[None, :])
        for r in range(5):
            for c in range(4):
                assert grid[r, c] == float(uniforms(KEY, 1, r, c))


class TestSeparation:
    def test_streams_decorrelate(self):
        rows = np.arange(200)
        assert not np.array_equal(
            uniforms(KEY, 1, rows, 0), uniforms(KEY, 2, rows, 0)
        )

    def test_keys_decorrelate(self):
        rows = np.arange(200)
        assert not np.array_equal(
            uniforms(KEY, 1, rows, 0), uniforms(KEY + 1, 1, rows, 0)
        )

    def test_rows_and_cols_are_not_symmetric(self):
        # (row, col) and (col, row) must address different words.
        assert hash_u64(KEY, 1, 3, 4) != hash_u64(KEY, 1, 4, 3)


class TestDistributions:
    def test_uniforms_in_unit_interval(self):
        u = uniforms(KEY, 5, np.arange(2000)[:, None], np.arange(50)[None, :])
        assert u.min() >= 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(u.var() - 1.0 / 12.0) < 0.01

    def test_normals_moments(self):
        z = normals(KEY, 5, np.arange(2000)[:, None], np.arange(50)[None, :])
        assert np.isfinite(z).all()
        assert abs(z.mean()) < 0.01
        assert abs(z.std() - 1.0) < 0.01

    def test_normals_do_not_alias_uniform_streams(self):
        # Normal draws live in sub-streams >= 2**32; a logical uniform
        # stream id can never collide with them.
        rows = np.arange(500)
        for stream in (0, 1, 2, 1000):
            assert not np.array_equal(
                normals(KEY, stream, rows, 0), uniforms(KEY, stream, rows, 0)
            )
