"""Unit tests for the repro.kernels scan primitives."""

import numpy as np
import pytest

from repro.kernels.sampling import sample_series
from repro.kernels.scan import ar1_scan, leaky_ramp_scan, markov_binary_scan


def _ar1_loop(coeff, x, init=0.0):
    out = np.empty(len(x))
    prev = init
    for i, value in enumerate(x):
        prev = coeff * prev + value
        out[i] = prev
    return out


class TestAr1Scan:
    def test_matches_loop_short(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, 1.0, 50)
        np.testing.assert_allclose(
            ar1_scan(0.85, x, init=0.3), _ar1_loop(0.85, x, 0.3), rtol=0, atol=1e-12
        )

    def test_matches_loop_long_blocked(self):
        # Long enough to exercise multiple carry blocks.
        rng = np.random.default_rng(1)
        x = rng.normal(0.0, 2.0, 20_000)
        np.testing.assert_allclose(
            ar1_scan(0.97, x), _ar1_loop(0.97, x), rtol=0, atol=1e-9
        )

    def test_tiny_coefficient_forces_small_blocks(self):
        # |coeff| near 0 makes coeff**-i explode; the blocked scan must
        # still be finite and correct.
        rng = np.random.default_rng(2)
        x = rng.normal(0.0, 1.0, 3000)
        result = ar1_scan(0.01, x)
        assert np.all(np.isfinite(result))
        np.testing.assert_allclose(result, _ar1_loop(0.01, x), rtol=0, atol=1e-12)

    def test_zero_coefficient_is_identity(self):
        x = np.array([1.0, -2.0, 3.0])
        np.testing.assert_array_equal(ar1_scan(0.0, x, init=9.0), x)

    def test_empty_input(self):
        assert ar1_scan(0.5, np.array([])).shape == (0,)

    def test_unit_coefficient_is_cumsum(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(
            ar1_scan(1.0, x, init=10.0), 10.0 + np.cumsum(x)
        )

    def test_rejects_unstable_coefficient(self):
        with pytest.raises(ValueError):
            ar1_scan(1.5, np.zeros(3))
        with pytest.raises(ValueError):
            ar1_scan(-1.2, np.zeros(3))


class TestLeakyRampScan:
    def test_matches_loop(self):
        rng = np.random.default_rng(3)
        target = (rng.random(500) < 0.2).astype(float)
        alpha = 0.054
        expected = np.empty(500)
        depth = 0.1
        for i, t in enumerate(target):
            depth += (t - depth) * alpha
            expected[i] = depth
        np.testing.assert_allclose(
            leaky_ramp_scan(alpha, target, init=0.1), expected, rtol=0, atol=1e-12
        )

    def test_converges_to_target(self):
        result = leaky_ramp_scan(0.1, np.ones(400), init=0.0)
        assert result[-1] == pytest.approx(1.0, abs=1e-9)
        # Monotone up to the scan's association tolerance.
        assert np.all(np.diff(result) >= -1e-12)


class TestMarkovBinaryScan:
    def _loop(self, a, b, init):
        out = np.empty(len(a), dtype=bool)
        state = init
        for i in range(len(a)):
            state = a[i] if state else b[i]
            out[i] = state
        return out

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("init", [False, True])
    def test_matches_loop(self, seed, init):
        rng = np.random.default_rng(seed)
        a = rng.random(1000) < 0.8
        b = rng.random(1000) < 0.1
        np.testing.assert_array_equal(
            markov_binary_scan(a, b, init=init), self._loop(a, b, init)
        )

    def test_all_determined(self):
        a = np.array([True, True, False])
        np.testing.assert_array_equal(
            markov_binary_scan(a, a, init=False), a
        )

    def test_empty(self):
        empty = np.zeros(0, dtype=bool)
        assert markov_binary_scan(empty, empty, init=True).shape == (0,)


class TestSampleSeries:
    def test_scalar_broadcast(self):
        np.testing.assert_array_equal(
            sample_series(7.5, np.arange(4.0)), np.full(4, 7.5)
        )

    def test_array_aware_callable(self):
        times = np.arange(5.0)
        np.testing.assert_array_equal(
            sample_series(lambda t: 2.0 * t, times), 2.0 * times
        )

    def test_scalar_only_callable_falls_back(self):
        def scalar_only(t):
            if not isinstance(t, float):
                raise TypeError("scalar only")
            return t + 1.0

        times = np.arange(3.0)
        np.testing.assert_array_equal(
            sample_series(scalar_only, times), times + 1.0
        )

    def test_constant_valued_callable(self):
        np.testing.assert_array_equal(
            sample_series(lambda t: 3.0, np.arange(4.0)), np.full(4, 3.0)
        )


class TestBatchedScans:
    """2D (leading batch axes) scans: per-row bit-identical to 1-D."""

    def _x(self, rows=7, ticks=300, seed=3):
        return np.random.default_rng(seed).normal(0.0, 1.0, (rows, ticks))

    def test_ar1_rows_match_1d(self):
        x = self._x()
        out = ar1_scan(0.7165, x, init=0.25)
        for r in range(x.shape[0]):
            assert np.array_equal(out[r], ar1_scan(0.7165, x[r], init=0.25))

    def test_ar1_per_row_init(self):
        x = self._x(rows=4)
        inits = np.array([0.0, 1.0, -2.0, 0.5])
        out = ar1_scan(0.9, x, init=inits)
        for r in range(4):
            assert np.array_equal(out[r], ar1_scan(0.9, x[r], init=inits[r]))

    def test_leaky_ramp_rows_match_1d(self):
        target = (self._x(rows=5, seed=8) > 0.0).astype(float)
        out = leaky_ramp_scan(0.24, target, init=0.0)
        for r in range(5):
            assert np.array_equal(
                out[r], leaky_ramp_scan(0.24, target[r], init=0.0)
            )

    def test_markov_rows_match_1d(self):
        rng = np.random.default_rng(17)
        a = rng.random((6, 250)) < 0.97
        b = rng.random((6, 250)) < 0.02
        out = markov_binary_scan(a, b, init=False)
        for r in range(6):
            assert np.array_equal(
                out[r], markov_binary_scan(a[r], b[r], init=False)
            )

    def test_three_leading_axes(self):
        x = np.random.default_rng(5).normal(size=(2, 3, 64))
        out = ar1_scan(0.5, x)
        for i in range(2):
            for j in range(3):
                assert np.array_equal(out[i, j], ar1_scan(0.5, x[i, j]))
