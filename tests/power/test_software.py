"""Tests for repro.power.software (Tables 3 and 9 behaviour)."""

import numpy as np
import pytest

from repro.power.software import (
    SoftwareMonitor,
    benchmark_activities,
    monitoring_overhead_mw,
    underestimate_ratio,
)


class TestBias:
    def test_always_underestimates(self):
        monitor = SoftwareMonitor(rate_hz=1.0, seed=0)
        readings = monitor.measure(lambda t: 3000.0, duration_s=60.0)
        truth = 3000.0 + monitor.overhead_mw
        assert SoftwareMonitor.average_mw(readings) < truth

    def test_10hz_closer_than_1hz(self):
        # Table 9: higher sampling rate reduces the error.
        truth_fn = lambda t: 3000.0
        ratios = {}
        for rate in (1.0, 10.0):
            monitor = SoftwareMonitor(rate_hz=rate, seed=1)
            readings = monitor.measure(truth_fn, duration_s=120.0)
            truth = 3000.0 + monitor.overhead_mw
            ratios[rate] = SoftwareMonitor.average_mw(readings) / truth
        assert ratios[10.0] > ratios[1.0]
        assert 0.8 <= ratios[1.0] <= 0.92
        assert 0.88 <= ratios[10.0] <= 0.97

    def test_sample_count(self):
        monitor = SoftwareMonitor(rate_hz=10.0, seed=2)
        readings = monitor.measure(lambda t: 1000.0, duration_s=3.0)
        assert len(readings) == 30

    def test_current_consistent_with_power(self):
        monitor = SoftwareMonitor(rate_hz=1.0, seed=3)
        reading = monitor.measure(lambda t: 2000.0, duration_s=2.0)[0]
        assert reading.current_ma == pytest.approx(
            reading.power_mw / reading.voltage_mv * 1000.0
        )


class TestOverhead:
    def test_table3_anchor_points(self):
        assert monitoring_overhead_mw(1.0) == pytest.approx(654.0)
        assert monitoring_overhead_mw(10.0) == pytest.approx(1111.0)

    def test_zero_rate_no_overhead(self):
        assert monitoring_overhead_mw(0.0) == 0.0

    def test_interpolation_monotone(self):
        values = [monitoring_overhead_mw(r) for r in (1.0, 2.0, 5.0, 10.0)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            monitoring_overhead_mw(-1.0)

    def test_underestimate_ratio_bounds(self):
        assert underestimate_ratio(1.0) == pytest.approx(0.86)
        assert underestimate_ratio(10.0) == pytest.approx(0.92)
        assert 0.86 <= underestimate_ratio(5.0) <= 0.92


class TestBenchmarkActivities:
    def test_table9_shape(self):
        fns = {"idle": lambda t: 2000.0, "udp": lambda t: 5000.0}
        results = benchmark_activities(fns, duration_s=20.0)
        for activity in fns:
            assert results[activity][1.0] < 1.0
            assert results[activity][10.0] < 1.0
            assert results[activity][10.0] > results[activity][1.0]

    def test_invalid_monitor(self):
        with pytest.raises(ValueError):
            SoftwareMonitor(rate_hz=0.0)
        with pytest.raises(ValueError):
            SoftwareMonitor().measure(lambda t: 1.0, duration_s=-1.0)

    def test_empty_average_raises(self):
        with pytest.raises(ValueError):
            SoftwareMonitor.average_mw([])
