"""Tests for repro.power.device (Table 8 slopes, Fig. 11 crossovers)."""

import pytest

from repro.power.device import (
    DEVICES,
    RadioPowerCurve,
    crossover_mbps,
    get_device,
)


class TestCurveCalibration:
    def test_table8_slopes_s20u(self):
        s20u = get_device("S20U")
        assert s20u.curve("verizon-nsa-mmwave").slope_dl == pytest.approx(1.81)
        assert s20u.curve("verizon-nsa-mmwave").slope_ul == pytest.approx(9.42)
        assert s20u.curve("verizon-lte").slope_dl == pytest.approx(14.55)
        assert s20u.curve("verizon-lte").slope_ul == pytest.approx(80.21)
        assert s20u.curve("verizon-nsa-lowband").slope_dl == pytest.approx(13.52)

    def test_table8_slopes_s10(self):
        s10 = get_device("S10")
        assert s10.curve("verizon-nsa-mmwave").slope_dl == pytest.approx(2.06)
        assert s10.curve("verizon-lte").slope_ul == pytest.approx(57.99)

    def test_fig11_crossovers_s20u(self):
        # Paper: DL 187 (vs 4G) and 189 (vs LB); UL 40 and 123 Mbps.
        s20u = get_device("S20U")
        assert crossover_mbps(s20u, "verizon-nsa-mmwave", "verizon-lte") == pytest.approx(187.0, abs=1.0)
        assert crossover_mbps(s20u, "verizon-nsa-mmwave", "verizon-nsa-lowband") == pytest.approx(189.0, abs=1.0)
        assert crossover_mbps(s20u, "verizon-nsa-mmwave", "verizon-lte", downlink=False) == pytest.approx(40.0, abs=1.0)
        assert crossover_mbps(s20u, "verizon-nsa-mmwave", "verizon-nsa-lowband", downlink=False) == pytest.approx(123.0, abs=1.0)

    def test_s10_crossovers_near_s20u(self):
        # Appendix A.4: S10 crossovers "reasonably close" to S20U's.
        s10 = get_device("S10")
        dl = crossover_mbps(s10, "verizon-nsa-mmwave", "verizon-lte")
        assert 150.0 < dl < 260.0

    def test_mmwave_costs_more_at_idle(self):
        s20u = get_device("S20U")
        mm = s20u.radio_power_mw("verizon-nsa-mmwave", 0.0, 0.0)
        lte = s20u.radio_power_mw("verizon-lte", 0.0, 0.0)
        assert mm > 3.0 * lte

    def test_mmwave_cheaper_at_high_throughput(self):
        s20u = get_device("S20U")
        mm = s20u.radio_power_mw("verizon-nsa-mmwave", dl_mbps=1500.0)
        # What LTE would burn if it could do 1500 Mbps.
        lte = s20u.radio_power_mw("verizon-lte", dl_mbps=1500.0)
        assert mm < lte

    def test_uplink_slope_steeper_than_downlink(self):
        # Appendix A.4: uplink power rises 2.2-5.9x faster.
        for device_name in ("S10", "S20U"):
            device = get_device(device_name)
            for key in device.curves:
                curve = device.curve(key)
                ratio = curve.slope_ul / curve.slope_dl
                assert 1.5 <= ratio <= 6.5, (device_name, key, ratio)


class TestCurveBehaviour:
    def test_power_linear_in_throughput_at_fixed_rsrp(self):
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        p0 = curve.power_mw(dl_mbps=0.0, rsrp_dbm=-75.0)
        p1 = curve.power_mw(dl_mbps=100.0, rsrp_dbm=-75.0)
        p2 = curve.power_mw(dl_mbps=200.0, rsrp_dbm=-75.0)
        assert p2 - p1 == pytest.approx(p1 - p0)

    def test_poor_signal_costs_power(self):
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        good = curve.power_mw(dl_mbps=100.0, rsrp_dbm=-75.0)
        bad = curve.power_mw(dl_mbps=100.0, rsrp_dbm=-105.0)
        assert bad > good + 500.0

    def test_rsrp_penalty_superlinear(self):
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        base = curve.power_mw(dl_mbps=0.0, rsrp_dbm=-80.0)
        p10 = curve.power_mw(dl_mbps=0.0, rsrp_dbm=-90.0) - base
        p20 = curve.power_mw(dl_mbps=0.0, rsrp_dbm=-100.0) - base
        assert p20 > 2.0 * p10

    def test_no_penalty_above_reference(self):
        curve = get_device("S20U").curve("verizon-nsa-mmwave")
        assert curve.power_mw(dl_mbps=50.0, rsrp_dbm=-60.0) == curve.power_mw(
            dl_mbps=50.0, rsrp_dbm=-79.0
        )

    def test_negative_throughput_raises(self):
        curve = get_device("S20U").curve("verizon-lte")
        with pytest.raises(ValueError):
            curve.power_mw(dl_mbps=-1.0)

    def test_invalid_curve_rejected(self):
        with pytest.raises(ValueError):
            RadioPowerCurve(intercept_dl_mw=-1.0, slope_dl=1.0, intercept_ul_mw=1.0, slope_ul=1.0)


class TestDeviceProfiles:
    def test_three_devices(self):
        assert set(DEVICES) == {"S20U", "S10", "PX5"}

    def test_modems_match_appendix(self):
        assert get_device("S20U").modem.name == "X55"
        assert get_device("PX5").modem.name == "X52"
        assert get_device("S10").modem.name == "X50"

    def test_total_power_includes_screen(self):
        device = get_device("S20U")
        on = device.total_power_mw("verizon-lte", screen_on=True)
        off = device.total_power_mw("verizon-lte", screen_on=False)
        assert on - off == pytest.approx(device.screen_max_mw)

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("iphone")

    def test_missing_curve_raises(self):
        with pytest.raises(KeyError):
            get_device("S10").curve("tmobile-sa-lowband")

    def test_lookup_case_insensitive(self):
        assert get_device("s20u").name == "S20U"
