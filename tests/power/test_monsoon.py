"""Tests for repro.power.monsoon."""

import numpy as np
import pytest

from repro.power.monsoon import MonsoonMonitor, PowerTrace


class TestPowerTrace:
    def test_energy_constant_power(self):
        trace = PowerTrace(samples_mw=np.full(5000, 1000.0), rate_hz=5000.0)
        assert trace.energy_j() == pytest.approx(1.0)

    def test_average(self):
        trace = PowerTrace(samples_mw=np.array([1.0, 3.0]), rate_hz=2.0)
        assert trace.average_mw() == pytest.approx(2.0)

    def test_duration(self):
        trace = PowerTrace(samples_mw=np.zeros(100), rate_hz=50.0)
        assert trace.duration_s == pytest.approx(2.0)

    def test_window(self):
        trace = PowerTrace(samples_mw=np.arange(100.0), rate_hz=10.0)
        window = trace.window(2.0, 4.0)
        assert window.samples_mw.shape[0] == 20
        assert window.samples_mw[0] == pytest.approx(20.0)

    def test_downsample_preserves_energy(self):
        rng = np.random.default_rng(0)
        trace = PowerTrace(samples_mw=rng.uniform(0, 5000, size=5000), rate_hz=5000.0)
        down = trace.downsample(10.0)
        assert down.energy_j() == pytest.approx(trace.energy_j(), rel=1e-6)
        assert down.rate_hz == 10.0

    def test_downsample_invalid(self):
        trace = PowerTrace(samples_mw=np.zeros(100), rate_hz=100.0)
        with pytest.raises(ValueError):
            trace.downsample(200.0)

    def test_empty_average_raises(self):
        trace = PowerTrace(samples_mw=np.array([]), rate_hz=10.0)
        with pytest.raises(ValueError):
            trace.average_mw()

    def test_bad_window_raises(self):
        trace = PowerTrace(samples_mw=np.zeros(10), rate_hz=10.0)
        with pytest.raises(ValueError):
            trace.window(1.0, 0.5)


class TestMonsoonMonitor:
    def test_samples_at_5khz_default(self):
        monitor = MonsoonMonitor(seed=0)
        trace = monitor.measure(lambda t: 1000.0, duration_s=0.5)
        assert trace.samples_mw.shape[0] == 2500
        assert trace.rate_hz == 5000.0

    def test_tracks_the_truth(self):
        monitor = MonsoonMonitor(seed=1)
        trace = monitor.measure(lambda t: 2000.0 + 500.0 * (t > 0.5), duration_s=1.0)
        first = trace.window(0.0, 0.4).average_mw()
        second = trace.window(0.6, 1.0).average_mw()
        assert first == pytest.approx(2000.0, abs=5.0)
        assert second == pytest.approx(2500.0, abs=5.0)

    def test_noise_is_unbiased(self):
        monitor = MonsoonMonitor(noise_mw=10.0, seed=2)
        trace = monitor.measure(lambda t: 3000.0, duration_s=2.0)
        assert trace.average_mw() == pytest.approx(3000.0, abs=3.0)

    def test_never_negative(self):
        monitor = MonsoonMonitor(noise_mw=50.0, seed=3)
        trace = monitor.measure(lambda t: 1.0, duration_s=0.2)
        assert trace.samples_mw.min() >= 0.0

    def test_measure_series_upsamples(self):
        monitor = MonsoonMonitor(rate_hz=100.0, noise_mw=0.0, seed=4)
        trace = monitor.measure_series([100.0, 200.0], series_rate_hz=1.0)
        assert trace.samples_mw.shape[0] == 200
        assert trace.samples_mw[0] == pytest.approx(100.0)
        assert trace.samples_mw[-1] == pytest.approx(200.0)

    def test_reproducible(self):
        a = MonsoonMonitor(seed=7).measure(lambda t: 500.0, 0.1)
        b = MonsoonMonitor(seed=7).measure(lambda t: 500.0, 0.1)
        assert np.array_equal(a.samples_mw, b.samples_mw)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MonsoonMonitor(rate_hz=0.0)
        with pytest.raises(ValueError):
            MonsoonMonitor().measure(lambda t: 1.0, duration_s=0.0)
