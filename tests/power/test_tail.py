"""Tests for repro.power.tail (Table 2)."""

import pytest

from repro.power.tail import (
    TAIL_POWER,
    TailPower,
    get_tail_power,
    power_timeline_mw,
    tail_energy_j,
)


class TestTable2:
    def test_values_verbatim(self):
        assert get_tail_power("verizon-lte").tail_mw == 178.0
        assert get_tail_power("tmobile-lte").tail_mw == 66.0
        assert get_tail_power("verizon-nsa-mmwave").tail_mw == 1092.0
        assert get_tail_power("verizon-nsa-mmwave").switch_mw == 1494.0
        assert get_tail_power("tmobile-sa-lowband").tail_mw == 593.0

    def test_5g_tails_exceed_4g(self):
        for five_g in ("verizon-nsa-lowband", "verizon-nsa-mmwave"):
            assert get_tail_power(five_g).tail_mw > get_tail_power("verizon-lte").tail_mw

    def test_mmwave_tail_is_the_extreme(self):
        mm = get_tail_power("verizon-nsa-mmwave").tail_mw
        assert all(mm >= t.tail_mw for t in TAIL_POWER.values())

    def test_lte_has_no_switch_power(self):
        assert get_tail_power("verizon-lte").switch_mw is None
        assert get_tail_power("verizon-lte").switch_energy_j == 0.0

    def test_switch_energy_positive_for_nsa(self):
        assert get_tail_power("tmobile-nsa-lowband").switch_energy_j > 0.0

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_tail_power("nope")

    def test_invalid_tail_rejected(self):
        with pytest.raises(ValueError):
            TailPower(network_key="x", tail_mw=0.0)


class TestTailEnergy:
    def test_mmwave_tail_energy_dominates(self):
        assert tail_energy_j("verizon-nsa-mmwave") > tail_energy_j("verizon-lte")
        assert tail_energy_j("verizon-nsa-mmwave") > tail_energy_j("tmobile-lte") * 5

    def test_magnitude_sane(self):
        # mmWave: ~1.09 W for ~10.5 s -> ~11.5 J.
        assert tail_energy_j("verizon-nsa-mmwave") == pytest.approx(11.5, rel=0.1)

    def test_horizon_truncates(self):
        full = tail_energy_j("verizon-nsa-mmwave")
        half = tail_energy_j("verizon-nsa-mmwave", horizon_s=5.0)
        assert half < full

    def test_sa_inactive_floor_counted(self):
        # SA energy includes the cheap RRC_INACTIVE dwell.
        sa_full = tail_energy_j("tmobile-sa-lowband")
        sa_conn_only = tail_energy_j("tmobile-sa-lowband", horizon_s=10.4)
        extra = sa_full - sa_conn_only
        assert 0.0 < extra < 1.0


class TestTimeline:
    def test_staircase_shape(self):
        times, powers = power_timeline_mw("verizon-nsa-mmwave", horizon_s=15.0, resolution_s=0.1)
        assert len(times) == len(powers)
        # Tail level early, idle level late.
        assert powers[10] == pytest.approx(1092.0)
        assert powers[-1] == pytest.approx(get_tail_power("verizon-nsa-mmwave").idle_mw)

    def test_sa_timeline_has_three_levels(self):
        _, powers = power_timeline_mw("tmobile-sa-lowband", horizon_s=18.0, resolution_s=0.1)
        assert len(set(powers)) >= 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            power_timeline_mw("verizon-lte", horizon_s=0.0)
