"""Tests for repro.power.calibration."""

import numpy as np
import pytest

from repro.power.calibration import SoftwareCalibrator
from repro.power.software import SoftwareMonitor


def _paired_series(rate_hz=10.0, duration_s=120.0, seed=0):
    """Software readings paired with the true power they observed."""
    rng = np.random.default_rng(seed)
    levels = rng.uniform(1000.0, 6000.0, size=int(duration_s) + 1)

    def truth_fn(t):
        return float(levels[int(t)])

    monitor = SoftwareMonitor(rate_hz=rate_hz, seed=seed)
    readings = monitor.measure(truth_fn, duration_s=duration_s)
    raw = np.array([r.power_mw for r in readings])
    truth = np.array([truth_fn(r.t_s) + monitor.overhead_mw for r in readings])
    return raw, truth


class TestCalibration:
    def test_calibration_reduces_mape(self):
        raw, truth = _paired_series()
        split = int(0.7 * raw.shape[0])
        calibrator = SoftwareCalibrator().fit(raw[:split], truth[:split])
        before, after = calibrator.evaluate(raw[split:], truth[split:])
        assert after < before
        assert after < 6.0

    def test_predictions_move_toward_truth(self):
        raw, truth = _paired_series(seed=1)
        calibrator = SoftwareCalibrator().fit(raw, truth)
        corrected = calibrator.predict(raw)
        # Software under-reads; calibration must shift upward on average.
        assert corrected.mean() > raw.mean()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SoftwareCalibrator().predict([1000.0] * 10)

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            SoftwareCalibrator().fit([1.0, 2.0], [1.0])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            SoftwareCalibrator(window=10).fit([1.0] * 5, [1.0] * 5)
