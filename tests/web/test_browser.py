"""Tests for repro.web.browser (Fig. 19/20 behaviour)."""

import numpy as np
import pytest

from repro.web.browser import Browser, _transfer_ms
from repro.web.catalog import Website, generate_catalog


@pytest.fixture(scope="module")
def browser():
    return Browser(seed=0)


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(n_sites=60, seed=5)


def make_site(n_objects=80, total_mb=2.0, dynamic_ratio=0.3):
    n_dynamic = int(n_objects * dynamic_ratio)
    total = int(total_mb * 1e6)
    return Website(
        name="x",
        n_objects=n_objects,
        n_dynamic=n_dynamic,
        n_images=n_objects // 3,
        n_videos=0,
        total_bytes=total,
        dynamic_bytes=int(total * dynamic_ratio),
    )


class TestTransferModel:
    def test_zero_bytes_instant(self):
        assert _transfer_ms(0.0, 100.0, 30.0) == 0.0

    def test_large_flow_linerate_dominated(self):
        # 100 MB at 100 Mbps ~ 8 s.
        ms = _transfer_ms(100e6, 100.0, 30.0)
        assert ms == pytest.approx(8000.0, rel=0.2)

    def test_small_flow_rtt_dominated(self):
        # 20 KB needs ~1-2 RTT rounds regardless of bandwidth.
        fast = _transfer_ms(20_000, 10_000.0, 50.0)
        assert 40.0 <= fast <= 150.0

    def test_more_bandwidth_never_slower(self):
        slow = _transfer_ms(5e6, 25.0, 40.0)
        fast = _transfer_ms(5e6, 1000.0, 40.0)
        assert fast < slow


class TestPageLoads:
    def test_5g_always_faster(self, browser, catalog):
        for site in list(catalog)[:20]:
            r4, r5 = browser.load_both(site)
            assert r5.plt_s < r4.plt_s

    def test_4g_always_cheaper(self, browser, catalog):
        for site in list(catalog)[:20]:
            r4, r5 = browser.load_both(site)
            assert r4.energy_j < r5.energy_j

    def test_plt_gap_grows_with_page_size(self, browser):
        small = make_site(total_mb=0.5)
        large = make_site(total_mb=15.0)
        gap_small = browser.load(small, "4G").plt_s - browser.load(small, "5G").plt_s
        gap_large = browser.load(large, "4G").plt_s - browser.load(large, "5G").plt_s
        assert gap_large > gap_small

    def test_plt_grows_with_object_count(self, browser):
        few = browser.load(make_site(n_objects=10), "5G").plt_s
        many = browser.load(make_site(n_objects=500, total_mb=4.0), "5G").plt_s
        assert many > few

    def test_dynamic_objects_slow_loading(self, browser):
        static = browser.load(make_site(dynamic_ratio=0.0), "4G").plt_s
        dynamic = browser.load(make_site(dynamic_ratio=0.9), "4G").plt_s
        assert dynamic > static

    def test_plt_magnitudes_sane(self, browser, catalog):
        plt4 = [browser.load(s, "4G").plt_s for s in list(catalog)[:30]]
        plt5 = [browser.load(s, "5G").plt_s for s in list(catalog)[:30]]
        assert 1.0 < np.median(plt4) < 10.0
        assert 0.5 < np.median(plt5) < 6.0

    def test_energy_magnitudes_sane(self, browser, catalog):
        e5 = [browser.load(s, "5G").energy_j for s in list(catalog)[:30]]
        assert 1.0 < np.median(e5) < 30.0

    def test_har_attached(self, browser):
        result = browser.load(make_site(), "5G")
        assert result.har.n_entries == 80
        assert result.har.radio == "5G"

    def test_unknown_radio_raises(self, browser):
        with pytest.raises(ValueError):
            browser.load(make_site(), "3G")
