"""Tests for repro.web.har."""

import pytest

from repro.web.har import HarEntry, HarRecord


class TestHarEntry:
    def test_end_time(self):
        entry = HarEntry(url="u", start_ms=100.0, duration_ms=50.0, size_bytes=1000)
        assert entry.end_ms == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HarEntry(url="u", start_ms=-1.0, duration_ms=1.0, size_bytes=1)
        with pytest.raises(ValueError):
            HarEntry(url="u", start_ms=0.0, duration_ms=1.0, size_bytes=-1)


class TestHarRecord:
    def _record(self):
        record = HarRecord(page_url="p", radio="5G")
        record.add(HarEntry(url="a", start_ms=0.0, duration_ms=500.0, size_bytes=500_000))
        record.add(HarEntry(url="b", start_ms=200.0, duration_ms=1000.0, size_bytes=1_000_000))
        return record

    def test_onload_is_last_completion(self):
        assert self._record().on_load_ms == 1200.0

    def test_totals(self):
        record = self._record()
        assert record.n_entries == 2
        assert record.total_bytes == 1_500_000

    def test_empty_record(self):
        record = HarRecord(page_url="p", radio="4G")
        assert record.on_load_ms == 0.0
        assert record.throughput_timeline_mbps() == []

    def test_timeline_conserves_bits(self):
        record = self._record()
        timeline = record.throughput_timeline_mbps(dt_s=0.5)
        total_bits = sum(timeline) * 0.5 * 1e6
        assert total_bits == pytest.approx(record.total_bytes * 8.0, rel=1e-6)

    def test_timeline_length_covers_plt(self):
        record = self._record()
        timeline = record.throughput_timeline_mbps(dt_s=0.5)
        assert len(timeline) * 0.5 >= record.on_load_ms / 1000.0

    def test_zero_duration_entry(self):
        record = HarRecord(page_url="p", radio="4G")
        record.add(HarEntry(url="a", start_ms=0.0, duration_ms=0.0, size_bytes=1000))
        timeline = record.throughput_timeline_mbps(dt_s=1.0)
        assert sum(timeline) * 1e6 == pytest.approx(8000.0)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            self._record().throughput_timeline_mbps(dt_s=0.0)
