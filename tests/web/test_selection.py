"""Tests for repro.web.selection (Table 6 / Fig. 22)."""

import numpy as np
import pytest

from repro.web.browser import Browser
from repro.web.catalog import generate_catalog
from repro.web.selection import (
    InterfaceSelector,
    QOE_MODELS,
    QoEModelSpec,
    build_dataset,
)


@pytest.fixture(scope="module")
def dataset():
    catalog = generate_catalog(n_sites=250, seed=2)
    return build_dataset(catalog, Browser(seed=3))


@pytest.fixture(scope="module")
def reports(dataset):
    return InterfaceSelector(seed=4).evaluate(dataset)


class TestQoEModels:
    def test_five_models_m1_to_m5(self):
        assert [m.model_id for m in QOE_MODELS] == ["M1", "M2", "M3", "M4", "M5"]

    def test_weights_sum_to_one(self):
        for model in QOE_MODELS:
            assert model.alpha + model.beta == pytest.approx(1.0)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            QoEModelSpec("X", "bad", alpha=0.5, beta=0.6)
        with pytest.raises(ValueError):
            QoEModelSpec("X", "bad", alpha=-0.1, beta=1.1)


class TestLabels:
    def test_m1_mostly_5g(self, dataset):
        labels = dataset.labels_for(QOE_MODELS[0])
        assert labels.mean() > 0.7

    def test_m5_all_4g(self, dataset):
        labels = dataset.labels_for(QOE_MODELS[4])
        assert labels.mean() < 0.1

    def test_5g_share_monotone_decreasing(self, dataset):
        shares = [dataset.labels_for(m).mean() for m in QOE_MODELS]
        assert all(a >= b for a, b in zip(shares, shares[1:]))


class TestSelection:
    def test_table6_flip_between_m1_and_m5(self, reports):
        assert reports["M1"].use_5g > reports["M1"].use_4g
        assert reports["M5"].use_4g > reports["M5"].use_5g

    def test_use_counts_span_test_set(self, reports, dataset):
        expected = int(round(len(dataset) * 0.3))
        for report in reports.values():
            assert report.n_test == expected

    def test_trees_accurate(self, reports):
        for report in reports.values():
            assert report.accuracy >= 0.75

    def test_energy_saving_grows_toward_m5(self, reports):
        assert reports["M5"].energy_saving_percent >= reports["M1"].energy_saving_percent

    def test_saving_in_paper_range_for_energy_models(self, reports):
        # Paper: interface selection saves 15-66% energy.
        assert 15.0 <= reports["M4"].energy_saving_percent <= 70.0

    def test_tree_describe_readable(self, reports):
        text = reports["M1"].tree.describe(max_depth=2)
        assert "if" in text or "leaf" in text

    def test_table_rows_shape(self, reports):
        rows = InterfaceSelector.table_rows(reports)
        assert len(rows) == 5
        assert rows[0][0] == "M1"
