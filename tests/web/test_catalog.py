"""Tests for repro.web.catalog."""

import numpy as np
import pytest

from repro.web.catalog import FEATURE_NAMES, Website, WebsiteCatalog, generate_catalog


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(n_sites=500, seed=3)


class TestWebsite:
    def _site(self, **overrides):
        base = dict(
            name="s",
            n_objects=100,
            n_dynamic=40,
            n_images=30,
            n_videos=1,
            total_bytes=2_000_000,
            dynamic_bytes=600_000,
        )
        base.update(overrides)
        return Website(**base)

    def test_derived_ratios(self):
        site = self._site()
        assert site.dynamic_ratio == pytest.approx(0.4)
        assert site.dynamic_size_ratio == pytest.approx(0.3)
        assert site.avg_object_bytes == pytest.approx(20_000.0)

    def test_feature_vector_matches_names(self):
        site = self._site()
        assert site.feature_vector().shape[0] == len(FEATURE_NAMES)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._site(n_objects=0)
        with pytest.raises(ValueError):
            self._site(n_dynamic=101)
        with pytest.raises(ValueError):
            self._site(total_bytes=0)
        with pytest.raises(ValueError):
            self._site(dynamic_bytes=3_000_000)


class TestCatalog:
    def test_count(self, catalog):
        assert len(catalog) == 500

    def test_alexa_scale_default(self):
        assert len(generate_catalog(n_sites=10)) == 10

    def test_heavy_tail_object_counts(self, catalog):
        objects = np.array([s.n_objects for s in catalog])
        assert np.median(objects) < 150
        assert objects.max() > 400

    def test_page_sizes_realistic(self, catalog):
        sizes_mb = np.array([s.total_bytes for s in catalog]) / 1e6
        assert 0.5 < np.median(sizes_mb) < 6.0
        assert sizes_mb.max() > 10.0

    def test_dynamic_ratio_spread(self, catalog):
        ratios = np.array([s.dynamic_ratio for s in catalog])
        assert ratios.min() < 0.2
        assert ratios.max() > 0.6

    def test_feature_matrix_shape(self, catalog):
        assert catalog.feature_matrix().shape == (500, len(FEATURE_NAMES))

    def test_bucket_by_objects(self, catalog):
        buckets = catalog.bucket_by(
            lambda s: s.n_objects,
            [("small", 0, 50), ("large", 50, 100000)],
        )
        assert len(buckets["small"]) + len(buckets["large"]) == 500

    def test_reproducible(self):
        a = generate_catalog(n_sites=20, seed=9)
        b = generate_catalog(n_sites=20, seed=9)
        assert [s.total_bytes for s in a] == [s.total_bytes for s in b]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_catalog(n_sites=0)
