"""Regression tests for ProgressTracker clock and summary edge cases."""

from types import SimpleNamespace

from repro.engine import ProgressTracker
from repro.engine import progress as progress_module


def _ok_outcome(label="j"):
    return SimpleNamespace(
        status="ok",
        duration_s=0.1,
        failure=None,
        spec=SimpleNamespace(display=label),
    )


class TestElapsedClock:
    def test_elapsed_frozen_after_finish_even_at_monotonic_zero(
        self, monkeypatch
    ):
        # Regression: `self._finished_at or time.monotonic()` treated a
        # legitimate finish timestamp of 0.0 as "not finished", so the
        # clock kept running after finish(). `is None` must be used.
        ticks = iter([0.0, 0.0, 50.0, 60.0])
        monkeypatch.setattr(
            progress_module.time, "monotonic", lambda: next(ticks)
        )
        tracker = ProgressTracker()
        tracker.start(1)  # started at t=0.0
        tracker.finish()  # finished at t=0.0
        assert tracker.elapsed_s() == 0.0  # buggy code returned 50.0
        assert tracker.elapsed_s() == 0.0  # ... and then 60.0

    def test_elapsed_zero_before_start(self):
        assert ProgressTracker().elapsed_s() == 0.0

    def test_elapsed_runs_while_unfinished(self, monkeypatch):
        ticks = iter([10.0, 14.5])
        monkeypatch.setattr(
            progress_module.time, "monotonic", lambda: next(ticks)
        )
        tracker = ProgressTracker()
        tracker.start(1)
        assert tracker.elapsed_s() == 4.5


class TestSummaryWithoutStart:
    def test_finish_before_start_reports_seen_jobs(self):
        # Regression: updates without start() left total=0, so the
        # summary read "2/0 jobs" — done and total disagreeing about
        # the same jobs. The snapshot now reports what was seen.
        tracker = ProgressTracker()
        tracker.update(_ok_outcome())
        tracker.update(_ok_outcome())
        tracker.finish()
        summary = tracker.summary()
        assert summary.startswith("2/2 jobs")
        assert "2 ok" in summary

    def test_started_tracker_keeps_declared_total(self):
        tracker = ProgressTracker()
        tracker.start(5)
        tracker.update(_ok_outcome())
        assert tracker.summary().startswith("1/5 jobs")

    def test_progress_line_uses_consistent_total(self, capsys):
        import sys

        tracker = ProgressTracker(stream=sys.stderr)
        tracker.update(_ok_outcome("solo"))
        err = capsys.readouterr().err
        assert "[1/1] solo: ok" in err


class TestSweepEvents:
    def test_start_finish_emit_sweep_events(self):
        from repro.obs.events import RecordingSink

        sink = RecordingSink()
        tracker = ProgressTracker(events=sink)
        tracker.start(3, workers=2)
        tracker.update(_ok_outcome())
        tracker.finish()
        (start,) = sink.of_type("sweep_start")
        assert start["jobs"] == 3 and start["workers"] == 2
        (end,) = sink.of_type("sweep_end")
        assert end["ok"] == 1 and end["jobs"] == 3
        assert end["elapsed_s"] >= 0.0
