"""Tests for repro.engine.spec: job specs, grids, seed derivation."""

import pytest

from repro.engine.spec import JobSpec, SweepSpec, spawn_seeds


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_independent_children(self):
        seeds = spawn_seeds(7, 16)
        assert len(set(seeds)) == 16

    def test_base_seed_changes_children(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)

    def test_none_propagates(self):
        assert spawn_seeds(None, 3) == [None, None, None]

    def test_prefix_stability(self):
        # The first k children do not depend on how many siblings follow.
        assert spawn_seeds(3, 2) == spawn_seeds(3, 5)[:2]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestJobSpec:
    def test_display_defaults(self):
        assert JobSpec(runner="fig2", index=3).display == "fig2#3"
        assert JobSpec(runner="fig2", label="custom").display == "custom"

    def test_replace(self):
        spec = JobSpec(runner="fig2", seed=1)
        other = spec.replace(index=9)
        assert other.index == 9 and other.runner == "fig2" and spec.index == 0


class TestSweepSpec:
    def test_grid_expansion_cartesian(self):
        sweep = SweepSpec(
            runners=["test.echo"],
            grid={"a": [1, 2], "b": ["x", "y", "z"]},
        )
        jobs = sweep.expand()
        assert len(jobs) == 6
        assert [j.kwargs for j in jobs[:3]] == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 1, "b": "z"},
        ]

    def test_base_kwargs_overlaid(self):
        sweep = SweepSpec(
            runners=["test.echo"],
            base_kwargs={"a": 0, "c": 9},
            grid={"a": [5]},
        )
        (job,) = sweep.expand()
        assert job.kwargs == {"a": 5, "c": 9}

    def test_repetitions_multiply(self):
        jobs = SweepSpec(runners=["r1", "r2"], repetitions=3).expand()
        assert len(jobs) == 6
        assert [j.runner for j in jobs] == ["r1"] * 3 + ["r2"] * 3

    def test_seeds_assigned_positionally(self):
        sweep = SweepSpec(runners=["a", "b"], base_seed=11, repetitions=2)
        jobs = sweep.expand()
        assert [j.seed for j in jobs] == spawn_seeds(11, 4)
        assert [j.index for j in jobs] == [0, 1, 2, 3]

    def test_expansion_is_reproducible(self):
        sweep = SweepSpec(
            runners=["a"], grid={"x": [1, 2]}, base_seed=3, repetitions=2
        )
        assert sweep.expand() == sweep.expand()

    def test_labels_name_grid_point_and_rep(self):
        sweep = SweepSpec(runners=["a"], grid={"x": [1]}, repetitions=2)
        labels = [j.label for j in sweep.expand()]
        assert labels == ["a[x=1]/r0", "a[x=1]/r1"]

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(runners=["a"], repetitions=0).expand()
