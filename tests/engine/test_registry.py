"""Tests for repro.engine.registry: lookup, lazy targets, injection."""

import pytest

from repro.engine import registry
from repro.engine.errors import UnknownRunnerError


class TestRegistration:
    def test_all_artifacts_registered(self):
        artifacts = registry.available(kind="artifact")
        assert set(artifacts) == {
            "table1", "fig2", "fig3", "fig6", "fig8", "fig9", "fig10",
            "table2", "fig11", "fig12", "fig13", "fig15", "table9",
            "fig17", "fig18", "fig19", "table6", "fig23", "fig24",
            "fleet", "live", "energy_abr",
        }

    def test_campaign_and_test_runners_registered(self):
        names = set(registry.available())
        assert {"campaign.speedtest-setting", "campaign.walking-setting"} <= names
        assert {"test.sleep", "test.flaky", "test.fail", "test.echo"} <= names

    def test_descriptions_present(self):
        for name in registry.available(kind="artifact"):
            assert registry.describe(name)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register("fig2", lambda: None)

    def test_register_unregister_roundtrip(self):
        registry.register("tmp.unit", lambda: 41, description="t", kind="test")
        try:
            assert registry.call("tmp.unit") == 41
        finally:
            registry.unregister("tmp.unit")
        with pytest.raises(UnknownRunnerError):
            registry.resolve("tmp.unit")


class TestResolution:
    def test_unknown_name_raises(self):
        with pytest.raises(UnknownRunnerError):
            registry.resolve("does-not-exist")

    def test_dotted_path_fallback(self):
        fn = registry.resolve("repro.engine.testing:echo_runner")
        assert fn(seed=3) == {"seed": 3}

    def test_bad_dotted_path(self):
        with pytest.raises(UnknownRunnerError):
            registry.resolve("repro.engine.testing:not_a_function")

    def test_lazy_entries_resolve(self):
        fn = registry.resolve("test.echo")
        assert fn(x=1) == {"x": 1, "seed": None}


class TestCall:
    def test_seed_injected_when_accepted(self):
        assert registry.call("test.echo", seed=5) == {"seed": 5}

    def test_seed_ignored_when_not_accepted(self):
        # run_tail_power (table2) takes neither seed nor scale.
        result = registry.call("table2", seed=123, scale=0.5)
        assert "rows" in result

    def test_explicit_kwarg_wins_over_injection(self):
        out = registry.call("test.echo", {"seed": 1}, seed=2)
        assert out == {"seed": 1}

    def test_scale_injected_for_artifacts(self):
        result = registry.call("fig2", scale=0.2, seed=0)
        # 20 servers scaled to 4 ⇒ 4 distances per series.
        assert len(result["series"]["verizon-lte"]) == 4
