"""Tests for batch-lease dispatch: fusing, isolation, crash requeue."""

import json

import numpy as np
import pytest

from repro.engine import BatchSpec, JobSpec, execute, fuse_jobs
from repro.engine.pool import _auto_lease_size
from repro.engine.shm import active_segments
from repro.experiments.export import to_jsonable

N_JOBS = 12


def _echo_jobs(n=N_JOBS):
    return [
        JobSpec(runner="test.echo", kwargs={"v": i}, index=i, seed=100 + i)
        for i in range(n)
    ]


class TestFuseJobs:
    def test_every_job_lands_once_in_order(self):
        jobs = _echo_jobs(10)
        leases = fuse_jobs(jobs, 3)
        assert [lease.size for lease in leases] == [3, 3, 3, 1]
        flat = [job for lease in leases for job in lease.jobs]
        assert flat == jobs

    def test_lease_size_one_degenerates_to_per_job(self):
        leases = fuse_jobs(_echo_jobs(4), 1)
        assert [lease.size for lease in leases] == [1, 1, 1, 1]

    def test_lease_size_validation(self):
        with pytest.raises(ValueError):
            fuse_jobs(_echo_jobs(4), 0)

    def test_empty_lease_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec(jobs=())

    def test_display_names_range(self):
        jobs = _echo_jobs(3)
        assert fuse_jobs(jobs, 3)[0].display == (
            f"lease[{jobs[0].display}..{jobs[2].display}]"
        )
        assert fuse_jobs(jobs, 1)[0].display == f"lease[{jobs[0].display}]"

    def test_auto_lease_size_targets_four_leases_per_worker(self):
        assert _auto_lease_size(256, 4) == 16
        assert _auto_lease_size(3, 4) == 1
        assert _auto_lease_size(0, 4) == 1


class TestBatchExecution:
    def test_batch_matches_serial(self):
        jobs = _echo_jobs()
        serial = execute(jobs, workers=1)
        batched = execute(jobs, workers=3, dispatch="batch")
        assert serial.values() == batched.values()

    @pytest.mark.parametrize("lease_size", [1, 4, 64])
    def test_lease_size_does_not_change_results(self, lease_size):
        jobs = _echo_jobs()
        serial = execute(jobs, workers=1)
        batched = execute(
            jobs, workers=2, dispatch="batch", lease_size=lease_size
        )
        assert serial.values() == batched.values()

    def test_invalid_dispatch_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            execute(_echo_jobs(2), workers=2, dispatch="warp")

    def test_invalid_lease_size_rejected(self):
        with pytest.raises(ValueError, match="lease_size"):
            execute(_echo_jobs(2), workers=2, lease_size=0)

    def test_large_array_results_survive_shm_transport(self):
        jobs = [
            JobSpec(
                runner="test.array",
                kwargs={"n": 20_000},
                index=i,
                seed=7 + i,
                label=f"arr{i}",
            )
            for i in range(4)
        ]
        serial = execute(jobs, workers=1)
        batched = execute(jobs, workers=2, dispatch="batch")
        for a, b in zip(serial.values(), batched.values()):
            np.testing.assert_array_equal(a["values"], b["values"])
            assert a["checksum"] == b["checksum"]
        assert active_segments() == ()

    def test_shm_disabled_still_correct(self):
        jobs = [
            JobSpec(runner="test.array", kwargs={"n": 20_000}, index=i, seed=i)
            for i in range(3)
        ]
        serial = execute(jobs, workers=1)
        batched = execute(jobs, workers=2, dispatch="batch", shm_bytes=0)
        canon = [
            json.dumps(to_jsonable(r.values()), sort_keys=True)
            for r in (serial, batched)
        ]
        assert canon[0] == canon[1]
        assert active_segments() == ()


class TestCrashIsolation:
    def test_crash_fails_one_job_not_the_lease(self):
        jobs = _echo_jobs(6)
        jobs[2] = JobSpec(runner="test.crash", index=2, label="boom")
        result = execute(
            jobs, workers=2, dispatch="batch", lease_size=3, retries=0
        )
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["ok", "ok", "failed", "ok", "ok", "ok"]
        failure = result.outcomes[2].failure
        assert failure.error_type == "WorkerCrashError"
        # Jobs after the crash in the same lease were re-leased and ran.
        assert result.outcomes[3].value == {"v": 3, "seed": 103}
        assert active_segments() == ()

    def test_all_leases_crashing_still_terminates(self):
        jobs = [
            JobSpec(runner="test.crash", index=i, label=f"c{i}")
            for i in range(4)
        ]
        result = execute(
            jobs, workers=2, dispatch="batch", lease_size=2, retries=0
        )
        assert result.failed_count == 4
        assert all(
            o.failure.error_type == "WorkerCrashError"
            for o in result.outcomes
        )
        assert active_segments() == ()

    def test_hang_reclaimed_by_watchdog_inside_lease(self):
        jobs = _echo_jobs(4)
        jobs[1] = JobSpec(
            runner="test.hang", kwargs={"hang_s": 60.0}, index=1, label="hang"
        )
        result = execute(
            jobs,
            workers=2,
            dispatch="batch",
            lease_size=2,
            retries=0,
            timeout_s=0.5,
        )
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["ok", "failed", "ok", "ok"]
        assert active_segments() == ()
