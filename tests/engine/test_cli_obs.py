"""CLI-level tests for the observability surface: sweep tracing flags,
calibration gauges, OpenMetrics export, and ``stats --json``."""

import json

from repro.cli import main
from repro.obs.events import read_events


class TestSweepTracing:
    def test_events_ledger_carries_spans_by_default(self, tmp_path, capsys):
        ledger = tmp_path / "L.jsonl"
        assert main(["sweep", "fig2", "--scale", "0.2", "--quiet",
                     "--events", str(ledger)]) == 0
        kinds = [e["event"] for e in read_events(ledger)]
        assert "span_start" in kinds and "span_end" in kinds

    def test_no_trace_suppresses_spans(self, tmp_path, capsys):
        ledger = tmp_path / "L.jsonl"
        assert main(["sweep", "fig2", "--scale", "0.2", "--quiet",
                     "--no-trace", "--events", str(ledger)]) == 0
        kinds = {e["event"] for e in read_events(ledger)}
        assert "span_start" not in kinds and "span_end" not in kinds

    def test_profile_dir_dumps_pstats(self, tmp_path, capsys):
        import pstats

        profile_dir = tmp_path / "prof"
        assert main(["sweep", "fig2", "--scale", "0.2", "--quiet",
                     "--profile-dir", str(profile_dir)]) == 0
        (dump,) = sorted(profile_dir.iterdir())
        assert dump.name == "job-0000-fig2.pstats"
        assert pstats.Stats(str(dump)).total_calls > 0


class TestSweepGauges:
    def test_gauge_events_and_scoreboard(self, tmp_path, capsys):
        ledger = tmp_path / "L.jsonl"
        assert main(["sweep", "fig2", "--quiet",
                     "--events", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "calibration gauges:" in out
        gauge_events = [
            e for e in read_events(ledger) if e["event"] == "gauge"
        ]
        assert len(gauge_events) >= 6  # full registry, most skipped
        scored = [e for e in gauge_events if e["status"] != "skipped"]
        assert scored and all(e["status"] == "pass" for e in scored)

    def test_miscalibrated_fixture_prints_fail(self, tmp_path, capsys):
        fixture = tmp_path / "bad.json"
        fixture.write_text(json.dumps(
            {"rtt_floor_mmwave": {"target": 60.0, "warn": 0.05,
                                  "fail": 0.1}}
        ))
        # Gauge failures do not change sweep exit semantics (report
        # owns that) — but the scoreboard must name the failure.
        assert main(["sweep", "fig2", "--quiet",
                     "--gauges", str(fixture)]) == 0
        out = capsys.readouterr().out
        assert "1 fail" in out
        assert "FAIL rtt_floor_mmwave" in out

    def test_bad_gauges_file_exits_2(self, tmp_path, capsys):
        fixture = tmp_path / "bad.json"
        fixture.write_text(json.dumps({"nonexistent_gauge": {"target": 1}}))
        assert main(["sweep", "fig2", "--quiet",
                     "--gauges", str(fixture)]) == 2
        assert "--gauges" in capsys.readouterr().err

    def test_metrics_textfile_parses(self, tmp_path, capsys):
        from repro.obs.openmetrics import parse_openmetrics

        metrics = tmp_path / "om.txt"
        assert main(["sweep", "fig2", "--quiet",
                     "--metrics", str(metrics)]) == 0
        samples = parse_openmetrics(metrics.read_text())
        names = {name for name, _, _ in samples}
        assert "repro_calibration_status" in names
        assert "repro_jobs_total" in names

    def test_no_scoreboard_without_obs_flags(self, capsys):
        assert main(["sweep", "fig2", "--scale", "0.2", "--quiet"]) == 0
        assert "calibration gauges" not in capsys.readouterr().out


class TestStatsJson:
    def test_json_flag_emits_machine_readable_aggregate(
        self, tmp_path, capsys
    ):
        ledger = tmp_path / "L.jsonl"
        assert main(["sweep", "fig2", "--scale", "0.2", "--quiet",
                     "--events", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["stats", str(ledger), "--json"]) == 0
        aggregate = json.loads(capsys.readouterr().out)
        assert aggregate["overall"]["ok"] == 1
        assert "fig2" in aggregate["runners"]
        assert aggregate["spans"]  # span roll-up rides along
        assert set(aggregate["gauges"]) == {"pass", "warn", "fail",
                                            "skipped"}

    def test_table_output_unchanged_without_flag(self, tmp_path, capsys):
        ledger = tmp_path / "L.jsonl"
        assert main(["sweep", "fig2", "--scale", "0.2", "--quiet",
                     "--no-trace", "--events", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["stats", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "1 sweep(s), 1 jobs: 1 ok" in out
        assert "cache hit rate" in out
