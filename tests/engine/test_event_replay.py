"""Worker-side event replay ordering: ``seq`` monotonicity and the
interleaving contract between replayed per-job sub-events (retries,
spans) and the parent-side sweep events, under a parallel pool."""

from repro.engine import JobSpec, execute
from repro.obs.events import EventLog, read_events


def _flaky_specs(tmp_path, n=4):
    return [
        JobSpec(
            runner="test.flaky",
            kwargs={
                "state_file": str(tmp_path / f"state-{i}"),
                "fail_times": 1,
                "value": i,
            },
            index=i,
            label=f"flaky-{i}",
        )
        for i in range(n)
    ]


class TestReplayOrdering:
    def test_seq_strictly_monotonic_under_parallel_pool(self, tmp_path):
        ledger = tmp_path / "L.jsonl"
        sink = EventLog(ledger)
        try:
            result = execute(_flaky_specs(tmp_path), workers=3, retries=2, events=sink)
        finally:
            sink.close()
        assert result.failed_count == 0
        events = read_events(ledger)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_job_sub_events_replay_between_start_and_end(self, tmp_path):
        """Every replayed per-job event (job_retry, span_*) lands inside
        its own job's [job_start, job_end] window in the ledger — the
        settle-time replay must not scatter them across other jobs."""
        ledger = tmp_path / "L.jsonl"
        sink = EventLog(ledger)
        try:
            execute(_flaky_specs(tmp_path), workers=3, retries=2, events=sink)
        finally:
            sink.close()
        events = read_events(ledger)
        windows = {}
        for pos, event in enumerate(events):
            if event["event"] == "job_start":
                windows[event["index"]] = [pos, None]
            elif event["event"] == "job_end":
                windows[event["index"]][1] = pos
        assert len(windows) == 4
        for pos, event in enumerate(events):
            if event["event"] in ("job_retry", "span_start", "span_end"):
                index = event.get("index")
                if index is None:
                    continue  # the parent's own sweep-root span
                start, end = windows[index]
                assert start < pos < end, (
                    f"{event['event']} for job {index} replayed at {pos}, "
                    f"outside its window ({start}, {end})"
                )

    def test_retries_interleave_with_spans_in_worker_order(self, tmp_path):
        """Within one job's replay, the retry precedes the spans' end
        (the failed attempt happened before the succeeding one)."""
        ledger = tmp_path / "L.jsonl"
        sink = EventLog(ledger)
        try:
            execute(_flaky_specs(tmp_path, n=1), workers=1, retries=2, events=sink)
        finally:
            sink.close()
        events = read_events(ledger)
        kinds = [e["event"] for e in events]
        retry_pos = kinds.index("job_retry")
        # Two attempt spans were recorded; the second (successful) one
        # must close after the retry was recorded.
        attempt_ends = [
            pos for pos, e in enumerate(events)
            if e["event"] == "span_end" and e.get("name") == "attempt"
        ]
        assert len(attempt_ends) == 2
        assert retry_pos < attempt_ends[-1]

    def test_sweep_events_bracket_everything(self, tmp_path):
        ledger = tmp_path / "L.jsonl"
        sink = EventLog(ledger)
        try:
            execute(_flaky_specs(tmp_path), workers=2, retries=2, events=sink)
        finally:
            sink.close()
        kinds = [e["event"] for e in read_events(ledger)]
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_end"
        # The run summary lands just before the terminal sweep_end,
        # and the sweep-root span closes after every job has settled.
        assert kinds[-2] == "run_summary"
        assert kinds[-3] == "span_end"

    def test_worker_span_ids_are_namespaced_per_job(self, tmp_path):
        ledger = tmp_path / "L.jsonl"
        sink = EventLog(ledger)
        try:
            execute(_flaky_specs(tmp_path), workers=3, retries=2, events=sink)
        finally:
            sink.close()
        span_ids = [
            e["span_id"]
            for e in read_events(ledger)
            if e["event"] == "span_end" and "index" in e
        ]
        assert len(span_ids) == len(set(span_ids))
        for span_id in span_ids:
            assert span_id.startswith("j")
