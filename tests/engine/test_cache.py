"""Tests for repro.engine.cache: keys, persistence, hit/miss behavior."""

import json
import os
import subprocess
import sys
import pytest

from pathlib import Path

from repro.engine import JobSpec, ResultCache, SweepSpec, execute
from repro.engine.cache import clear_code_version_memo, default_code_version


class TestKeys:
    def test_key_is_stable(self):
        cache = ResultCache.__new__(ResultCache)  # no dir needed for keys
        spec = JobSpec(runner="fig2", kwargs={"a": 1}, seed=3, scale=0.5)
        assert cache.key_for(spec, "v1") == cache.key_for(spec, "v1")

    def test_key_varies_with_inputs(self):
        cache = ResultCache.__new__(ResultCache)
        base = JobSpec(runner="fig2", kwargs={"a": 1}, seed=3, scale=0.5)
        variants = [
            base.replace(runner="fig3"),
            base.replace(kwargs={"a": 2}),
            base.replace(seed=4),
            base.replace(scale=0.25),
        ]
        keys = {cache.key_for(spec, "v1") for spec in [base] + variants}
        assert len(keys) == 5

    def test_key_varies_with_code_version(self):
        cache = ResultCache.__new__(ResultCache)
        spec = JobSpec(runner="fig2")
        assert cache.key_for(spec, "v1") != cache.key_for(spec, "v2")

    def test_index_and_label_do_not_affect_key(self):
        cache = ResultCache.__new__(ResultCache)
        spec = JobSpec(runner="fig2", seed=1)
        assert cache.key_for(spec, "v") == cache.key_for(
            spec.replace(index=7, label="other"), "v"
        )

    def test_default_code_version_is_short_hex(self):
        version = default_code_version()
        assert len(version) == 16
        int(version, 16)


class TestCodeVersionFreshness:
    """Regression: the tag was lru_cached for the process lifetime, so
    editing sources in a long-lived session kept writing cache entries
    under the stale tag. The memo is now keyed on a (path, mtime, size)
    scan of the tree."""

    @staticmethod
    def _fake_package(tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "mod.py").write_text("X = 1\n")
        return root

    @staticmethod
    def _bump_mtime(path):
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))

    def test_editing_a_module_changes_the_tag(self, tmp_path):
        root = self._fake_package(tmp_path)
        before = default_code_version(root)
        (root / "mod.py").write_text("X = 2\n")
        self._bump_mtime(root / "mod.py")
        after = default_code_version(root)
        assert before != after

    def test_adding_and_removing_modules_changes_the_tag(self, tmp_path):
        root = self._fake_package(tmp_path)
        before = default_code_version(root)
        (root / "extra.py").write_text("Y = 1\n")
        grown = default_code_version(root)
        assert grown != before
        (root / "extra.py").unlink()
        assert default_code_version(root) == before

    def test_unchanged_tree_reuses_memo_without_rehashing(
        self, tmp_path, monkeypatch
    ):
        import hashlib

        root = self._fake_package(tmp_path)
        first = default_code_version(root)
        monkeypatch.setattr(
            hashlib,
            "sha256",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("re-hashed an unchanged tree")
            ),
        )
        assert default_code_version(root) == first

    def test_stale_entries_not_served_after_edit(self, tmp_path):
        # End to end: a sweep cached under the old sources must miss
        # once the sources change.
        root = self._fake_package(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        jobs = SweepSpec(runners=["test.echo"], grid={"x": [1]}).expand()
        execute(jobs, cache=cache, code_version=default_code_version(root))
        (root / "mod.py").write_text("X = 3\n")
        self._bump_mtime(root / "mod.py")
        rerun = execute(
            jobs, cache=cache, code_version=default_code_version(root)
        )
        assert rerun.cached_count == 0

    def test_clear_code_version_memo(self, tmp_path):
        root = self._fake_package(tmp_path)
        first = default_code_version(root)
        clear_code_version_memo()
        assert default_code_version(root) == first


class TestStore:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec(runner="fig2", seed=1)
        key = cache.key_for(spec, "v")
        hit, _ = cache.get(spec, key)
        assert not hit
        cache.put(spec, key, {"rows": [1, 2]})
        hit, value = cache.get(spec, key)
        assert hit and value == {"rows": [1, 2]}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec(runner="fig2", seed=1)
        key = cache.key_for(spec, "v")
        cache.path_for(spec, key).write_text("{not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            hit, _ = cache.get(spec, key)
        assert not hit
        # The corrupt bytes are preserved for post-mortems, not deleted.
        assert len(list(cache.quarantine_dir.iterdir())) == 1

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2):
            spec = JobSpec(runner="fig2", seed=seed)
            cache.put(spec, cache.key_for(spec, "v"), seed)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_files_are_strict_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec(runner="fig2", seed=1)
        key = cache.key_for(spec, "v")
        path = cache.put(spec, key, {"x": None})
        record = json.loads(path.read_text())
        assert record["runner"] == "fig2" and record["value"] == {"x": None}


class TestEngineIntegration:
    def test_second_sweep_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = SweepSpec(
            runners=["test.echo"], grid={"x": [1, 2, 3]}, base_seed=5
        ).expand()
        first = execute(jobs, cache=cache, code_version="v")
        second = execute(jobs, cache=cache, code_version="v")
        assert first.cached_count == 0 and first.ok_count == 3
        assert second.cached_count == 3 and second.cache_hit_rate == 1.0
        assert first.values() == second.values()

    def test_code_version_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = SweepSpec(runners=["test.echo"], grid={"x": [1]}).expand()
        execute(jobs, cache=cache, code_version="v1")
        rerun = execute(jobs, cache=cache, code_version="v2")
        assert rerun.cached_count == 0

    def test_cached_equals_fresh_normalised(self, tmp_path):
        # Fresh runs through a cache return to_jsonable-normalised data,
        # so hits and misses are indistinguishable to the caller.
        import numpy as np

        from repro.experiments.export import to_jsonable

        cache = ResultCache(tmp_path)
        spec = JobSpec(runner="fig2", seed=2, scale=0.2)
        fresh = execute([spec], cache=cache, code_version="v").values()[0]
        cached = execute([spec], cache=cache, code_version="v").values()[0]
        assert fresh == cached
        assert fresh == to_jsonable(fresh)  # already normalised
        assert not isinstance(fresh["series"], np.ndarray)

    def test_nonfinite_values_keep_their_type_with_cache(self, tmp_path):
        # Regression: with a cache attached, to_jsonable turned inf
        # into the string "Infinity" on the return path, so results
        # changed *type* depending on whether --cache-dir was passed.
        spec = JobSpec(
            runner="test.echo",
            kwargs={"pos": float("inf"), "neg": float("-inf")},
        )
        without_cache = execute([spec]).values()[0]
        cache = ResultCache(tmp_path)
        fresh = execute([spec], cache=cache, code_version="v").values()[0]
        hit = execute([spec], cache=cache, code_version="v").values()[0]
        for value in (fresh, hit):
            assert value["pos"] == without_cache["pos"] == float("inf")
            assert value["neg"] == without_cache["neg"] == float("-inf")
            assert isinstance(value["pos"], float)
        # The on-disk entry still stores strict-JSON sentinels.
        (entry,) = cache.entries().values()
        stored = json.loads(entry.read_text())["value"]
        assert stored["pos"] == "Infinity" and stored["neg"] == "-Infinity"

    def test_nan_normalises_to_none_with_cache(self, tmp_path):
        spec = JobSpec(runner="test.echo", kwargs={"gap": float("nan")})
        cache = ResultCache(tmp_path)
        fresh = execute([spec], cache=cache, code_version="v").values()[0]
        hit = execute([spec], cache=cache, code_version="v").values()[0]
        assert fresh["gap"] is None and hit["gap"] is None

    def test_hits_across_processes(self, tmp_path):
        """A cache written by one OS process is served in another."""
        cache_dir = tmp_path / "xproc-cache"
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.engine import JobSpec, ResultCache, execute\n"
            "cache = ResultCache({cache!r})\n"
            "r = execute([JobSpec(runner='test.echo', kwargs={{'x': 1}}, seed=4)],\n"
            "            cache=cache, code_version='v')\n"
            "print(r.cached_count, r.ok_count)\n"
        ).format(
            src=str(Path(__file__).resolve().parents[2] / "src"),
            cache=str(cache_dir),
        )
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.append(proc.stdout.strip())
        assert outputs == ["0 1", "1 0"]

    def test_parallel_workers_share_one_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = SweepSpec(
            runners=["test.echo"], grid={"x": [1, 2, 3, 4]}, base_seed=1
        ).expand()
        execute(jobs, workers=2, cache=cache, code_version="v")
        rerun = execute(jobs, workers=2, cache=cache, code_version="v")
        assert rerun.cache_hit_rate == 1.0


class TestMaintenance:
    """entry_stats / size_bytes / gc: the bounded-disk machinery."""

    @staticmethod
    def _fill(cache, count, payload_bytes=100):
        for i in range(count):
            spec = JobSpec(runner="test.echo", seed=i)
            cache.put(spec, cache.key_for(spec, "v"),
                      {"blob": "x" * payload_bytes})
            os.utime(cache.path_for(spec, cache.key_for(spec, "v")),
                     ns=(i, i))

    def test_entry_stats_orders_lru_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 3)
        stats = cache.entry_stats()
        assert len(stats) == 3
        mtimes = [mtime for _, _, mtime in stats]
        assert mtimes == sorted(mtimes)

    def test_size_bytes_matches_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 4)
        expected = sum(
            p.stat().st_size for p in Path(tmp_path).glob("*-*.json")
        )
        assert cache.size_bytes() == expected

    def test_gc_evicts_lru_until_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 6)
        keep = cache.size_bytes() // 2
        summary = cache.gc(keep)
        assert cache.size_bytes() <= keep
        assert summary["evicted"] + summary["kept"] == 6
        assert summary["size_bytes"] == cache.size_bytes()
        # The newest entries survived.
        survivors = [mtime for _, _, mtime in cache.entry_stats()]
        assert survivors == sorted(survivors)
        assert max(survivors) == 5

    def test_gc_emits_cache_evict_events(self, tmp_path):
        class Sink:
            def __init__(self):
                self.events = []

            def emit(self, event, **fields):
                self.events.append((event, fields))

        sink = Sink()
        cache = ResultCache(tmp_path, events=sink)
        self._fill(cache, 3)
        cache.gc(0)
        evicts = [f for e, f in sink.events if e == "cache_evict"]
        assert len(evicts) == 3
        assert all("bytes" in f and "entry" in f for f in evicts)

    def test_quarantine_not_counted_or_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 2)
        spec = JobSpec(runner="test.echo", seed=0)
        cache.path_for(spec, cache.key_for(spec, "v")).write_text("{nope")
        with pytest.warns(RuntimeWarning):
            cache.get(spec, cache.key_for(spec, "v"))
        assert len(list(cache.quarantine_dir.iterdir())) == 1
        cache.gc(0)  # evict every committed entry
        assert cache.size_bytes() == 0
        # The quarantined post-mortem evidence is untouched.
        assert len(list(cache.quarantine_dir.iterdir())) == 1

    def test_get_touches_entry_mtime(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 2)
        spec = JobSpec(runner="test.echo", seed=0)
        key = cache.key_for(spec, "v")
        before = cache.path_for(spec, key).stat().st_mtime_ns
        hit, _ = cache.get(spec, key)
        assert hit
        assert cache.path_for(spec, key).stat().st_mtime_ns > before


class TestConcurrentWriters:
    """Racing puts must never tear an entry or leave droppings.

    Regression for the staging-name scheme: per-PID/thread unique
    temp names + ``os.replace`` mean concurrent writers (serve worker
    threads, parallel sweeps) each stage privately and commit
    atomically — last writer wins, every reader sees a whole record.
    """

    def test_threaded_same_key_stress(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        spec = JobSpec(runner="test.echo", seed=1)
        key = cache.key_for(spec, "v")
        errors = []

        def hammer(worker):
            try:
                for i in range(25):
                    cache.put(spec, key, {"worker": worker, "i": i})
                    hit, value = cache.get(spec, key)
                    assert hit
                    assert set(value) == {"worker", "i"}
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Exactly one committed entry, parseable, no staging litter,
        # nothing quarantined.
        assert len(cache) == 1
        record = json.loads(cache.path_for(spec, key).read_text())
        assert record["runner"] == "test.echo"
        assert not list(Path(tmp_path).glob(".tmp-*"))
        assert not cache.quarantine_dir.is_dir() or not list(
            cache.quarantine_dir.iterdir()
        )

    def test_multiprocess_writers_same_cache(self, tmp_path):
        """Two processes fan parallel workers into one cache dir."""
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.engine import JobSpec, ResultCache, SweepSpec, execute\n"
            "cache = ResultCache({cache!r})\n"
            "jobs = SweepSpec(runners=['test.echo'],\n"
            "                 grid={{'x': list(range(8))}}, base_seed=1).expand()\n"
            "r = execute(jobs, workers=4, cache=cache, code_version='v')\n"
            "print(r.failed_count)\n"
        ).format(
            src=str(Path(__file__).resolve().parents[2] / "src"),
            cache=str(tmp_path),
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "0"
        cache = ResultCache(tmp_path)
        assert len(cache) == 8
        for _, entry in cache.entries().items():
            json.loads(entry.read_text())  # every entry is whole JSON
        assert not list(Path(tmp_path).glob(".tmp-*"))
        quarantine = Path(tmp_path) / "quarantine"
        assert not quarantine.is_dir() or not list(quarantine.iterdir())


class TestArraySidecars:
    """Large ndarray results live as content-addressed .npy sidecars."""

    def _array_spec(self, n=20_000, with_nan=False, seed=9):
        return JobSpec(
            runner="test.array",
            kwargs={"n": n, "with_nan": with_nan},
            seed=seed,
        )

    def _sidecars(self, cache):
        if not cache.arrays_dir.is_dir():
            return []
        return sorted(cache.arrays_dir.glob("*.npy"))

    def test_large_array_result_uses_npy_sidecar(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._array_spec()
        fresh = execute([spec], cache=cache, code_version="v").values()[0]
        assert len(self._sidecars(cache)) == 1
        (entry,) = cache.entries().values()
        stored = json.loads(entry.read_text())["value"]
        assert "__npy__" in json.dumps(stored)  # descriptor, not lists
        hit = execute([spec], cache=cache, code_version="v").values()[0]
        assert fresh == hit

    def test_sidecar_type_parity_nan_inf(self, tmp_path):
        # The NaN/Infinity sentinel contract must hold whether the
        # array went inline, through a sidecar, or skipped the cache.
        from repro.experiments.export import to_jsonable

        spec = self._array_spec(with_nan=True)
        uncached = execute([spec]).values()[0]  # raw ndarray, no cache
        cache = ResultCache(tmp_path)
        fresh = execute([spec], cache=cache, code_version="v").values()[0]
        hit = execute([spec], cache=cache, code_version="v").values()[0]
        for value in (fresh, hit):
            v = value["values"]
            assert v[0] is None  # NaN
            assert v[1] == float("inf") and isinstance(v[1], float)
            assert v[2] == float("-inf")
            assert isinstance(v[5], float)
        assert json.dumps(fresh) == json.dumps(hit)
        # Export-normalised, all three transports agree byte-for-byte.
        assert json.dumps(to_jsonable(fresh)) == json.dumps(
            to_jsonable(uncached)
        )

    def test_small_arrays_stay_inline(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._array_spec(n=100)
        execute([spec], cache=cache, code_version="v")
        assert self._sidecars(cache) == []

    def test_sidecars_are_content_addressed(self, tmp_path):
        import numpy as np

        cache = ResultCache(tmp_path)
        arr = np.arange(5000, dtype=np.float64)
        normalised, arrays = cache.encode_value({"a": arr, "b": arr.copy()})
        assert len(arrays) == 1  # same content, one digest
        assert len(self._sidecars(cache)) == 1
        digest_a = normalised["a"]["__npy__"]["digest"]
        assert normalised["b"]["__npy__"]["digest"] == digest_a
        decoded = cache.decode_value(normalised, arrays)
        assert decoded["a"] == arr.tolist()

    def test_corrupt_sidecar_quarantines_and_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._array_spec()
        first = execute([spec], cache=cache, code_version="v")
        (sidecar,) = self._sidecars(cache)
        sidecar.write_bytes(b"not an npy file")
        with pytest.warns(RuntimeWarning, match="sidecar"):
            rerun = execute([spec], cache=cache, code_version="v")
        assert rerun.cached_count == 0 and rerun.ok_count == 1
        assert list(cache.quarantine_dir.iterdir())
        assert rerun.values() == first.values()  # recompute rewrote it
        third = execute([spec], cache=cache, code_version="v")
        assert third.cached_count == 1

    def test_missing_sidecar_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._array_spec()
        execute([spec], cache=cache, code_version="v")
        (sidecar,) = self._sidecars(cache)
        sidecar.unlink()
        with pytest.warns(RuntimeWarning, match="sidecar"):
            rerun = execute([spec], cache=cache, code_version="v")
        assert rerun.cached_count == 0 and rerun.ok_count == 1

    def test_wrong_shape_sidecar_is_rejected(self, tmp_path):
        import numpy as np

        cache = ResultCache(tmp_path)
        spec = self._array_spec()
        execute([spec], cache=cache, code_version="v")
        (sidecar,) = self._sidecars(cache)
        np.save(sidecar, np.zeros(3))  # plausible npy, wrong contents
        with pytest.warns(RuntimeWarning, match="sidecar"):
            rerun = execute([spec], cache=cache, code_version="v")
        assert rerun.cached_count == 0

    def test_gc_removes_orphan_sidecars(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._array_spec()
        execute([spec], cache=cache, code_version="v")
        (entry,) = cache.entries().values()
        entry.unlink()  # sidecar is now referenced by nothing
        summary = cache.gc(max_bytes=10**9)
        assert summary["arrays_removed"] == 1
        assert self._sidecars(cache) == []

    def test_gc_keeps_referenced_sidecars(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute([self._array_spec()], cache=cache, code_version="v")
        summary = cache.gc(max_bytes=10**9)
        assert summary["arrays_removed"] == 0
        assert len(self._sidecars(cache)) == 1

    def test_clear_removes_sidecars(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute([self._array_spec()], cache=cache, code_version="v")
        assert cache.clear() >= 1
        assert self._sidecars(cache) == []

    def test_oversized_arrays_still_fail_the_export_cap(self, tmp_path):
        # The sidecar hook must not quietly lift the export cap: a
        # >100k-element array fails to_jsonable identically with or
        # without a cache attached.
        import numpy as np

        from repro.experiments.export import to_jsonable

        cache = ResultCache(tmp_path)
        big = np.zeros(200_000)
        with pytest.raises(ValueError, match="export cap"):
            to_jsonable({"v": big})
        with pytest.raises(ValueError, match="export cap"):
            cache.encode_value({"v": big})
