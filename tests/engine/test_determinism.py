"""Engine determinism over real registered runners.

The issue's contract: the same spec + base seed must produce
bit-identical results whether executed serially or across a worker
pool, and the campaign phases must be worker-count-invariant too.
"""

import json

from repro.engine import SweepSpec, execute
from repro.experiments.export import to_jsonable

# Three real (cheap) paper artifacts; fig2 is seeded+scaled, fig9 is
# seeded, table2 is seedless — covering every injection path.
RUNNERS = ["fig2", "fig9", "table2"]


def _canon(result):
    return json.dumps(to_jsonable(result.values()), sort_keys=True)


class TestSerialVsParallel:
    def test_real_runner_sweep_identical(self):
        sweep = SweepSpec(runners=RUNNERS, base_seed=17, scale=0.2)
        serial = execute(sweep.expand(), workers=1)
        parallel = execute(sweep.expand(), workers=4)
        assert serial.failed_count == parallel.failed_count == 0
        assert _canon(serial) == _canon(parallel)

    def test_same_base_seed_reproduces(self):
        sweep = SweepSpec(runners=["fig2"], base_seed=23, scale=0.2)
        assert _canon(execute(sweep.expand())) == _canon(execute(sweep.expand()))

    def test_different_base_seed_differs(self):
        one = SweepSpec(runners=["fig2"], base_seed=1, scale=0.2)
        two = SweepSpec(runners=["fig2"], base_seed=2, scale=0.2)
        assert _canon(execute(one.expand())) != _canon(execute(two.expand()))


class TestCampaignWorkers:
    def test_campaign_is_worker_invariant(self):
        from repro.experiments.campaign import run_table1_campaign

        serial = run_table1_campaign(
            speedtest_repetitions=1, walking_traces_per_setting=1, workers=1
        )
        parallel = run_table1_campaign(
            speedtest_repetitions=1, walking_traces_per_setting=1, workers=2
        )
        assert json.dumps(to_jsonable(serial), sort_keys=True) == json.dumps(
            to_jsonable(parallel), sort_keys=True
        )
        assert serial["stats"].speedtest_count > 0
