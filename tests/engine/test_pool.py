"""Tests for repro.engine.pool: fan-out, retries, timeouts, failures."""

import pytest

from repro.engine import (
    JobSpec,
    ProgressTracker,
    SweepSpec,
    execute,
    execute_one,
    iter_values,
)


def _echo_jobs(n, base_seed=9):
    return SweepSpec(
        runners=["test.echo"], grid={"x": list(range(n))}, base_seed=base_seed
    ).expand()


class TestExecuteSerial:
    def test_values_in_job_order(self):
        result = execute(_echo_jobs(4))
        assert [v["x"] for v in result.values()] == [0, 1, 2, 3]
        assert result.ok_count == 4 and result.failed_count == 0

    def test_seeds_injected(self):
        values = execute(_echo_jobs(3)).values()
        assert all(v["seed"] is not None for v in values)

    def test_sweepspec_accepted_directly(self):
        sweep = SweepSpec(runners=["test.echo"], grid={"x": [1, 2]})
        assert len(execute(sweep)) == 2

    def test_execute_one(self):
        outcome = execute_one(JobSpec(runner="test.echo", kwargs={"x": 7}))
        assert outcome.status == "ok" and outcome.value["x"] == 7


class TestExecuteParallel:
    def test_parallel_matches_serial(self):
        jobs = _echo_jobs(6)
        serial = execute(jobs, workers=1)
        parallel = execute(jobs, workers=4)
        assert serial.values() == parallel.values()
        assert parallel.workers > 1

    def test_worker_count_capped_by_jobs(self):
        result = execute(_echo_jobs(2), workers=16)
        assert result.workers == 2


class TestFailureHandling:
    def test_failed_job_does_not_abort_sweep(self):
        jobs = [
            JobSpec(runner="test.echo", kwargs={"x": 1}, index=0),
            JobSpec(runner="test.fail", index=1),
            JobSpec(runner="test.echo", kwargs={"x": 2}, index=2),
        ]
        result = execute(jobs, workers=2, retries=0)
        assert result.ok_count == 2 and result.failed_count == 1
        assert [o.status for o in result.outcomes] == ["ok", "failed", "ok"]
        assert list(iter_values(result)) == [
            {"x": 1, "seed": None},
            {"x": 2, "seed": None},
        ]

    def test_failure_record_is_structured(self):
        result = execute([JobSpec(runner="test.fail", label="boom")], retries=3)
        (failure,) = result.failures()
        assert failure.label == "boom"
        assert failure.error_type == "RuntimeError"
        assert "injected permanent failure" in failure.error
        assert failure.attempts == 1  # permanent errors are not retried
        assert not failure.transient
        assert "RuntimeError" in failure.traceback

    def test_raise_if_failed(self):
        result = execute([JobSpec(runner="test.fail")], retries=0)
        with pytest.raises(RuntimeError, match="injected permanent failure"):
            result.raise_if_failed()

    def test_unknown_runner_is_a_job_failure(self):
        result = execute([JobSpec(runner="no-such-runner")], retries=0)
        (failure,) = result.failures()
        assert failure.error_type == "UnknownRunnerError"


class TestRetries:
    def test_flaky_job_recovers_within_budget(self, tmp_path):
        state = tmp_path / "flaky-state"
        outcome = execute_one(
            JobSpec(
                runner="test.flaky",
                kwargs={"state_file": str(state), "fail_times": 2},
            ),
            retries=3,
            backoff_s=0.01,
        )
        assert outcome.status == "ok"
        assert outcome.attempts == 3
        assert outcome.value["attempts_used"] == 3

    def test_flaky_job_exhausts_budget(self, tmp_path):
        state = tmp_path / "flaky-state"
        outcome = execute_one(
            JobSpec(
                runner="test.flaky",
                kwargs={"state_file": str(state), "fail_times": 10},
            ),
            retries=2,
            backoff_s=0.01,
        )
        assert outcome.status == "failed"
        assert outcome.failure.attempts == 3
        assert outcome.failure.transient
        assert outcome.failure.error_type == "TransientJobError"

    def test_flaky_recovers_in_worker_processes(self, tmp_path):
        # Retries happen inside the worker; state crosses processes via
        # the state file.
        state = tmp_path / "flaky-mp"
        jobs = [
            JobSpec(
                runner="test.flaky",
                kwargs={"state_file": str(state), "fail_times": 1},
                index=0,
            ),
            JobSpec(runner="test.echo", kwargs={"x": 5}, index=1),
        ]
        result = execute(jobs, workers=2, retries=2, backoff_s=0.01)
        assert result.ok_count == 2


class TestTimeouts:
    def test_timeout_fails_job(self):
        outcome = execute_one(
            JobSpec(runner="test.sleep", kwargs={"duration_s": 5.0}),
            timeout_s=0.2,
            retries=0,
        )
        assert outcome.status == "failed"
        assert outcome.failure.error_type == "JobTimeoutError"
        assert outcome.failure.transient
        assert outcome.duration_s < 4.0

    def test_timeout_is_retried_as_transient(self):
        outcome = execute_one(
            JobSpec(runner="test.sleep", kwargs={"duration_s": 5.0}),
            timeout_s=0.1,
            retries=1,
            backoff_s=0.01,
        )
        assert outcome.status == "failed"
        assert outcome.failure.attempts == 2

    def test_timeout_in_worker_process(self):
        jobs = [
            JobSpec(runner="test.sleep", kwargs={"duration_s": 5.0}, index=0),
            JobSpec(runner="test.echo", kwargs={"x": 1}, index=1),
        ]
        result = execute(jobs, workers=2, timeout_s=0.3, retries=0)
        assert [o.status for o in result.outcomes] == ["failed", "ok"]

    def test_fast_job_unaffected_by_timeout(self):
        outcome = execute_one(
            JobSpec(runner="test.sleep", kwargs={"duration_s": 0.01}),
            timeout_s=5.0,
        )
        assert outcome.status == "ok"


class TestEvents:
    """The run ledger: per-attempt telemetry survives to the sink."""

    def test_retry_events_fire_for_flaky_runner(self, tmp_path):
        from repro.obs.events import RecordingSink

        sink = RecordingSink()
        outcome = execute_one(
            JobSpec(
                runner="test.flaky",
                kwargs={"state_file": str(tmp_path / "s"), "fail_times": 2},
            ),
            retries=3,
            backoff_s=0.01,
            events=sink,
        )
        assert outcome.status == "ok"
        retries = sink.of_type("job_retry")
        assert [r["attempt"] for r in retries] == [1, 2]
        assert all(r["error_type"] == "TransientJobError" for r in retries)
        assert all(r["runner"] == "test.flaky" for r in retries)
        (end,) = sink.of_type("job_end")
        assert end["status"] == "ok" and end["attempts"] == 3

    def test_timeout_events_fire_for_slow_runner(self):
        from repro.obs.events import RecordingSink

        sink = RecordingSink()
        outcome = execute_one(
            JobSpec(runner="test.sleep", kwargs={"duration_s": 5.0}),
            timeout_s=0.1,
            retries=1,
            backoff_s=0.01,
            events=sink,
        )
        assert outcome.status == "failed"
        timeouts = sink.of_type("job_timeout")
        assert [t["attempt"] for t in timeouts] == [1, 2]
        assert all(t["timeout_s"] == 0.1 for t in timeouts)
        # Only the first timeout is retried (retries=1).
        assert len(sink.of_type("job_retry")) == 1
        (end,) = sink.of_type("job_end")
        assert end["status"] == "failed"
        assert end["error_type"] == "JobTimeoutError"

    def test_worker_side_events_cross_process_boundary(self, tmp_path):
        from repro.obs.events import RecordingSink

        sink = RecordingSink()
        jobs = [
            JobSpec(
                runner="test.flaky",
                kwargs={"state_file": str(tmp_path / "mp"), "fail_times": 1},
                index=0,
            ),
            JobSpec(runner="test.echo", kwargs={"x": 1}, index=1),
        ]
        result = execute(jobs, workers=2, retries=2, backoff_s=0.01, events=sink)
        assert result.ok_count == 2
        assert len(sink.of_type("job_start")) == 2
        assert len(sink.of_type("job_end")) == 2
        (retry,) = sink.of_type("job_retry")
        assert retry["runner"] == "test.flaky" and retry["index"] == 0

    def test_event_order_start_retry_end(self, tmp_path):
        from repro.obs.events import RecordingSink

        sink = RecordingSink()
        execute_one(
            JobSpec(
                runner="test.flaky",
                kwargs={"state_file": str(tmp_path / "o"), "fail_times": 1},
            ),
            retries=1,
            backoff_s=0.01,
            events=sink,
        )
        kinds = [e["event"] for e in sink.events]
        assert [k for k in kinds if not k.startswith("span_")] == [
            "sweep_start",
            "job_start",
            "job_retry",
            "job_end",
            "run_summary",
            "sweep_end",
        ]
        # Tracing rides the sink by default: the sweep root span plus
        # the job's replayed spans (job + one span per attempt).
        assert kinds.count("span_start") == kinds.count("span_end") == 4
        assert kinds[-3:] == ["span_end", "run_summary", "sweep_end"]

    def test_no_sink_attaches_nothing(self):
        result = execute(_echo_jobs(2))
        assert result.stats["counters"]["jobs_ok"] == 2  # metrics still on

    def test_stats_count_retries_and_timeouts_without_sink(self, tmp_path):
        outcome_result = execute(
            [
                JobSpec(
                    runner="test.flaky",
                    kwargs={
                        "state_file": str(tmp_path / "c"),
                        "fail_times": 1,
                    },
                )
            ],
            retries=1,
            backoff_s=0.01,
        )
        assert outcome_result.stats["counters"]["retries"] == 1


class TestProgress:
    def test_tracker_counts_everything(self, tmp_path):
        tracker = ProgressTracker()
        jobs = [
            JobSpec(runner="test.echo", kwargs={"x": 1}, index=0),
            JobSpec(runner="test.fail", index=1),
        ]
        execute(jobs, retries=0, progress=tracker)
        snap = tracker.snapshot()
        assert snap.total == 2 and snap.ok == 1 and snap.failed == 1
        assert snap.done == 2
        assert snap.elapsed_s >= 0.0

    def test_tracker_stream_output(self, capsys):
        import sys

        tracker = ProgressTracker(stream=sys.stderr)
        execute([JobSpec(runner="test.echo", label="j1")], progress=tracker)
        err = capsys.readouterr().err
        assert "[1/1] j1: ok" in err
        assert "1 ok" in err

    def test_summary_mentions_throughput(self):
        result = execute(_echo_jobs(2))
        assert "jobs/s" in result.summary()
        assert "2 ok" in result.summary()


def _spin_runner(duration_s=5.0, seed=None):
    """Busy-loop in Python bytecode so async-raised timeouts land."""
    import time

    deadline = time.monotonic() + float(duration_s)
    x = 0
    while time.monotonic() < deadline:
        x += 1
    return {"spins": x, "seed": seed}


class TestOffMainThreadTimeout:
    """Regression: ``timeout_s`` used to silently no-op off the main
    thread (SIGALRM cannot be armed there), so a serve worker thread
    running serial ``execute()`` had no per-job budget at all. A
    fallback timer now raises the same JobTimeoutError asynchronously;
    when even that is unavailable the engine warns and notes a
    ``job_timeout_unenforced`` event instead of staying silent."""

    @staticmethod
    def _execute_in_thread(**kwargs):
        import threading

        box = {}

        def run():
            box["result"] = execute(
                [JobSpec(
                    runner="tests.engine.test_pool:_spin_runner",
                    kwargs={"duration_s": 5.0},
                )],
                workers=1,
                retries=0,
                **kwargs,
            )

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()
        return box["result"]

    def test_fallback_timer_enforces_timeout(self):
        result = self._execute_in_thread(timeout_s=0.2)
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.failure.error_type == "JobTimeoutError"
        assert "timeout" in outcome.failure.error
        assert outcome.duration_s < 4.0  # aborted, not run to completion

    def test_timeout_event_reaches_the_ledger(self):
        class Sink:
            def __init__(self):
                self.events = []

            def emit(self, event, **fields):
                self.events.append(event)

        sink = Sink()
        self._execute_in_thread(timeout_s=0.2, events=sink)
        assert "job_timeout" in sink.events

    def test_unenforceable_timeout_warns_and_notes(self, monkeypatch):
        import warnings

        from repro.engine import pool as pool_mod

        monkeypatch.setattr(
            pool_mod._ThreadTimeoutTimer, "start", lambda self: False
        )

        class Sink:
            def __init__(self):
                self.events = []

            def emit(self, event, **fields):
                self.events.append((event, fields))

        sink = Sink()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            box = {}
            import threading

            def run():
                box["result"] = execute(
                    [JobSpec(runner="test.sleep",
                             kwargs={"duration_s": 0.01})],
                    workers=1,
                    retries=0,
                    timeout_s=0.5,
                    events=sink,
                )

            thread = threading.Thread(target=run)
            thread.start()
            thread.join(timeout=30)
        assert box["result"].outcomes[0].status == "ok"
        assert any(
            "cannot be enforced" in str(w.message)
            and issubclass(w.category, RuntimeWarning)
            for w in caught
        )
        types = [event for event, _ in sink.events]
        assert "job_timeout_unenforced" in types
        fields = dict(sink.events)["job_timeout_unenforced"]
        assert fields["timeout_s"] == 0.5

    def test_main_thread_still_uses_sigalrm(self):
        """The SIGALRM path is untouched: interrupts C-level sleep."""
        outcome = execute_one(
            JobSpec(runner="test.sleep", kwargs={"duration_s": 5.0}),
            timeout_s=0.2,
            retries=0,
        )
        assert outcome.status == "failed"
        assert outcome.duration_s < 1.0
