"""CLI-level tests for ``python -m repro sweep``."""

import json

from repro.cli import main


class TestSweep:
    def test_sweep_two_artifacts(self, capsys):
        assert main(["sweep", "fig2", "table2", "--scale", "0.2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 ok" in out and "0 failed" in out

    def test_sweep_parallel_json_matches_serial(self, tmp_path):
        payloads = []
        for i, workers in enumerate(("1", "2")):
            target = tmp_path / f"sweep-{i}.json"
            code = main(
                ["sweep", "fig2", "table2", "--scale", "0.2", "--seed", "3",
                 "--workers", workers, "--quiet", "--json", str(target)]
            )
            assert code == 0
            payloads.append(json.loads(target.read_text()))
        assert payloads[0] == payloads[1]
        assert set(payloads[0]) == {"fig2", "table2"}

    def test_sweep_cache_reports_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["sweep", "fig2", "--scale", "0.2", "--seed", "1",
                "--cache-dir", cache_dir, "--quiet"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache hits: 0/1" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cache hits: 1/1 (100%)" in second

    def test_sweep_with_injected_failure_finishes(self, capsys):
        # The acceptance scenario: one always-failing job must not sink
        # the sweep; the summary reports it and the exit code is 1.
        code = main(
            ["sweep", "fig2", "test.fail", "table2", "--scale", "0.2",
             "--retries", "0", "--quiet"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "2 ok" in out and "1 failed" in out
        assert "FAILED test.fail: RuntimeError" in out

    def test_sweep_progress_lines_on_stderr(self, capsys):
        assert main(["sweep", "table2", "--scale", "0.2"]) == 0
        captured = capsys.readouterr()
        assert "[1/1] table2: ok" in captured.err

    def test_sweep_timeout_flag(self, capsys):
        code = main(
            ["sweep", "test.sleep", "--timeout", "60", "--retries", "0",
             "--quiet"]
        )
        assert code == 0
