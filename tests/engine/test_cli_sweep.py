"""CLI-level tests for ``python -m repro sweep``."""

import json

from repro.cli import main


class TestSweep:
    def test_sweep_two_artifacts(self, capsys):
        assert main(["sweep", "fig2", "table2", "--scale", "0.2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 ok" in out and "0 failed" in out

    def test_sweep_parallel_json_matches_serial(self, tmp_path):
        payloads = []
        for i, workers in enumerate(("1", "2")):
            target = tmp_path / f"sweep-{i}.json"
            code = main(
                ["sweep", "fig2", "table2", "--scale", "0.2", "--seed", "3",
                 "--workers", workers, "--quiet", "--json", str(target)]
            )
            assert code == 0
            payloads.append(json.loads(target.read_text()))
        assert payloads[0] == payloads[1]
        assert set(payloads[0]) == {"fig2", "table2"}

    def test_sweep_cache_reports_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["sweep", "fig2", "--scale", "0.2", "--seed", "1",
                "--cache-dir", cache_dir, "--quiet"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache hits: 0/1" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cache hits: 1/1 (100%)" in second

    def test_sweep_with_injected_failure_finishes(self, capsys):
        # The acceptance scenario: one always-failing job must not sink
        # the sweep; the summary reports it and the exit code is 1.
        code = main(
            ["sweep", "fig2", "test.fail", "table2", "--scale", "0.2",
             "--retries", "0", "--quiet"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "2 ok" in out and "1 failed" in out
        assert "FAILED test.fail: RuntimeError" in out

    def test_sweep_progress_lines_on_stderr(self, capsys):
        assert main(["sweep", "table2", "--scale", "0.2"]) == 0
        captured = capsys.readouterr()
        assert "[1/1] table2: ok" in captured.err

    def test_sweep_timeout_flag(self, capsys):
        code = main(
            ["sweep", "test.sleep", "--timeout", "60", "--retries", "0",
             "--quiet"]
        )
        assert code == 0

    def test_repeated_artifact_keeps_every_result(self, tmp_path):
        # Regression: `sweep fig2 fig2 --json` keyed the payload by
        # display name, so the duplicate silently clobbered the first.
        target = tmp_path / "dup.json"
        code = main(
            ["sweep", "fig2", "fig2", "--scale", "0.2", "--seed", "3",
             "--quiet", "--json", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert set(payload) == {"fig2#0", "fig2#1"}
        # Distinct derived seeds -> genuinely distinct results survive.
        assert payload["fig2#0"] != payload["fig2#1"]

    def test_unique_artifacts_keep_plain_keys(self, tmp_path):
        target = tmp_path / "plain.json"
        assert main(
            ["sweep", "fig2", "table2", "--scale", "0.2", "--quiet",
             "--json", str(target)]
        ) == 0
        assert set(json.loads(target.read_text())) == {"fig2", "table2"}


class TestSweepLedger:
    def test_events_and_manifest_flags(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        manifest = tmp_path / "run.manifest.json"
        code = main(
            ["sweep", "fig2", "table2", "--scale", "0.2", "--seed", "5",
             "--quiet", "--events", str(events), "--manifest", str(manifest)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {events}" in out and f"wrote {manifest}" in out

        from repro.obs.events import read_events

        kinds = [e["event"] for e in read_events(events)]
        assert kinds[0] == "sweep_start"
        # Calibration gauges are scored after the sweep settles, so
        # their events trail the sweep_end bracket.
        assert kinds[-1] == "gauge"
        assert kinds[kinds.index("sweep_end") + 1 :] == ["gauge"] * kinds.count(
            "gauge"
        )
        assert kinds.count("job_end") == 2

        record = json.loads(manifest.read_text())
        assert record["counts"] == {
            "jobs": 2, "ok": 2, "cached": 0, "failed": 0, "skipped": 0,
        }
        assert record["base_seed"] == 5
        assert [j["runner"] for j in record["jobs"]] == ["fig2", "table2"]

    def test_manifest_written_next_to_json_export(self, tmp_path):
        target = tmp_path / "out.json"
        assert main(
            ["sweep", "table2", "--scale", "0.2", "--quiet",
             "--json", str(target)]
        ) == 0
        sibling = tmp_path / "out.manifest.json"
        assert sibling.exists()
        assert json.loads(sibling.read_text())["counts"]["ok"] == 1

    def test_manifest_written_into_cache_dir(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(
            ["sweep", "table2", "--scale", "0.2", "--quiet",
             "--cache-dir", str(cache_dir)]
        ) == 0
        manifest = cache_dir / "last-sweep.manifest.json"
        assert manifest.exists()
        assert json.loads(manifest.read_text())["cache_dir"] == str(cache_dir)

    def test_cached_rerun_ledger_reconciles(self, tmp_path, capsys):
        events = tmp_path / "e.jsonl"
        args = ["sweep", "fig2", "--scale", "0.2", "--seed", "1", "--quiet",
                "--cache-dir", str(tmp_path / "c"), "--events", str(events)]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        assert main(["stats", str(events)]) == 0
        out = capsys.readouterr().out
        assert "2 sweep(s)" in out
        assert "1 ok, 1 cached" in out


class TestFailurePaths:
    def test_sweep_unknown_artifact_exits_2(self, capsys):
        assert main(["sweep", "fig2", "no-such-artifact", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "unknown artifact id(s): no-such-artifact" in err

    def test_run_unknown_artifact_exits_2(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown artifact id(s): nope" in capsys.readouterr().err

    def test_run_failed_job_exits_1_with_structured_error(self, capsys):
        assert main(["run", "test.fail"]) == 1
        err = capsys.readouterr().err
        assert "test.fail failed after" in err
        assert "RuntimeError: injected permanent failure" in err

    def test_sweep_failed_job_with_json_excludes_failure(
        self, tmp_path, capsys
    ):
        target = tmp_path / "partial.json"
        code = main(
            ["sweep", "table2", "test.fail", "--scale", "0.2",
             "--retries", "0", "--quiet", "--json", str(target)]
        )
        assert code == 1
        payload = json.loads(target.read_text())
        assert set(payload) == {"table2"}  # failed job contributes nothing
        out = capsys.readouterr().out
        assert "FAILED test.fail" in out

    def test_quiet_suppresses_tracker_but_not_summary(self, capsys):
        assert main(["sweep", "table2", "--scale", "0.2", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""  # no per-job progress lines
        assert "1 ok" in captured.out  # the closing summary stays

    def test_scale_must_be_positive(self, capsys):
        assert main(["sweep", "table2", "--scale", "0"]) == 2
        assert "--scale must be positive" in capsys.readouterr().err


class TestCacheCommand:
    """``repro cache ls`` / ``repro cache gc --max-bytes``."""

    @staticmethod
    def _warm_cache(tmp_path, artifacts=("test.echo", "test.sleep")):
        cache_dir = tmp_path / "cache"
        rc = main(
            ["sweep", *artifacts, "--seed", "3", "--quiet",
             "--cache-dir", str(cache_dir)]
        )
        assert rc == 0
        return cache_dir

    def test_ls_lists_entries_and_totals(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        assert main(["cache", "ls", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "test.echo" in out
        assert "test.sleep" in out
        assert "2 entry(ies)" in out

    def test_ls_empty_cache(self, tmp_path, capsys):
        assert main(["cache", "ls", str(tmp_path / "empty")]) == 0
        assert "0 entry(ies), 0 bytes" in capsys.readouterr().out

    def test_gc_to_zero_evicts_everything(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        assert main(["cache", "gc", str(cache_dir), "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted 2 entry(ies)" in out
        assert main(["cache", "ls", str(cache_dir)]) == 0
        assert "0 entry(ies)" in capsys.readouterr().out

    def test_gc_under_budget_is_a_noop(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        rc = main(
            ["cache", "gc", str(cache_dir), "--max-bytes", "10000000"]
        )
        assert rc == 0
        assert "evicted 0 entry(ies)" in capsys.readouterr().out

    def test_gc_then_sweep_recomputes_evicted(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        main(["cache", "gc", str(cache_dir), "--max-bytes", "0"])
        capsys.readouterr()
        rc = main(
            ["sweep", "test.echo", "test.sleep", "--seed", "3",
             "--quiet", "--cache-dir", str(cache_dir)]
        )
        assert rc == 0
        assert "cache hits: 0/2" in capsys.readouterr().out
