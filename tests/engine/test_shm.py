"""Tests for repro.engine.shm: ring transport, ownership, cleanup."""

import multiprocessing

import numpy as np
import pytest

from repro.engine.shm import (
    SHM_MARKER,
    ShmRing,
    active_segments,
    array_digest,
    contains_large_array,
    decode_arrays,
    encode_arrays,
)


def _bytes_of(arr: np.ndarray) -> memoryview:
    return memoryview(np.ascontiguousarray(arr)).cast("B")


@pytest.fixture
def ring():
    ring = ShmRing.create(64 * 1024)
    yield ring
    ring.close()
    ring.unlink()


class TestRing:
    def test_write_read_roundtrip(self, ring):
        arr = np.arange(1000, dtype=np.float64)
        pos = ring.write(_bytes_of(arr))
        assert pos is not None
        out = np.frombuffer(ring.read(pos, arr.nbytes), dtype=arr.dtype)
        np.testing.assert_array_equal(out, arr)

    def test_read_returns_writable_bytes(self, ring):
        arr = np.arange(100, dtype=np.float64)
        pos = ring.write(_bytes_of(arr))
        out = np.frombuffer(ring.read(pos, arr.nbytes), dtype=arr.dtype)
        out[0] = -1.0  # decoded kwargs must behave like fresh inputs

    def test_consume_frees_space(self, ring):
        # Repeatedly fill most of the ring; without consume() the
        # second pass would stall, with it the cursor laps for ever.
        arr = np.zeros(3000, dtype=np.float64)  # 24 KB of a 64 KB ring
        for _ in range(20):
            pos = ring.write(_bytes_of(arr), timeout_s=0.0)
            assert pos is not None
            ring.consume(pos, arr.nbytes)
        assert ring.pending_bytes() == 0

    def test_wrap_around_pads_to_ring_start(self, ring):
        # Leave a tail smaller than the next payload so the writer has
        # to pad to the ring start; values must still come back intact.
        first = np.arange(6000, dtype=np.float64)   # 48 KB
        second = np.arange(4000, dtype=np.float64)  # 32 KB > 16 KB tail
        p1 = ring.write(_bytes_of(first), timeout_s=0.0)
        assert p1 is not None
        ring.consume(p1, first.nbytes)
        p2 = ring.write(_bytes_of(second), timeout_s=0.0)
        assert p2 is not None
        out = np.frombuffer(ring.read(p2, second.nbytes), dtype=np.float64)
        np.testing.assert_array_equal(out, second)

    def test_oversize_write_returns_none(self, ring):
        huge = np.zeros(64 * 1024, dtype=np.float64)  # 512 KB > ring
        assert ring.write(_bytes_of(huge), timeout_s=0.0) is None

    def test_full_ring_times_out_not_blocks(self, ring):
        arr = np.zeros(5000, dtype=np.float64)  # 40 KB
        assert ring.write(_bytes_of(arr), timeout_s=0.0) is not None
        # Nothing consumed: a second large write cannot fit.
        assert ring.write(_bytes_of(arr), timeout_s=0.05) is None

    def test_attach_shares_data_across_handles(self, ring):
        arr = np.linspace(0.0, 1.0, 2048)
        pos = ring.write(_bytes_of(arr))
        other = ShmRing.attach(ring.name)
        try:
            out = np.frombuffer(other.read(pos, arr.nbytes), dtype=arr.dtype)
            np.testing.assert_array_equal(out, arr)
        finally:
            other.close()


class TestEncodeDecode:
    def test_marker_roundtrip(self, ring):
        arr = np.random.default_rng(0).standard_normal(5000)
        payload = {"kwargs": {"values": arr, "n": 3}}
        encoded, shipped = encode_arrays(payload, ring, min_bytes=1024)
        assert shipped == 1
        assert SHM_MARKER in encoded["kwargs"]["values"]
        assert encoded["kwargs"]["n"] == 3
        decoded = decode_arrays(encoded, ring)
        np.testing.assert_array_equal(decoded["kwargs"]["values"], arr)
        assert decoded["kwargs"]["values"].dtype == arr.dtype
        assert ring.pending_bytes() == 0  # decode consumed the bytes

    def test_small_arrays_stay_inline(self, ring):
        arr = np.arange(10, dtype=np.float64)
        encoded, shipped = encode_arrays({"values": arr}, ring)
        assert shipped == 0
        assert encoded["values"] is arr

    def test_object_arrays_stay_inline(self, ring):
        arr = np.array([{"a": 1}] * 5000, dtype=object)
        encoded, shipped = encode_arrays(
            {"values": arr}, ring, min_bytes=1024
        )
        assert shipped == 0
        assert encoded["values"] is arr

    def test_contains_large_array(self):
        big = np.zeros(100_000)
        assert contains_large_array({"a": {"b": big}})
        assert not contains_large_array({"a": list(range(100))})
        assert not contains_large_array({"a": np.zeros(4)})

    def test_full_ring_leaves_array_inline(self):
        tiny = ShmRing.create(4096)
        try:
            arr = np.zeros(10_000, dtype=np.float64)
            encoded, shipped = encode_arrays(
                {"values": arr}, tiny, min_bytes=1024, timeout_s=0.0
            )
            assert shipped == 0
            assert encoded["values"] is arr
        finally:
            tiny.close()
            tiny.unlink()

    def test_decode_in_write_order_across_records(self, ring):
        arrays = [
            np.full(2000, float(i), dtype=np.float64) for i in range(3)
        ]
        encoded = [
            encode_arrays({"v": a}, ring, min_bytes=1024)[0] for a in arrays
        ]
        for expected, record in zip(arrays, encoded):
            decoded = decode_arrays(record, ring)
            np.testing.assert_array_equal(decoded["v"], expected)


class TestOwnership:
    def test_active_segments_tracks_lifecycle(self):
        assert active_segments() == ()
        ring = ShmRing.create(4096)
        assert ring.name in active_segments()
        ring.close()
        ring.unlink()
        assert active_segments() == ()

    def test_attach_does_not_own(self):
        ring = ShmRing.create(4096)
        try:
            attached = ShmRing.attach(ring.name)
            assert not attached.owner
            attached.close()
            attached.unlink()  # non-owner unlink must be a no-op
            # The parent can still attach to the segment afterwards.
            again = ShmRing.attach(ring.name)
            again.close()
        finally:
            ring.close()
            ring.unlink()
        assert active_segments() == ()

    def test_unlink_is_idempotent(self):
        ring = ShmRing.create(4096)
        ring.close()
        ring.unlink()
        ring.unlink()
        assert active_segments() == ()

    def test_child_process_can_read_parent_ring(self):
        ring = ShmRing.create(64 * 1024)
        try:
            arr = np.arange(4096, dtype=np.float64)
            pos = ring.write(_bytes_of(arr))
            ctx = multiprocessing.get_context()
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_child_read,
                args=(ring.name, pos, arr.nbytes, child_conn),
            )
            proc.start()
            assert parent_conn.recv() == pytest.approx(float(arr.sum()))
            proc.join(timeout=10)
            assert proc.exitcode == 0
        finally:
            ring.close()
            ring.unlink()
        assert active_segments() == ()


def _child_read(name, pos, nbytes, conn):
    ring = ShmRing.attach(name)
    try:
        data = np.frombuffer(ring.read(pos, nbytes), dtype=np.float64)
        conn.send(float(data.sum()))
    finally:
        ring.close()
        conn.close()


class TestDigest:
    def test_digest_stable_and_distinct(self):
        a = np.arange(100, dtype=np.float64)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a.astype(np.float32))
        assert array_digest(a) != array_digest(a.reshape(10, 10))
        assert array_digest(a) != array_digest(a + 1.0)

    def test_digest_of_noncontiguous_view_matches_copy(self):
        base = np.arange(200, dtype=np.float64)
        view = base[::2]
        assert array_digest(view) == array_digest(view.copy())
