# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-verbose figures dataset examples all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-verbose:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

figures:
	$(PYTHON) -m repro render all figures/

dataset:
	$(PYTHON) examples/export_dataset.py dataset_export

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f > /dev/null && echo OK; done

all: test bench
